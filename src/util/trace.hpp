// Process-wide span tracing in the Chrome trace-event format.
//
// The tracer records durational spans (ph "X"), instant events (ph "i"),
// and correlated async spans (ph "b"/"n"/"e" sharing an id) into a bounded
// in-memory ring buffer and renders them as JSON that loads directly in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.  Design rules:
//
//  * Zero-cost when disabled: every entry point starts with enabled(),
//    a single relaxed atomic load; ScopedSpan's constructor takes no
//    timestamp and its destructor does nothing.
//  * Bounded memory: the ring keeps the newest `capacity()` events; older
//    events are dropped and counted (droppedCount() and the
//    metrics::kTraceDropped counter), never reallocated.
//  * Thread-safe: one mutex guards the ring; timestamps come from a single
//    process-wide steady_clock epoch, so spans from different threads (and
//    the RTL cycle spans that correlate with VCD time) share one timebase.
//  * Deterministic results: tracing observes, it never steers — planner
//    output is bit-identical with tracing on or off.
//
// Enabling: RFSM_TRACE=1 in the environment (RFSM_TRACE_OUT=FILE
// additionally dumps the buffer at process exit), or setEnabled(true)
// programmatically (the CLI's --trace-out does this and writes explicitly).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace rfsm::trace {

namespace detail {
extern std::atomic<bool> gEnabled;
}  // namespace detail

/// True when tracing is on.  This is the whole disabled-path cost: one
/// relaxed atomic load.
inline bool enabled() {
  return detail::gEnabled.load(std::memory_order_relaxed);
}

/// Turns tracing on or off at runtime (tests, CLI --trace-out).
void setEnabled(bool on);

/// Resizes the ring buffer (default 32768 events) and clears it.
void setCapacity(std::size_t events);
std::size_t capacity();

/// Drops all buffered events and zeroes the dropped-event count.
void clear();

/// Events evicted by ring overflow since the last clear().
std::uint64_t droppedCount();

/// Events currently buffered.
std::size_t eventCount();

/// Nanoseconds since the process trace epoch — the shared timebase of
/// every span, including manual ones.
std::uint64_t nowNs();

/// The process trace epoch expressed on the machine-wide CLOCK_MONOTONIC
/// timebase (steady_clock's time_since_epoch, in ns).  Dumps publish it as
/// a top-level "steadyEpochNs" field so tools/trace_stitch.py can shift
/// every process of one host onto a single timeline; cross-host offsets
/// come from the kTraceDumpRequest clock handshake.
std::uint64_t steadyEpochNs();

/// Names this process in trace output (ph "M" process_name metadata and
/// the dump's top-level "processName").  Defaults to "".
void setProcessName(const std::string& name);
std::string processName();

// --- Distributed trace context -------------------------------------------
//
// A TraceContext identifies one distributed request: a 128-bit trace id
// shared by every span of the request across processes, the id of the span
// that is the current parent, and a sampling flag.  The context rides the
// service protocol frames (service/protocol.hpp appends it to plan, shard,
// and session-mutate requests); the receiving process adopts it with a
// ContextScope so its spans record remote parents.  Propagation never
// steers planning: the context is metadata, and with sampling off nothing
// is recorded or propagated, so results stay bit-identical.

struct TraceContext {
  std::uint64_t traceIdHi = 0;
  std::uint64_t traceIdLo = 0;
  /// The span the next child should parent under (0 = root).
  std::uint64_t spanId = 0;
  bool sampled = false;

  /// True when this context carries a real trace id.
  bool valid() const { return traceIdHi != 0 || traceIdLo != 0; }
  /// The 128-bit trace id as 32 lowercase hex digits.
  std::string traceIdHex() const;
};

/// The calling thread's current context (invalid when none is adopted).
TraceContext currentContext();

/// Starts a new trace rooted in this process: fresh 128-bit trace id,
/// fresh root span id, sampled = enabled().  Does not install it; wrap the
/// request in a ContextScope.
TraceContext beginTrace();

/// Process-unique span id (pid-salted, never 0).
std::uint64_t newSpanId();

/// RAII adoption of a context for the calling thread (restores the
/// previous context on destruction).  Used at every remote-request entry
/// point: server request handler, worker shard loop, session executor.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& context);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext previous_;
};

/// One "key": value argument of an event.  `value` is pre-rendered JSON:
/// use Arg::num for numbers / booleans and Arg::str for strings (which
/// escapes and quotes).
struct Arg {
  std::string key;
  std::string value;

  static Arg num(const std::string& key, std::int64_t value);
  static Arg num(const std::string& key, std::uint64_t value);
  static Arg num(const std::string& key, double value);
  static Arg boolean(const std::string& key, bool value);
  static Arg str(const std::string& key, const std::string& value);
};

using Args = std::initializer_list<Arg>;

/// Complete event (ph "X") with explicit start and duration, for spans
/// whose lifetime does not fit a scope.
void complete(const std::string& name, const std::string& category,
              std::uint64_t startNs, std::uint64_t durationNs,
              Args args = {});

/// Thread-scoped instant event (ph "i") — the building block of the
/// per-migration event log (cell writes, verify verdicts, decisions).
void instant(const std::string& name, const std::string& category,
             Args args = {});

/// Correlated async spans (ph "b"/"n"/"e").  Events sharing (category, id)
/// form one async track; a migration id correlates resume, patch, and
/// rollback steps across threads.  Ids come from newCorrelationId().
std::uint64_t newCorrelationId();
void asyncBegin(const std::string& name, const std::string& category,
                std::uint64_t id, Args args = {});
void asyncInstant(const std::string& name, const std::string& category,
                  std::uint64_t id, Args args = {});
void asyncEnd(const std::string& name, const std::string& category,
              std::uint64_t id, Args args = {});

/// Names the calling thread in trace output (ph "M" metadata).  Cheap and
/// recorded even while disabled, so threads created before setEnabled(true)
/// keep their names.
void setCurrentThreadName(const std::string& name);

/// RAII span: records a ph "X" complete event covering its lifetime.
/// `name` and `category` must outlive the span (string literals).  A span
/// constructed while tracing is disabled stays inert even if tracing is
/// enabled before it dies.
///
/// When the calling thread has a sampled TraceContext adopted, the span
/// joins the distributed trace: it takes a fresh span id, records the
/// context's span id as its parent (trace_id / span_id / parent_span_id
/// args), and installs itself as the thread's current parent for its
/// lifetime, so nested spans — and contexts serialized onto outgoing
/// frames — chain causally.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category, Args args = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches an argument discovered mid-span (e.g. a result count).
  void addArg(const Arg& arg);

  /// This span's id in the distributed trace (0 when the span is inert or
  /// no context is adopted).
  std::uint64_t spanId() const { return spanId_; }

 private:
  const char* name_;  // nullptr = inert
  const char* category_;
  std::uint64_t startNs_ = 0;
  std::uint64_t spanId_ = 0;
  bool restoreContext_ = false;
  TraceContext previousContext_;
  std::string argsJson_;
};

/// Renders the buffered events as a Chrome trace-event JSON object
/// ({"traceEvents": [...]}), including thread-name metadata plus the
/// top-level "steadyEpochNs", "pid", and "processName" fields that
/// tools/trace_stitch.py uses to merge per-process dumps onto one
/// timeline.  Does not clear the buffer.
std::string toJson();

/// Writes toJson() to `path`; false when the file cannot be written.
/// "%p" in the path expands to the pid, so worker subprocesses inheriting
/// RFSM_TRACE_OUT write distinct files instead of clobbering the parent's.
bool writeFile(const std::string& path);

/// Flushes the ring to $RFSM_TRACE_OUT (with %p expansion) when that
/// variable is set; false when unset or unwritable.  The rfsmd drain path
/// calls this so a SIGTERMed daemon keeps its trace without relying on
/// atexit ordering.
bool dumpToEnv();

}  // namespace rfsm::trace
