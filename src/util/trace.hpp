// Process-wide span tracing in the Chrome trace-event format.
//
// The tracer records durational spans (ph "X"), instant events (ph "i"),
// and correlated async spans (ph "b"/"n"/"e" sharing an id) into a bounded
// in-memory ring buffer and renders them as JSON that loads directly in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.  Design rules:
//
//  * Zero-cost when disabled: every entry point starts with enabled(),
//    a single relaxed atomic load; ScopedSpan's constructor takes no
//    timestamp and its destructor does nothing.
//  * Bounded memory: the ring keeps the newest `capacity()` events; older
//    events are dropped and counted (droppedCount() and the
//    metrics::kTraceDropped counter), never reallocated.
//  * Thread-safe: one mutex guards the ring; timestamps come from a single
//    process-wide steady_clock epoch, so spans from different threads (and
//    the RTL cycle spans that correlate with VCD time) share one timebase.
//  * Deterministic results: tracing observes, it never steers — planner
//    output is bit-identical with tracing on or off.
//
// Enabling: RFSM_TRACE=1 in the environment (RFSM_TRACE_OUT=FILE
// additionally dumps the buffer at process exit), or setEnabled(true)
// programmatically (the CLI's --trace-out does this and writes explicitly).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace rfsm::trace {

namespace detail {
extern std::atomic<bool> gEnabled;
}  // namespace detail

/// True when tracing is on.  This is the whole disabled-path cost: one
/// relaxed atomic load.
inline bool enabled() {
  return detail::gEnabled.load(std::memory_order_relaxed);
}

/// Turns tracing on or off at runtime (tests, CLI --trace-out).
void setEnabled(bool on);

/// Resizes the ring buffer (default 32768 events) and clears it.
void setCapacity(std::size_t events);
std::size_t capacity();

/// Drops all buffered events and zeroes the dropped-event count.
void clear();

/// Events evicted by ring overflow since the last clear().
std::uint64_t droppedCount();

/// Events currently buffered.
std::size_t eventCount();

/// Nanoseconds since the process trace epoch — the shared timebase of
/// every span, including manual ones.
std::uint64_t nowNs();

/// One "key": value argument of an event.  `value` is pre-rendered JSON:
/// use Arg::num for numbers / booleans and Arg::str for strings (which
/// escapes and quotes).
struct Arg {
  std::string key;
  std::string value;

  static Arg num(const std::string& key, std::int64_t value);
  static Arg num(const std::string& key, std::uint64_t value);
  static Arg num(const std::string& key, double value);
  static Arg boolean(const std::string& key, bool value);
  static Arg str(const std::string& key, const std::string& value);
};

using Args = std::initializer_list<Arg>;

/// Complete event (ph "X") with explicit start and duration, for spans
/// whose lifetime does not fit a scope.
void complete(const std::string& name, const std::string& category,
              std::uint64_t startNs, std::uint64_t durationNs,
              Args args = {});

/// Thread-scoped instant event (ph "i") — the building block of the
/// per-migration event log (cell writes, verify verdicts, decisions).
void instant(const std::string& name, const std::string& category,
             Args args = {});

/// Correlated async spans (ph "b"/"n"/"e").  Events sharing (category, id)
/// form one async track; a migration id correlates resume, patch, and
/// rollback steps across threads.  Ids come from newCorrelationId().
std::uint64_t newCorrelationId();
void asyncBegin(const std::string& name, const std::string& category,
                std::uint64_t id, Args args = {});
void asyncInstant(const std::string& name, const std::string& category,
                  std::uint64_t id, Args args = {});
void asyncEnd(const std::string& name, const std::string& category,
              std::uint64_t id, Args args = {});

/// Names the calling thread in trace output (ph "M" metadata).  Cheap and
/// recorded even while disabled, so threads created before setEnabled(true)
/// keep their names.
void setCurrentThreadName(const std::string& name);

/// RAII span: records a ph "X" complete event covering its lifetime.
/// `name` and `category` must outlive the span (string literals).  A span
/// constructed while tracing is disabled stays inert even if tracing is
/// enabled before it dies.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category, Args args = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches an argument discovered mid-span (e.g. a result count).
  void addArg(const Arg& arg);

 private:
  const char* name_;  // nullptr = inert
  const char* category_;
  std::uint64_t startNs_ = 0;
  std::string argsJson_;
};

/// Renders the buffered events as a Chrome trace-event JSON object
/// ({"traceEvents": [...]}), including thread-name metadata.  Does not
/// clear the buffer.
std::string toJson();

/// Writes toJson() to `path`; false when the file cannot be written.
bool writeFile(const std::string& path);

}  // namespace rfsm::trace
