// Lightweight planner telemetry: named counters, wall-clock timers, and
// log-scale latency histograms.
//
// Hot paths (decodeOrder, the MutableMachine BFS cache, validateProgram)
// bump process-wide atomic counters; planners time themselves with
// ScopedTimer and feed per-call latencies into histograms (p50/p90/p99).
// Benches and the CLI report render a snapshot as a markdown table, CSV,
// or JSON.  Everything is thread-safe: lookups take a registry mutex once
// (cache the returned reference in a static local on hot paths), updates
// are relaxed atomics.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/histogram.hpp"

namespace rfsm::metrics {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1);
  std::uint64_t value() const;
  void reset();

 private:
  std::uint64_t value_ = 0;  // accessed via atomic_ref-style atomics
};

/// Accumulates wall-clock durations (call count + total nanoseconds).
class Timer {
 public:
  void record(std::chrono::nanoseconds elapsed);
  std::uint64_t count() const;
  std::chrono::nanoseconds total() const;
  void reset();

 private:
  std::uint64_t count_ = 0;
  std::uint64_t totalNs_ = 0;
};

/// Last-write-wins level gauge (queue depths, occupancy, worker counts).
/// A gauge that was never set is omitted from snapshots, like a zero
/// counter, so idle processes stay out of the sinks.
class Gauge {
 public:
  void set(std::int64_t value);
  void add(std::int64_t delta);
  std::int64_t value() const;
  /// True once set/add has been called (snapshot inclusion criterion —
  /// a gauge legitimately sitting at 0 still reports).
  bool touched() const;
  void reset();

 private:
  std::int64_t value_ = 0;   // accessed via atomic_ref-style atomics
  std::uint64_t writes_ = 0;
};

/// Records the lifetime of the guard into `timer`.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Registry lookup; creates the metric on first use.  The returned
/// reference stays valid for the whole process (entries are never erased;
/// resetAll zeroes values in place).
Counter& counter(const std::string& name);
Timer& timer(const std::string& name);
Histogram& histogram(const std::string& name);
Gauge& gauge(const std::string& name);
/// Sliding-window percentile histogram (util/histogram.hpp); the live
/// stats plane reads these, the cumulative `histogram` entries keep
/// feeding the at-exit sinks.
RollingHistogram& rolling(const std::string& name);

/// Point-in-time copy of every non-zero metric, sorted by name.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};
struct TimerSample {
  std::string name;
  std::uint64_t count = 0;
  double totalMs = 0.0;
};
struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  // Percentiles of the recorded nanosecond values, in milliseconds.
  double p50Ms = 0.0;
  double p90Ms = 0.0;
  double p99Ms = 0.0;
  double maxMs = 0.0;
};
struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};
struct RollingSample {
  std::string name;
  std::uint64_t count = 0;
  // Windowed percentiles of the recorded nanosecond values, in ms.
  double p50Ms = 0.0;
  double p90Ms = 0.0;
  double p99Ms = 0.0;
  double maxMs = 0.0;
  std::int64_t windowMs = 0;
};
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<TimerSample> timers;
  std::vector<HistogramSample> histograms;
  std::vector<RollingSample> rolling;
  bool empty() const {
    return counters.empty() && gauges.empty() && timers.empty() &&
           histograms.empty() && rolling.empty();
  }
};

Snapshot snapshot();

/// Zeroes every registered metric (references stay valid).
void resetAll();

/// Renders counters and timers as markdown tables; "" for an empty
/// snapshot.  Derived rates (e.g. the BFS cache hit rate) are appended when
/// both ingredients are present.
std::string toMarkdown(const Snapshot& snapshot);

/// Machine-readable sinks, so bench sweeps can be diffed across commits.
/// CSV columns: kind,name,value,count,total_ms,p50_ms,p90_ms,p99_ms,max_ms
/// (each kind fills only its own columns; `rolling` rows carry their window
/// length, in ms, in the value column); fields are quoted per RFC 4180
/// when they contain commas, quotes, or newlines.  JSON is a single object
/// {"counters": {...}, "gauges": {...},
/// "timers": {name: {"count": n, "total_ms": x}},
/// "histograms": {name: {"count": n, "p50_ms": x, ...}},
/// "rolling": {name: {..., "window_ms": n}}}.  Both render "" for an empty
/// snapshot.
std::string toCsv(const Snapshot& snapshot);
std::string toJson(const Snapshot& snapshot);

// Canonical metric names used by the planning engine.
inline constexpr const char* kDecodeCalls = "planner.decode_calls";
inline constexpr const char* kProgramsValidated = "planner.programs_validated";
inline constexpr const char* kBfsCacheHits = "cache.bfs_hits";
inline constexpr const char* kBfsCacheMisses = "cache.bfs_misses";
// BFS scratch buffers reused across MutableMachine instances that share a
// state count (mutable_machine.cpp's process-wide pool).  Scheduling-
// dependent under jobs > 1, so benches strip it from their artifacts.
inline constexpr const char* kBfsPoolReuses = "cache.bfs_pool_reuses";

// Canonical histogram names of the planning and verification layers
// (values are nanoseconds; snapshots render percentiles in ms).
inline constexpr const char* kDecodeLatency = "planner.decode";
inline constexpr const char* kInstanceLatency = "batch.instance";
inline constexpr const char* kVerifyLatency = "verify.verify";
inline constexpr const char* kGenerationLatency = "ea.generation";

// The tracer's ring-buffer overflow count (util/trace.hpp).
inline constexpr const char* kTraceDropped = "trace.dropped";

// Canonical metric names used by the planner service (rfsmd) and its
// supervisor: shard retries/crashes/restarts, load shedding, deadline
// misses, and client-side degradation to in-process planning.
inline constexpr const char* kServiceRequests = "service.requests";
inline constexpr const char* kServiceShards = "service.shards";
inline constexpr const char* kServiceShardRetries = "service.shard_retries";
inline constexpr const char* kServiceWorkerCrashes = "service.worker_crashes";
inline constexpr const char* kServiceWorkerRestarts =
    "service.worker_restarts";
inline constexpr const char* kServiceShed = "service.requests_shed";
inline constexpr const char* kServiceDeadlineExceeded =
    "service.deadline_exceeded";
inline constexpr const char* kServiceDegraded = "service.degraded";
inline constexpr const char* kServiceWorkerCacheHits =
    "service.worker_cache_hits";
inline constexpr const char* kServiceWorkerCacheMisses =
    "service.worker_cache_misses";
inline constexpr const char* kServiceWorkersPreforked =
    "service.workers_preforked";

// Content-addressed plan-result cache (service/plan_cache.hpp): per-instance
// rendered programs memoized across requests, workers, and fabric shards.
inline constexpr const char* kServicePlanCacheHits = "service.plan_cache_hits";
inline constexpr const char* kServicePlanCacheMisses =
    "service.plan_cache_misses";
inline constexpr const char* kServicePlanCacheEvictions =
    "service.plan_cache_evictions";
// Cache entries that failed quorum byte-verification: quarantined and
// recomputed, never served.
inline constexpr const char* kServicePlanCachePoisoned =
    "service.plan_cache_poisoned";

// Canonical metric names used by the cross-host planner fabric
// (src/service/fabric.hpp): shard routing, endpoint health, hedging, and
// quorum cross-checking.
inline constexpr const char* kFabricShards = "fabric.shards";
inline constexpr const char* kFabricRerouted = "fabric.rerouted";
inline constexpr const char* kFabricHedged = "fabric.hedged";
inline constexpr const char* kFabricHedgeWins = "fabric.hedge_wins";
inline constexpr const char* kFabricBreakerTrips = "fabric.breaker_trips";
inline constexpr const char* kFabricQuorumMismatch = "fabric.quorum_mismatch";
inline constexpr const char* kFabricDegraded = "fabric.degraded";
inline constexpr const char* kBatchInstanceFailures =
    "batch.instance_failures";
inline constexpr const char* kBatchCancelled = "batch.instances_cancelled";

// Canonical histogram names of the planner service (nanosecond values).
inline constexpr const char* kServiceRequestLatency = "service.request";
inline constexpr const char* kServiceShardLatency = "service.shard";

// Canonical metric names of the multi-tenant session layer
// (service/session.hpp): session lifecycle, streaming mutations, delta
// compaction, admission control, and crash recovery / graceful drain.
inline constexpr const char* kSessionOpened = "session.opened";
inline constexpr const char* kSessionResumed = "session.resumed";
inline constexpr const char* kSessionMutationsAccepted =
    "session.mutations_accepted";
inline constexpr const char* kSessionMutationsRejected =
    "session.mutations_rejected";
inline constexpr const char* kSessionPlans = "session.plans";
// Raw requested deltas that compaction folded away before planning
// (consecutive deferred mutations re-writing or reverting the same cells).
inline constexpr const char* kSessionDeltasCompacted =
    "session.deltas_compacted";
inline constexpr const char* kSessionSnapshots = "session.snapshots";
// Sessions rebuilt from journals/snapshots after a hot restart; the
// session-smoke CI job greps this nonzero after a SIGKILL.
inline constexpr const char* kSessionsRecovered = "service.sessions_recovered";
// Snapshot/journal files that failed to parse during recovery and were
// quarantined (renamed aside, never deleted).
inline constexpr const char* kSessionsQuarantined =
    "service.sessions_quarantined";
// Sessions persisted by a graceful SIGTERM drain.
inline constexpr const char* kSessionsDrained = "service.sessions_drained";
// In-flight requests completed (not abandoned) after the stop signal.
inline constexpr const char* kServiceDrainedRequests =
    "service.drained_requests";

// Canonical histogram names of the session layer (nanosecond values).
inline constexpr const char* kSessionMutateLatency = "session.mutate";
inline constexpr const char* kSessionPlanLatency = "session.plan";

// Canonical metric names used by the fault-tolerance subsystem.
inline constexpr const char* kFaultsInjected = "fault.flips_injected";
inline constexpr const char* kFaultsDetected = "fault.flips_detected";
inline constexpr const char* kIntegrityScans = "verify.integrity_scans";
inline constexpr const char* kConformanceRuns = "verify.conformance_runs";
inline constexpr const char* kVerifierCacheHits = "verify.version_cache_hits";
inline constexpr const char* kRecoveryResumes = "recovery.resumes";
inline constexpr const char* kRecoveryPatches = "recovery.patches";
inline constexpr const char* kRecoveryRollbacks = "recovery.rollbacks";

// Canonical names of the live telemetry plane (stats frame, `rfsmc
// stats`): stats/trace-dump request counts, level gauges, and the rolling
// (sliding-window) latency views.
inline constexpr const char* kServiceStatsRequests = "service.stats_requests";
inline constexpr const char* kServiceTraceDumps = "service.trace_dumps";
inline constexpr const char* kServiceWorkersAlive = "service.workers_alive";
inline constexpr const char* kServiceQueueDepth = "service.queue_depth";
inline constexpr const char* kServicePlanCacheSize =
    "service.plan_cache_size";
inline constexpr const char* kSessionsOpenGauge = "session.open_sessions";
inline constexpr const char* kSessionSchedulerDepth =
    "session.scheduler_depth";
// Rolling-window twins of the cumulative request/mutate histograms.
inline constexpr const char* kServiceRequestWindow = "service.request_window";
inline constexpr const char* kSessionMutateWindow = "session.mutate_window";
// Chaos-injection evidence (util/chaos): one bump per injected fault, so
// invariant sweeps can assert every scheduled fault was actually seen, plus
// the transport's count of frames rejected for bad CRC/length (util/ipc).
inline constexpr const char* kServiceChaosDiskFaults =
    "service.chaos_disk_faults";
inline constexpr const char* kServiceChaosNetFaults =
    "service.chaos_net_faults";
inline constexpr const char* kServiceFramesRejected =
    "service.frames_rejected";
// Session replication plane (service/repl.hpp): shipping volume, standby
// lag (gauges, refreshed at stats scrape), promotions after a primary
// loss, and the epoch fence firing against a deposed primary.  The
// failover-smoke CI job greps kServiceFailovers / kServiceStaleEpochRejected.
inline constexpr const char* kServiceReplRecordsShipped =
    "service.repl_records_shipped";
inline constexpr const char* kServiceReplSnapshotsShipped =
    "service.repl_snapshots_shipped";
inline constexpr const char* kServiceReplShipErrors =
    "service.repl_ship_errors";
inline constexpr const char* kServiceReplLagRecords =
    "service.repl_lag_records";
inline constexpr const char* kServiceReplLagMs = "service.repl_lag_ms";
inline constexpr const char* kServiceFailovers = "service.failovers";
inline constexpr const char* kServiceStaleEpochRejected =
    "service.stale_epoch_rejected";

/// Every canonical metric name above, in one list — the single source of
/// truth the naming-drift regression test diffs sink output against
/// (tests/test_metrics_names.cpp).  A name emitted by any sink or stderr
/// summary token that is not in this set is drift.
std::vector<std::string> canonicalNames();

}  // namespace rfsm::metrics
