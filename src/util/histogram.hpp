// Fixed-bucket log-scale latency histograms with percentile extraction.
//
// A Histogram is a lock-free set of bucket counters covering the whole
// uint64 nanosecond range: values 0..3 get one bucket each, after which
// every power of two is split into 4 sub-buckets (relative error <= 25%,
// 252 buckets, 2 KB).  record() is two relaxed atomic adds, so hot paths
// (decodeOrder, per-instance planning, verifier runs) can feed a histogram
// unconditionally, like the metrics counters.  Percentiles are computed
// from a point-in-time copy of the buckets and reported as the upper edge
// of the bucket containing the requested rank — a deterministic,
// conservative estimate.
#pragma once

#include <chrono>
#include <cstdint>

namespace rfsm::metrics {

/// Log-scale latency histogram; values are nanoseconds by convention.
class Histogram {
 public:
  /// 2 mantissa bits: 4 sub-buckets per octave.
  static constexpr int kSubBuckets = 4;
  /// Buckets 0..3 are exact; octave o >= 2 contributes 4 buckets, up to
  /// the top bit of uint64.
  static constexpr int kBucketCount = 63 * kSubBuckets;

  /// Adds one sample (relaxed atomics; thread-safe).
  void record(std::uint64_t value);
  void record(std::chrono::nanoseconds elapsed) {
    record(static_cast<std::uint64_t>(
        elapsed.count() < 0 ? 0 : elapsed.count()));
  }

  std::uint64_t count() const;
  std::uint64_t sum() const;
  /// Largest recorded value (exact, not bucketed).
  std::uint64_t max() const;

  /// Value at quantile q in [0, 1]: the upper edge of the bucket holding
  /// the ceil(q * count)-th smallest sample, clamped to max().  0 when
  /// empty.
  std::uint64_t quantile(double q) const;

  void reset();

  /// Bucket index a value lands in (exposed for tests).
  static int bucketOf(std::uint64_t value);
  /// Smallest value mapping to `bucket`.
  static std::uint64_t bucketLowerBound(int bucket);

 private:
  // Accessed via std::atomic_ref, like the metrics counters.
  std::uint64_t counts_[kBucketCount] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Records the guard's lifetime into `histogram` (nanoseconds).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatency() {
    histogram_.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_));
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rfsm::metrics
