// Fixed-bucket log-scale latency histograms with percentile extraction.
//
// A Histogram is a lock-free set of bucket counters covering the whole
// uint64 nanosecond range: values 0..3 get one bucket each, after which
// every power of two is split into 4 sub-buckets (relative error <= 25%,
// 252 buckets, 2 KB).  record() is two relaxed atomic adds, so hot paths
// (decodeOrder, per-instance planning, verifier runs) can feed a histogram
// unconditionally, like the metrics counters.  Percentiles are computed
// from a point-in-time copy of the buckets and reported as the upper edge
// of the bucket containing the requested rank — a deterministic,
// conservative estimate.
#pragma once

#include <chrono>
#include <cstdint>

namespace rfsm::metrics {

/// Log-scale latency histogram; values are nanoseconds by convention.
class Histogram {
 public:
  /// 2 mantissa bits: 4 sub-buckets per octave.
  static constexpr int kSubBuckets = 4;
  /// Buckets 0..3 are exact; octave o >= 2 contributes 4 buckets, up to
  /// the top bit of uint64.
  static constexpr int kBucketCount = 63 * kSubBuckets;

  /// Adds one sample (relaxed atomics; thread-safe).
  void record(std::uint64_t value);
  void record(std::chrono::nanoseconds elapsed) {
    record(static_cast<std::uint64_t>(
        elapsed.count() < 0 ? 0 : elapsed.count()));
  }

  std::uint64_t count() const;
  std::uint64_t sum() const;
  /// Largest recorded value (exact, not bucketed).
  std::uint64_t max() const;

  /// Value at quantile q in [0, 1]: the upper edge of the bucket holding
  /// the ceil(q * count)-th smallest sample, clamped to max().  0 when
  /// empty.
  std::uint64_t quantile(double q) const;

  void reset();

  /// Adds `other`'s buckets, counts, and max into this histogram (relaxed
  /// loads of `other`, atomic adds here).  Used by RollingHistogram to
  /// merge live window slices into one percentile view.
  void mergeFrom(const Histogram& other);

  /// Bucket index a value lands in (exposed for tests).
  static int bucketOf(std::uint64_t value);
  /// Smallest value mapping to `bucket`.
  static std::uint64_t bucketLowerBound(int bucket);

 private:
  // Accessed via std::atomic_ref, like the metrics counters.
  std::uint64_t counts_[kBucketCount] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Sliding-window percentile histogram: a ring of time-sliced Histograms.
/// record() lands in the slice covering "now"; a slice whose time has come
/// around again is reset and re-tagged before use, so stats() always
/// aggregates only the last `window` of samples.  Everything is atomics —
/// recording off the hot path costs the same two relaxed adds as a plain
/// Histogram plus one epoch load; rotation is a CAS won by one recorder.
/// Slice boundaries are approximate by design: a sample racing a rotation
/// may land in a freshly cleared slice, which is harmless for a live
/// telemetry window.
class RollingHistogram {
 public:
  using Clock = std::chrono::steady_clock;

  /// Slices per window: the window advances in window/kSlices steps, so a
  /// freshly expired sample lingers at most one slice.
  static constexpr int kSlices = 8;

  RollingHistogram() : RollingHistogram(std::chrono::seconds(60)) {}
  explicit RollingHistogram(std::chrono::milliseconds window);

  void record(std::uint64_t value) { record(value, Clock::now()); }
  void record(std::uint64_t value, Clock::time_point now);
  void record(std::chrono::nanoseconds elapsed) {
    record(static_cast<std::uint64_t>(
        elapsed.count() < 0 ? 0 : elapsed.count()));
  }

  /// Point-in-time aggregate over the slices still inside the window.
  struct Stats {
    std::uint64_t count = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0;
  };
  Stats stats(Clock::time_point now = Clock::now()) const;

  std::uint64_t count(Clock::time_point now = Clock::now()) const;
  std::chrono::milliseconds window() const { return window_; }
  void reset();

 private:
  /// Monotone slice epoch at `now` (>= 1, so 0 = never used).
  std::uint64_t epochAt(Clock::time_point now) const;
  /// Re-tags (and clears) the slice for `epoch` if it is stale.
  void rotate(std::size_t slice, std::uint64_t epoch);

  std::chrono::milliseconds window_{60000};
  std::chrono::milliseconds sliceMs_{7500};
  struct Slice {
    std::uint64_t epoch = 0;  // accessed via std::atomic_ref
    Histogram hist;
  };
  Slice slices_[kSlices];
};

/// Records the guard's lifetime into a RollingHistogram (nanoseconds).
class ScopedWindowLatency {
 public:
  explicit ScopedWindowLatency(RollingHistogram& window)
      : window_(window), start_(std::chrono::steady_clock::now()) {}
  ~ScopedWindowLatency() {
    window_.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_));
  }
  ScopedWindowLatency(const ScopedWindowLatency&) = delete;
  ScopedWindowLatency& operator=(const ScopedWindowLatency&) = delete;

 private:
  RollingHistogram& window_;
  std::chrono::steady_clock::time_point start_;
};

/// Records the guard's lifetime into `histogram` (nanoseconds).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatency() {
    histogram_.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_));
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rfsm::metrics
