// Minimal leveled logging to stderr.
//
// The libraries themselves are silent by default; examples and benches raise
// the level to Info to narrate what they do.
#pragma once

#include <sstream>
#include <string>

namespace rfsm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void setLogLevel(LogLevel level);

/// Current global threshold.
LogLevel logLevel();

namespace detail {
void emitLog(LogLevel level, const std::string& message);
}  // namespace detail

/// Streams a single log record at `level`; usage: rfsm::log(LogLevel::kInfo)
/// << "text";  The record is emitted when the returned object dies.
class LogRecord {
 public:
  explicit LogRecord(LogLevel level) : level_(level) {}
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  ~LogRecord() { detail::emitLog(level_, stream_.str()); }

  template <typename T>
  LogRecord& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

inline LogRecord log(LogLevel level) { return LogRecord(level); }

}  // namespace rfsm
