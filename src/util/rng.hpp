// Deterministic, seedable random number generation.
//
// Every stochastic component in this repository (workload generator,
// evolutionary algorithm, benchmark harness) draws from rfsm::Rng so that a
// (seed, parameters) pair fully reproduces an experiment.  The generator is
// xoshiro256** (Blackman & Vigna), which is small, fast, and has no
// observable bias for the modest draws we make.
#pragma once

#include <cstdint>
#include <vector>

namespace rfsm {

/// xoshiro256** pseudo random generator with convenience draws.
/// Satisfies UniformRandomBitGenerator so it can also feed <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from `seed` via splitmix64 (a zero seed is valid).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()();

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container.
  template <typename Container>
  std::size_t pickIndex(const Container& c) {
    return static_cast<std::size_t>(below(c.size()));
  }

  /// Forks an independent stream (useful to give each benchmark repetition
  /// its own reproducible sequence).  Advances this generator.
  Rng split();

  /// Derives an independent stream keyed by (current state, index) WITHOUT
  /// advancing this generator.  The same (state, index) pair always yields
  /// the same stream, in any call order and from any thread — this is what
  /// makes parallel planning bit-identical to serial: unit k draws from
  /// substream(k) no matter which worker runs it or when.
  Rng substream(std::uint64_t index) const;

 private:
  std::uint64_t state_[4];
};

}  // namespace rfsm
