// A supervised pool of worker subprocesses with crash isolation.
//
// The supervisor owns N child processes (spawned from a caller-provided
// command line; each child speaks the ipc frame protocol on fd 3) and a
// bounded work queue.  Robustness properties, in the order they matter:
//
//  * Crash isolation — a worker that SIGKILLs, OOMs, or exits mid-request
//    loses only the request it was holding; the supervisor reaps it,
//    re-queues the work with exponential backoff + deterministic jitter,
//    and respawns the slot lazily.
//  * Capped restart rate — more than `restartLimit` crashes inside
//    `restartWindow` marks the pool unhealthy; further work is refused
//    with kUnavailable (callers degrade to in-process planning) instead of
//    fork-bombing a broken binary.  Health recovers when the window
//    slides past the crash burst.
//  * Deadlines — every attempt's read is bounded by the request deadline
//    plus a grace period (giving the worker a chance to answer
//    DEADLINE_EXCEEDED cooperatively) or, without a deadline, by
//    `idleTimeout`; a silent worker is killed, never waited on forever.
//  * Backpressure — the queue is bounded; submissions beyond capacity are
//    shed immediately (kShed) so overload degrades crisply instead of
//    growing an unbounded backlog.
//
// The payloads are opaque byte strings: the supervisor transports and
// retries, the service layer (src/service) defines what they mean.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "util/deadline.hpp"

namespace rfsm {

struct SupervisorOptions {
  /// Worker command line (argv[0] = executable).  The child must serve
  /// one response frame per request frame on ipc::kWorkerChannelFd.
  std::vector<std::string> workerCommand;
  int workers = 2;
  /// Queue bound; submissions beyond it are shed (kShed).
  std::size_t queueCapacity = 64;
  /// Attempts per item (first try + retries) before kFailed.
  int maxAttempts = 3;
  /// Exponential backoff: base * 2^(attempt-1) + jitter, capped.
  std::chrono::milliseconds backoffBase{25};
  std::chrono::milliseconds backoffCap{1000};
  /// Crashes tolerated inside restartWindow before the pool is unhealthy.
  int restartLimit = 5;
  std::chrono::milliseconds restartWindow{10000};
  /// Max silence per attempt when the item has no deadline.
  std::chrono::milliseconds idleTimeout{30000};
  /// When > 0, additionally bounds *every* attempt's silence, even under a
  /// generous request deadline — the hedge against a stuck worker: it is
  /// killed and the item retried on a fresh one while budget remains,
  /// instead of the hang eating the whole deadline.  0 = disabled.
  std::chrono::milliseconds attemptTimeout{0};
  /// Extra time past an item's deadline before the worker is killed (lets
  /// it report DEADLINE_EXCEEDED cooperatively).
  std::chrono::milliseconds deadlineGrace{500};
  /// Seed of the deterministic jitter stream.
  std::uint64_t jitterSeed = 1;
  /// Spawn every worker slot eagerly at construction instead of on first
  /// demand.  With `warmupPayload` set, each fresh child additionally
  /// serves one warm-up frame before the slot accepts real work, so exec +
  /// dynamic loading + allocator warm-up happen at startup, not on the
  /// first request (service.workers_preforked counts completed warm-ups).
  bool prefork = false;
  /// Opaque warm-up frame (the service layer supplies an
  /// encodeWarmupRequest() payload); empty = spawn without the exchange.
  std::string warmupPayload;
};

/// Outcome of one submitted work item.
struct WorkResult {
  enum class Status {
    kOk,                ///< `payload` holds the worker's response frame.
    kFailed,            ///< All attempts crashed/errored; see `error`.
    kDeadlineExceeded,  ///< The item's cancel token expired.
    kShed,              ///< Queue full: rejected without queueing.
    kUnavailable,       ///< Pool unhealthy or shutting down.
  };
  Status status = Status::kFailed;
  std::string payload;
  std::string error;
  int attempts = 0;
};

const char* toString(WorkResult::Status status);

/// Pure backoff schedule (exposed for tests): base * 2^(attempt-1),
/// capped, plus jitter01 * base.  `attempt` is 1-based.
std::chrono::milliseconds backoffDelay(int attempt,
                                       std::chrono::milliseconds base,
                                       std::chrono::milliseconds cap,
                                       double jitter01);

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options);
  /// Fails all queued work with kUnavailable, kills every child, joins.
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Submits one request payload.  The future always becomes ready — on
  /// success, crash-out, deadline, shed, and shutdown alike.  `cancel`
  /// carries the request deadline into transport enforcement (the worker
  /// sees the deadline through the payload, which is the service layer's
  /// business).
  std::future<WorkResult> submit(
      std::string payload,
      std::shared_ptr<const CancelToken> cancel = nullptr);

  struct Health {
    bool healthy = true;      ///< accepting work
    int workersAlive = 0;     ///< spawned children currently running
    int workersConfigured = 0;
    std::size_t queueDepth = 0;
    int crashesInWindow = 0;
    std::uint64_t crashes = 0;
    std::uint64_t retries = 0;
    std::uint64_t shed = 0;
  };
  Health health() const;

  /// Forces the pool unhealthy (fault-injection scenarios; sticky until
  /// clearUnhealthy).  Queued and future work fails with kUnavailable.
  void forceUnhealthy();
  void clearUnhealthy();

  /// Fault-injection hook, called with (dispatch ordinal, child pid) right
  /// after a request frame reached a worker — the window in which the CI
  /// smoke job SIGKILLs a worker mid-shard.
  using DispatchHook = std::function<void(std::uint64_t, int)>;
  void setDispatchHook(DispatchHook hook);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rfsm
