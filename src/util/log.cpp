#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace rfsm {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }

LogLevel logLevel() { return g_level.load(); }

namespace detail {
void emitLog(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::cerr << "[" << levelName(level) << "] " << message << "\n";
}
}  // namespace detail

}  // namespace rfsm
