// Cooperative cancellation and per-request deadlines.
//
// A CancelToken is the one object a long-running computation polls to learn
// that its result is no longer wanted: an explicit cancel() (client went
// away), or an absolute deadline (the request's latency budget ran out).
// Cancellation is *cooperative* — nothing is interrupted preemptively; the
// planner loops (planAll instances, EA generations, BFS scans, the decode
// loop) poll expired() at natural step boundaries and unwind by throwing
// CancelledError.  That discipline is what guarantees a timed-out request
// leaves no detached thread behind: every thread that was working on it
// reaches a poll point, throws, and retires through the normal join path.
//
// Tokens are thread-safe and sharable: one token fans out to every shard
// and worker thread of a request, so one cancel() stops them all.
#pragma once

#include <atomic>
#include <chrono>
#include <optional>

#include "util/check.hpp"

namespace rfsm {

/// Thrown by cancellation poll points when the token expired.  Derives from
/// Error, not ContractError: being cancelled is an expected outcome, and
/// batch drivers turn it into a per-instance DEADLINE_EXCEEDED/CANCELLED
/// result rather than a crash.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Shared cancellation flag plus optional absolute deadline.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  /// Token that expires `budget` from now.  (Tokens hold atomics and are
  /// neither copyable nor movable — this constructs in place; callers that
  /// share one across threads wrap it in a shared_ptr.)
  explicit CancelToken(std::chrono::milliseconds budget) {
    setDeadline(Clock::now() + budget);
  }

  /// Requests cancellation.  Sticky: a cancelled token never un-cancels.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) the absolute deadline.
  void setDeadline(Clock::time_point deadline) {
    deadlineNs_.store(deadline.time_since_epoch().count(),
                      std::memory_order_relaxed);
  }

  /// The armed deadline, if any.
  std::optional<Clock::time_point> deadline() const {
    const auto ns = deadlineNs_.load(std::memory_order_relaxed);
    if (ns == kNoDeadline) return std::nullopt;
    return Clock::time_point(Clock::duration(ns));
  }

  /// True once cancel() was called or the deadline passed.  This is the
  /// poll-point cost: one relaxed load, plus a clock read when a deadline
  /// is armed.
  bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const auto ns = deadlineNs_.load(std::memory_order_relaxed);
    return ns != kNoDeadline &&
           Clock::now().time_since_epoch().count() >= ns;
  }

  /// Remaining budget; zero when expired, nullopt when no deadline is
  /// armed (and not cancelled — a cancelled token reports zero).
  std::optional<std::chrono::milliseconds> remaining() const;

  /// Poll point: throws CancelledError("<where>: ...") when expired.
  void throwIfExpired(const char* where) const;

 private:
  static constexpr long long kNoDeadline = 0;

  std::atomic<bool> cancelled_{false};
  /// Deadline as steady_clock ns-since-epoch; kNoDeadline = disarmed (the
  /// epoch itself is not a representable deadline, which is fine — it is
  /// decades in the past on every platform we run on).
  std::atomic<long long> deadlineNs_{kNoDeadline};
};

/// Convenience poll for optional tokens: no-op on nullptr.
inline void pollCancel(const CancelToken* token, const char* where) {
  if (token != nullptr) token->throwIfExpired(where);
}

}  // namespace rfsm
