// A small directed multigraph with integer nodes and user-tagged edges.
//
// FSM state-transition graphs map onto this: nodes are states, edges are
// transitions, and the edge tag carries the (input, output) label index.
#pragma once

#include <cstdint>
#include <vector>

namespace rfsm {

/// Directed multigraph over nodes 0..nodeCount()-1.  Edges carry an opaque
/// 64-bit tag for the caller's use and are kept in insertion order per node.
class Digraph {
 public:
  struct Edge {
    int to = 0;
    std::uint64_t tag = 0;
  };

  Digraph() = default;
  explicit Digraph(int nodeCount);

  int nodeCount() const { return static_cast<int>(adjacency_.size()); }
  int edgeCount() const { return edgeCount_; }

  /// Adds a node and returns its id.
  int addNode();

  /// Adds a directed edge from -> to with an optional tag.
  void addEdge(int from, int to, std::uint64_t tag = 0);

  /// Removes every edge (from, to) whose tag equals `tag`; returns how many
  /// edges were removed.
  int removeEdgesByTag(int from, std::uint64_t tag);

  /// Out-edges of `node` in insertion order.
  const std::vector<Edge>& outEdges(int node) const;

  /// Drops all edges but keeps the node set.
  void clearEdges();

 private:
  std::vector<std::vector<Edge>> adjacency_;
  int edgeCount_ = 0;
};

}  // namespace rfsm
