#include "graph/digraph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rfsm {

Digraph::Digraph(int nodeCount) {
  RFSM_CHECK(nodeCount >= 0, "node count must be non-negative");
  adjacency_.resize(static_cast<std::size_t>(nodeCount));
}

int Digraph::addNode() {
  adjacency_.emplace_back();
  return nodeCount() - 1;
}

void Digraph::addEdge(int from, int to, std::uint64_t tag) {
  RFSM_CHECK(from >= 0 && from < nodeCount(), "edge source out of range");
  RFSM_CHECK(to >= 0 && to < nodeCount(), "edge target out of range");
  adjacency_[static_cast<std::size_t>(from)].push_back(Edge{to, tag});
  ++edgeCount_;
}

int Digraph::removeEdgesByTag(int from, std::uint64_t tag) {
  RFSM_CHECK(from >= 0 && from < nodeCount(), "edge source out of range");
  auto& edges = adjacency_[static_cast<std::size_t>(from)];
  const auto before = edges.size();
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [&](const Edge& e) { return e.tag == tag; }),
              edges.end());
  const int removed = static_cast<int>(before - edges.size());
  edgeCount_ -= removed;
  return removed;
}

const std::vector<Digraph::Edge>& Digraph::outEdges(int node) const {
  RFSM_CHECK(node >= 0 && node < nodeCount(), "node out of range");
  return adjacency_[static_cast<std::size_t>(node)];
}

void Digraph::clearEdges() {
  for (auto& edges : adjacency_) edges.clear();
  edgeCount_ = 0;
}

}  // namespace rfsm
