// Unweighted shortest paths on Digraph (BFS).
//
// The reconfiguration planners measure distances in clock cycles; every
// transition costs exactly one cycle, so BFS distances are exact costs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace rfsm {

/// Distance marker for unreachable nodes.
inline constexpr int kUnreachable = -1;

/// Result of a single-source BFS.
struct BfsResult {
  /// distance[v] = number of edges on a shortest path source->v, or
  /// kUnreachable.
  std::vector<int> distance;
  /// predecessor[v] = node preceding v on one shortest path (-1 for the
  /// source and unreachable nodes).
  std::vector<int> predecessor;
  /// predecessorEdgeTag[v] = tag of the edge predecessor[v] -> v used.
  std::vector<std::uint64_t> predecessorEdgeTag;
};

/// Single-source BFS from `source`.
BfsResult bfsFrom(const Digraph& graph, int source);

/// Distances-only single-source BFS: no predecessor bookkeeping, so
/// all-pairs sweeps don't allocate and discard two predecessor arrays per
/// source.
std::vector<int> bfsDistances(const Digraph& graph, int source);

/// Shortest path source -> target as a node sequence (inclusive of both
/// endpoints); std::nullopt when unreachable.  A path from a node to itself
/// is the singleton {source}.
std::optional<std::vector<int>> shortestPath(const Digraph& graph, int source,
                                             int target);

/// All-pairs BFS distance matrix; entry [u][v] is kUnreachable when v cannot
/// be reached from u.
std::vector<std::vector<int>> allPairsDistances(const Digraph& graph);

}  // namespace rfsm
