// Strongly connected components (Tarjan) and derived reachability facts.
//
// Used to reason about which states of a machine can reach which delta
// transition sources without a reset.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace rfsm {

/// Result of an SCC decomposition.
struct SccResult {
  /// componentOf[v] = component id of node v; ids are in reverse topological
  /// order of the condensation (i.e. an edge u->v implies
  /// componentOf[u] >= componentOf[v]).
  std::vector<int> componentOf;
  int componentCount = 0;
};

/// Tarjan's algorithm, iterative (no recursion-depth limit on big machines).
SccResult stronglyConnectedComponents(const Digraph& graph);

/// True if every node is reachable from `source`.
bool allReachableFrom(const Digraph& graph, int source);

}  // namespace rfsm
