#include "graph/shortest_path.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace rfsm {

BfsResult bfsFrom(const Digraph& graph, int source) {
  RFSM_CHECK(source >= 0 && source < graph.nodeCount(),
             "BFS source out of range");
  const auto n = static_cast<std::size_t>(graph.nodeCount());
  BfsResult result;
  result.distance.assign(n, kUnreachable);
  result.predecessor.assign(n, -1);
  result.predecessorEdgeTag.assign(n, 0);

  std::queue<int> frontier;
  result.distance[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (const auto& edge : graph.outEdges(u)) {
      auto& d = result.distance[static_cast<std::size_t>(edge.to)];
      if (d != kUnreachable) continue;
      d = result.distance[static_cast<std::size_t>(u)] + 1;
      result.predecessor[static_cast<std::size_t>(edge.to)] = u;
      result.predecessorEdgeTag[static_cast<std::size_t>(edge.to)] = edge.tag;
      frontier.push(edge.to);
    }
  }
  return result;
}

std::optional<std::vector<int>> shortestPath(const Digraph& graph, int source,
                                             int target) {
  RFSM_CHECK(target >= 0 && target < graph.nodeCount(),
             "BFS target out of range");
  const BfsResult bfs = bfsFrom(graph, source);
  if (bfs.distance[static_cast<std::size_t>(target)] == kUnreachable)
    return std::nullopt;
  std::vector<int> path;
  for (int v = target; v != -1; v = bfs.predecessor[static_cast<std::size_t>(v)])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<int> bfsDistances(const Digraph& graph, int source) {
  RFSM_CHECK(source >= 0 && source < graph.nodeCount(),
             "BFS source out of range");
  const auto n = static_cast<std::size_t>(graph.nodeCount());
  std::vector<int> distance(n, kUnreachable);
  std::queue<int> frontier;
  distance[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (const auto& edge : graph.outEdges(u)) {
      auto& d = distance[static_cast<std::size_t>(edge.to)];
      if (d != kUnreachable) continue;
      d = distance[static_cast<std::size_t>(u)] + 1;
      frontier.push(edge.to);
    }
  }
  return distance;
}

std::vector<std::vector<int>> allPairsDistances(const Digraph& graph) {
  std::vector<std::vector<int>> matrix;
  matrix.reserve(static_cast<std::size_t>(graph.nodeCount()));
  for (int u = 0; u < graph.nodeCount(); ++u)
    matrix.push_back(bfsDistances(graph, u));
  return matrix;
}

}  // namespace rfsm
