#include "graph/scc.hpp"

#include <algorithm>

#include "graph/shortest_path.hpp"

namespace rfsm {

SccResult stronglyConnectedComponents(const Digraph& graph) {
  const int n = graph.nodeCount();
  SccResult result;
  result.componentOf.assign(static_cast<std::size_t>(n), -1);

  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> onStack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  int nextIndex = 0;

  // Explicit DFS stack: (node, next out-edge position to visit).
  struct Frame {
    int node;
    std::size_t edgePos;
  };
  std::vector<Frame> dfs;

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const auto u = static_cast<std::size_t>(frame.node);
      if (frame.edgePos == 0) {
        index[u] = lowlink[u] = nextIndex++;
        stack.push_back(frame.node);
        onStack[u] = true;
      }
      const auto& edges = graph.outEdges(frame.node);
      bool descended = false;
      while (frame.edgePos < edges.size()) {
        const auto v = static_cast<std::size_t>(edges[frame.edgePos].to);
        ++frame.edgePos;
        if (index[v] == -1) {
          dfs.push_back({static_cast<int>(v), 0});
          descended = true;
          break;
        }
        if (onStack[v]) lowlink[u] = std::min(lowlink[u], index[v]);
      }
      if (descended) continue;
      if (lowlink[u] == index[u]) {
        // u is the root of a component; pop it off the Tarjan stack.
        for (;;) {
          const int w = stack.back();
          stack.pop_back();
          onStack[static_cast<std::size_t>(w)] = false;
          result.componentOf[static_cast<std::size_t>(w)] =
              result.componentCount;
          if (w == frame.node) break;
        }
        ++result.componentCount;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        const auto parent = static_cast<std::size_t>(dfs.back().node);
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
    }
  }
  return result;
}

bool allReachableFrom(const Digraph& graph, int source) {
  const BfsResult bfs = bfsFrom(graph, source);
  return std::none_of(bfs.distance.begin(), bfs.distance.end(),
                      [](int d) { return d == kUnreachable; });
}

}  // namespace rfsm
