#include "logic/cube.hpp"

#include <bit>

#include "util/check.hpp"

namespace rfsm::logic {

Cube::Cube(int width) : width_(width), care_(0), value_(0) {
  RFSM_CHECK(width >= 1 && width <= 64, "cube width must be 1..64");
}

Cube::Cube(int width, std::uint64_t care, std::uint64_t value)
    : width_(width), care_(care), value_(value & care) {}

Cube Cube::fromPattern(const std::string& pattern) {
  Cube cube(static_cast<int>(pattern.size()));
  for (std::size_t k = 0; k < pattern.size(); ++k) {
    // Leftmost character is the most significant variable.
    const int index = static_cast<int>(pattern.size() - 1 - k);
    cube.set(index, pattern[k]);
  }
  return cube;
}

Cube Cube::fromMinterm(std::uint64_t minterm, int width) {
  RFSM_CHECK(width >= 1 && width <= 64, "cube width must be 1..64");
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return Cube(width, mask, minterm & mask);
}

int Cube::literalCount() const { return std::popcount(care_); }

char Cube::at(int index) const {
  RFSM_CHECK(index >= 0 && index < width_, "cube index out of range");
  const std::uint64_t bit = std::uint64_t{1} << index;
  if (!(care_ & bit)) return '-';
  return (value_ & bit) ? '1' : '0';
}

void Cube::set(int index, char value) {
  RFSM_CHECK(index >= 0 && index < width_, "cube index out of range");
  const std::uint64_t bit = std::uint64_t{1} << index;
  switch (value) {
    case '-':
      care_ &= ~bit;
      value_ &= ~bit;
      break;
    case '0':
      care_ |= bit;
      value_ &= ~bit;
      break;
    case '1':
      care_ |= bit;
      value_ |= bit;
      break;
    default:
      RFSM_CHECK(false, "cube literal must be '0', '1' or '-'");
  }
}

bool Cube::containsMinterm(std::uint64_t minterm) const {
  return ((minterm ^ value_) & care_) == 0;
}

bool Cube::covers(const Cube& other) const {
  RFSM_CHECK(width_ == other.width_, "cube widths must match");
  // This covers other iff this's bound literals are a subset of other's and
  // agree on them.
  if ((care_ & other.care_) != care_) return false;
  return ((value_ ^ other.value_) & care_) == 0;
}

bool Cube::intersects(const Cube& other) const {
  RFSM_CHECK(width_ == other.width_, "cube widths must match");
  const std::uint64_t common = care_ & other.care_;
  return ((value_ ^ other.value_) & common) == 0;
}

int Cube::conflictCount(const Cube& other) const {
  RFSM_CHECK(width_ == other.width_, "cube widths must match");
  const std::uint64_t common = care_ & other.care_;
  return std::popcount((value_ ^ other.value_) & common);
}

std::optional<Cube> Cube::mergedWith(const Cube& other) const {
  RFSM_CHECK(width_ == other.width_, "cube widths must match");
  if (covers(other)) return *this;
  if (other.covers(*this)) return other;
  // Adjacency: identical care sets, exactly one disagreeing variable.
  if (care_ != other.care_) return std::nullopt;
  const std::uint64_t diff = (value_ ^ other.value_) & care_;
  if (std::popcount(diff) != 1) return std::nullopt;
  return Cube(width_, care_ & ~diff, value_ & ~diff);
}

std::string Cube::toPattern() const {
  std::string pattern(static_cast<std::size_t>(width_), '-');
  for (int index = 0; index < width_; ++index)
    pattern[static_cast<std::size_t>(width_ - 1 - index)] = at(index);
  return pattern;
}

}  // namespace rfsm::logic
