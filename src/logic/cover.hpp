// Covers: sums of cubes (two-level SOP), with exact simplification.
//
// The simplifier is a Quine-McCluskey-style reducer: repeatedly merge
// adjacent/contained cube pairs and drop single-cube-contained terms.  Both
// operations preserve the covered set exactly, so simplify() never changes
// the function — a property test verifies this against the truth table.
// It is an estimator, not Espresso: good enough to size a logic-based FSM
// implementation against the paper's RAM-based one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/cube.hpp"

namespace rfsm::logic {

/// A sum of products over a fixed variable count.
class Cover {
 public:
  explicit Cover(int width);

  int width() const { return width_; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  bool empty() const { return cubes_.empty(); }
  int cubeCount() const { return static_cast<int>(cubes_.size()); }

  /// Total bound literals across all cubes.
  int literalCount() const;

  void addCube(const Cube& cube);

  /// Builds the cover of exactly the given minterms.
  static Cover fromMinterms(const std::vector<std::uint64_t>& minterms,
                            int width);

  /// True if the function is 1 on `minterm`.
  bool evaluate(std::uint64_t minterm) const;

  /// Exact simplification: adjacent-pair merging to fixpoint + containment
  /// removal.  The covered set is unchanged.
  void simplify();

  /// One pattern per line, e.g. "1-0\n11-".
  std::string toString() const;

 private:
  int width_;
  std::vector<Cube> cubes_;
};

}  // namespace rfsm::logic
