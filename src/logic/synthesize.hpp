// Two-level synthesis of an FSM's next-state and output logic.
//
// Sizes the *fixed-logic* alternative to the paper's RAM-based Fig. 5
// implementation: encode states/inputs/outputs in binary, derive one SOP
// cover per next-state and output bit over the {state bits, input bits}
// variables, simplify, and estimate the 4-LUT cost.  A logic FSM is
// smaller for sparse machines but cannot be reconfigured one cell per
// cycle — the quantitative side of the paper's architectural choice.
#pragma once

#include <string>
#include <vector>

#include "fsm/machine.hpp"
#include "logic/cover.hpp"
#include "rtl/encoding.hpp"

namespace rfsm::logic {

/// Result of synthesizing one machine into two-level logic.
struct TwoLevelSynthesis {
  rtl::FsmEncoding encoding;
  /// One cover per next-state bit (LSB first); variables are
  /// {input bits (low), state bits (high)}.
  std::vector<Cover> nextStateBits;
  /// One cover per output bit (LSB first).
  std::vector<Cover> outputBits;

  int totalCubes() const;
  int totalLiterals() const;

  /// 4-input LUT estimate: each cover maps to an AND plane (one LUT per
  /// ceil(literals/4) with a chaining input) plus an OR tree over cubes.
  int estimatedLuts() const;

  /// Human-readable summary.
  std::string describe() const;
};

/// Synthesizes the machine's F and G into two-level covers (exact: a
/// property test evaluates every cover against the machine's tables).
/// Uses dense binary state codes.
TwoLevelSynthesis synthesizeTwoLevel(const Machine& machine);

/// Synthesis under an explicit state-code assignment (binary, Gray or
/// one-hot — see rtl::assignStateCodes).  Minterms whose state bits do not
/// form a valid code never occur and are left out of the ON-sets (they act
/// as implicit OFF-set, not as don't-cares; the estimate is conservative
/// for one-hot).
TwoLevelSynthesis synthesizeTwoLevel(const Machine& machine,
                                     const rtl::StateCodeMap& codes);

}  // namespace rfsm::logic
