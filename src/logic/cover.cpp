#include "logic/cover.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rfsm::logic {

Cover::Cover(int width) : width_(width) {
  RFSM_CHECK(width >= 1 && width <= 64, "cover width must be 1..64");
}

int Cover::literalCount() const {
  int total = 0;
  for (const Cube& cube : cubes_) total += cube.literalCount();
  return total;
}

void Cover::addCube(const Cube& cube) {
  RFSM_CHECK(cube.width() == width_, "cube width must match the cover");
  cubes_.push_back(cube);
}

Cover Cover::fromMinterms(const std::vector<std::uint64_t>& minterms,
                          int width) {
  Cover cover(width);
  cover.cubes_.reserve(minterms.size());
  for (const std::uint64_t m : minterms)
    cover.cubes_.push_back(Cube::fromMinterm(m, width));
  return cover;
}

bool Cover::evaluate(std::uint64_t minterm) const {
  return std::any_of(cubes_.begin(), cubes_.end(), [&](const Cube& cube) {
    return cube.containsMinterm(minterm);
  });
}

void Cover::simplify() {
  bool changed = true;
  while (changed) {
    changed = false;
    // Pairwise merging (adjacency or containment).
    for (std::size_t i = 0; i < cubes_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < cubes_.size() && !changed; ++j) {
        if (const auto merged = cubes_[i].mergedWith(cubes_[j])) {
          cubes_[i] = *merged;
          cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
        }
      }
    }
  }
  // Single-cube containment removal (merging above already handles pairwise
  // containment, but merges can create new containments across the list).
  for (std::size_t i = 0; i < cubes_.size();) {
    bool contained = false;
    for (std::size_t j = 0; j < cubes_.size(); ++j) {
      if (i != j && cubes_[j].covers(cubes_[i])) {
        contained = true;
        break;
      }
    }
    if (contained) {
      cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

std::string Cover::toString() const {
  std::string out;
  for (const Cube& cube : cubes_) {
    out += cube.toPattern();
    out += "\n";
  }
  return out;
}

}  // namespace rfsm::logic
