// Cubes: products of literals over binary variables.
//
// The classic two-level representation (as in Espresso/SIS): a cube over n
// variables assigns each variable 0, 1, or '-' (don't care).  We store the
// cube as a (care, value) bitmask pair, limited to 64 variables — far more
// than any state+input encoding in this repository needs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace rfsm::logic {

/// A product term over `width` binary variables.
class Cube {
 public:
  /// The universal cube (all don't-cares) over `width` variables.
  explicit Cube(int width);

  /// Cube from a pattern string like "1-0" (index 0 = leftmost character =
  /// most significant variable).  Throws ContractError on bad characters.
  static Cube fromPattern(const std::string& pattern);

  /// The single-minterm cube for `minterm` over `width` variables.
  static Cube fromMinterm(std::uint64_t minterm, int width);

  int width() const { return width_; }

  /// Number of bound literals (care positions).
  int literalCount() const;

  /// Value at variable `index`: '0', '1' or '-'.
  char at(int index) const;

  /// Sets variable `index` to '0', '1' or '-'.
  void set(int index, char value);

  /// True if the minterm (bit i of `minterm` = variable i) is covered.
  bool containsMinterm(std::uint64_t minterm) const;

  /// True if every minterm of `other` is covered by this cube.
  bool covers(const Cube& other) const;

  /// True if the two cubes share at least one minterm.
  bool intersects(const Cube& other) const;

  /// Number of variables where both cubes are bound and disagree.
  int conflictCount(const Cube& other) const;

  /// Merge of two cubes into one covering exactly their union:
  /// possible when they have identical care sets and differ in exactly one
  /// bound variable (adjacency), or when one covers the other.
  std::optional<Cube> mergedWith(const Cube& other) const;

  /// Pattern rendering, e.g. "1-0".
  std::string toPattern() const;

  bool operator==(const Cube& other) const = default;

 private:
  Cube(int width, std::uint64_t care, std::uint64_t value);

  int width_;
  std::uint64_t care_;   // bit i set = variable i is bound
  std::uint64_t value_;  // meaningful only where care_ is set
};

}  // namespace rfsm::logic
