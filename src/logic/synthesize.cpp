#include "logic/synthesize.hpp"

#include <sstream>

#include "util/check.hpp"

namespace rfsm::logic {

int TwoLevelSynthesis::totalCubes() const {
  int total = 0;
  for (const Cover& c : nextStateBits) total += c.cubeCount();
  for (const Cover& c : outputBits) total += c.cubeCount();
  return total;
}

int TwoLevelSynthesis::totalLiterals() const {
  int total = 0;
  for (const Cover& c : nextStateBits) total += c.literalCount();
  for (const Cover& c : outputBits) total += c.literalCount();
  return total;
}

int TwoLevelSynthesis::estimatedLuts() const {
  int luts = 0;
  auto coverLuts = [](const Cover& cover) {
    if (cover.empty()) return 0;
    int total = 0;
    for (const Cube& cube : cover.cubes()) {
      // AND of k literals: one 4-LUT covers up to 4; each further LUT adds
      // 3 literals (one input continues the chain).
      const int k = cube.literalCount();
      if (k >= 2) total += 1 + (k > 4 ? (k - 4 + 2) / 3 : 0);
    }
    // OR tree over the cube outputs (4-ary).
    int fanin = cover.cubeCount();
    while (fanin > 1) {
      const int stage = (fanin + 3) / 4;
      total += stage;
      fanin = stage;
    }
    return total;
  };
  for (const Cover& c : nextStateBits) luts += coverLuts(c);
  for (const Cover& c : outputBits) luts += coverLuts(c);
  return luts;
}

std::string TwoLevelSynthesis::describe() const {
  std::ostringstream os;
  os << "two-level FSM logic: " << nextStateBits.size()
     << " next-state bit(s), " << outputBits.size() << " output bit(s), "
     << totalCubes() << " cubes, " << totalLiterals() << " literals, ~"
     << estimatedLuts() << " 4-LUTs";
  return os.str();
}

TwoLevelSynthesis synthesizeTwoLevel(const Machine& machine) {
  return synthesizeTwoLevel(
      machine,
      rtl::assignStateCodes(machine.stateCount(), rtl::StateEncoding::kBinary));
}

TwoLevelSynthesis synthesizeTwoLevel(const Machine& machine,
                                     const rtl::StateCodeMap& codes) {
  RFSM_CHECK(static_cast<int>(codes.codes.size()) == machine.stateCount(),
             "code map must cover every state");
  TwoLevelSynthesis result;
  result.encoding = rtl::encodingFor(machine);
  result.encoding.stateWidth = codes.width;
  const int wi = result.encoding.inputWidth;
  const int ws = result.encoding.stateWidth;
  const int width = wi + ws;
  RFSM_CHECK(width <= 40, "two-level synthesis limited to 40 variables");

  // Minterm layout: input bits low, state-code bits high (matches the RAM
  // address packing {state, input} of rtl::FsmEncoding).
  auto mintermOf = [&](SymbolId state, SymbolId input) {
    return (codes.codeOf(state) << wi) | static_cast<std::uint64_t>(input);
  };

  std::vector<std::vector<std::uint64_t>> nextOn(
      static_cast<std::size_t>(ws));
  std::vector<std::vector<std::uint64_t>> outOn(
      static_cast<std::size_t>(result.encoding.outputWidth));
  for (SymbolId s = 0; s < machine.stateCount(); ++s) {
    for (SymbolId i = 0; i < machine.inputCount(); ++i) {
      const std::uint64_t m = mintermOf(s, i);
      const std::uint64_t nextCode = codes.codeOf(machine.next(i, s));
      const auto outCode = static_cast<std::uint64_t>(machine.output(i, s));
      for (int b = 0; b < ws; ++b)
        if (nextCode & (std::uint64_t{1} << b))
          nextOn[static_cast<std::size_t>(b)].push_back(m);
      for (int b = 0; b < result.encoding.outputWidth; ++b)
        if (outCode & (std::uint64_t{1} << b))
          outOn[static_cast<std::size_t>(b)].push_back(m);
    }
  }
  for (const auto& on : nextOn) {
    Cover cover = Cover::fromMinterms(on, width);
    cover.simplify();
    result.nextStateBits.push_back(std::move(cover));
  }
  for (const auto& on : outOn) {
    Cover cover = Cover::fromMinterms(on, width);
    cover.simplify();
    result.outputBits.push_back(std::move(cover));
  }
  return result;
}

}  // namespace rfsm::logic
