// Planner comparison on user-sized machines.
//
// Generates a random machine of the requested size, mutates it to a target
// with the requested number of delta transitions, and runs every planner,
// printing lengths against the Thm. 4.2/4.3 bounds.
//
// Run: ./migration_planner [states] [inputs] [deltas] [seed]
#include <cstdlib>
#include <iostream>

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rfsm;

  const int states = argc > 1 ? std::atoi(argv[1]) : 16;
  const int inputs = argc > 2 ? std::atoi(argv[2]) : 2;
  const int deltas = argc > 3 ? std::atoi(argv[3]) : 10;
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 7;

  Rng rng(seed);
  RandomMachineSpec spec;
  spec.stateCount = states;
  spec.inputCount = inputs;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = deltas;
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);

  std::cout << "random migration: |S| = " << states << ", |I| = " << inputs
            << ", |Td| = " << context.deltaCount() << ", seed = " << seed
            << "\n";
  std::cout << "bounds: lower " << programLowerBound(context) << " (Thm 4.3),"
            << " JSR upper " << jsrUpperBound(context) << " (Thm 4.2)\n\n";

  Table table({"planner", "|Z|", "rewrites", "temporaries", "resets",
               "valid"});
  auto report = [&](const std::string& name,
                    const ReconfigurationProgram& z) {
    const ValidationResult verdict = validateProgram(context, z);
    table.addRow({name, std::to_string(z.length()),
                  std::to_string(z.rewriteCount()),
                  std::to_string(z.temporaryCount()),
                  std::to_string(z.resetCount()),
                  verdict.valid ? "yes" : "NO: " + verdict.reason});
  };

  report("JSR", planJsr(context));
  report("greedy", planGreedy(context));
  report("no-temporary", planNoTemporary(context));

  EvolutionConfig config;
  Rng eaRng(seed + 1);
  report("EA (paper decoder)", planEvolutionary(context, config, eaRng).program);

  DecodeOptions better;
  better.rule = DecodeRule::kBestOfThree;
  Rng eaRng2(seed + 2);
  report("EA (best-of-three)",
         planEvolutionary(context, config, eaRng2, better).program);

  if (const auto exact = planExact(context, 8)) report("exact", *exact);

  std::cout << table.toMarkdown();
  return 0;
}
