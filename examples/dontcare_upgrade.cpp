// Don't-care-aware upgrades: migrating to a *partial* specification.
//
// An upgrade spec usually pins a handful of cells and leaves the rest
// open.  Completing the spec with the source machine's own values makes
// the unconstrained cells free (zero deltas); this example contrasts that
// with naive completions.
//
// Run: ./dontcare_upgrade [seed]
#include <cstdlib>
#include <iostream>

#include "core/apply.hpp"
#include "core/dontcare.hpp"
#include "core/planners.hpp"
#include "fsm/partial_machine.hpp"
#include "gen/generator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rfsm;
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 9;

  Rng rng(seed);
  RandomMachineSpec genSpec;
  genSpec.stateCount = 10;
  genSpec.inputCount = 2;
  genSpec.outputCount = 2;
  genSpec.name = "deployed";
  const Machine source = randomMachine(genSpec, rng);

  // The upgrade pins 5 cells to new values; everything else is don't care.
  PartialMachine spec("upgrade_spec", source.inputs(), source.outputs(),
                      source.states(), source.resetState());
  int pinned = 0;
  while (pinned < 5) {
    const auto s = static_cast<SymbolId>(rng.below(10));
    const auto i = static_cast<SymbolId>(rng.below(2));
    if (spec.isNextSpecified(i, s)) continue;
    spec.specify(i, s, static_cast<SymbolId>(rng.below(10)),
                 static_cast<SymbolId>(rng.below(2)));
    ++pinned;
  }
  std::cout << "upgrade spec pins " << pinned << " of "
            << 10 * 2 << " cells (" << spec.unspecifiedCount()
            << " left open)\n\n";

  Table table({"completion", "|Td|", "|Z| (greedy)", "honours spec"});
  const CompletionResult smart = completeForMigration(source, spec);
  {
    const MigrationContext context(source, smart.target);
    table.addRow({"don't-care-aware",
                  std::to_string(context.deltaCount()),
                  std::to_string(planGreedy(context).length()),
                  implementsSpecification(smart.target, spec) ? "yes" : "NO"});
  }
  for (int round = 0; round < 3; ++round) {
    const Machine naive = spec.completeRandomly(rng);
    const MigrationContext context(source, naive);
    table.addRow({"random #" + std::to_string(round + 1),
                  std::to_string(context.deltaCount()),
                  std::to_string(planGreedy(context).length()),
                  implementsSpecification(naive, spec) ? "yes" : "NO"});
  }
  std::cout << table.toMarkdown();
  std::cout << "\nEvery completion satisfies the spec, but resolving the\n"
               "don't-cares from the running machine keeps the delta set —\n"
               "and therefore the live-migration window — minimal.\n";
  return 0;
}
