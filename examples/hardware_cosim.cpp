// Hardware example: the Fig. 5 datapath, cycle by cycle.
//
// Instantiates the RTL model of the paper's FPGA implementation
// (F-RAM/G-RAM in block RAM, Reconfigurator, IN-MUX, RST-MUX, ST-REG),
// replays a planner-generated reconfiguration sequence on it, co-simulates
// against the abstract MutableMachine model, prints the Virtex XCV300
// resource estimate, and dumps the generated VHDL.
//
// Run: ./hardware_cosim [--vhdl]
#include <cstring>
#include <iostream>

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "core/sequence.hpp"
#include "gen/families.hpp"
#include "rtl/datapath.hpp"
#include "rtl/resources.hpp"
#include "rtl/vcd.hpp"
#include "rtl/vhdl.hpp"

int main(int argc, char** argv) {
  using namespace rfsm;

  const Machine source = example41Source();
  const Machine target = example41Target();
  const MigrationContext context(source, target);
  const ReconfigurationProgram z = planJsr(context);
  const ReconfigurationSequence sequence = sequenceFromProgram(z);

  std::cout << "migration " << source.name() << " -> " << target.name()
            << ": |Td| = " << context.deltaCount() << ", |Z| = " << z.length()
            << "\n\n";

  rtl::ReconfigurableFsmDatapath hw(context);
  hw.loadSequence(sequence);
  rtl::VcdRecorder vcd(hw.circuit(), {});
  hw.startReconfiguration();
  hw.clock(0);  // the cycle that consumes the start pulse
  vcd.sample(0);

  std::cout << "cycle-by-cycle reconfiguration:\n";
  int cycle = 0;
  while (hw.reconfiguring()) {
    const SymbolId before = hw.currentState();
    hw.clock(0);
    vcd.sample(static_cast<std::uint64_t>(cycle + 1));
    std::cout << "  cycle " << ++cycle << ": "
              << context.states().name(before) << " -> "
              << context.states().name(hw.currentState()) << "\n";
  }

  // Co-simulation check against the abstract model.
  const MutableMachine model = replayProgram(context, z);
  bool agree = hw.currentState() == model.state();
  for (SymbolId s = 0; agree && s < context.states().size(); ++s)
    for (SymbolId i = 0; i < context.inputs().size(); ++i)
      if (model.isSpecified(i, s) &&
          (hw.framEntry(i, s) != model.next(i, s) ||
           hw.gramEntry(i, s) != model.output(i, s))) {
        agree = false;
        break;
      }
  std::cout << "\nRTL datapath and abstract model agree: "
            << (agree ? "yes" : "NO") << "\n\n";

  const auto estimate = rtl::estimateResources(context, sequence);
  std::cout << "FPGA resource estimate (Virtex XCV300 model):\n"
            << rtl::describeEstimate(estimate) << "\n";

  if (argc > 1 && std::strcmp(argv[1], "--vhdl") == 0) {
    rtl::VhdlOptions options;
    options.entityName = "example41_rfsm";
    std::cout << "generated VHDL:\n"
              << rtl::generateVhdl(context, sequence, options);
  } else if (argc > 1 && std::strcmp(argv[1], "--vcd") == 0) {
    std::cout << "VCD waveform of the reconfiguration (load in GTKWave):\n"
              << vcd.toString();
  } else {
    std::cout << "(pass --vhdl for the generated VHDL entity, --vcd for the\n"
                 " reconfiguration waveform)\n";
  }
  return agree ? 0 : 1;
}
