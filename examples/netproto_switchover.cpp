// Domain example: packet-dependent protocol processing (the application
// domain named in the paper's introduction).
//
// A line-rate frame delimiter parses a serial stream for the v1 preamble.
// Mid-stream, the link announces a protocol upgrade; the parser FSM
// migrates itself — gradually, one table cell per clock — to the v2
// preamble without a full context swap, and the example accounts for the
// exact downtime.
//
// Run: ./netproto_switchover [seed]
#include <cstdlib>
#include <iostream>

#include "apps/netproto/protocol.hpp"
#include "core/bounds.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rfsm;
  using namespace rfsm::netproto;

  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 2026;
  const std::string v1 = "10110";
  const std::string v2 = "110101";

  std::cout << "frame preamble v1 = " << v1 << ", v2 = " << v2 << "\n\n";

  Table table({"planner", "|Td|", "|Z|", "JSR bound", "downtime bits",
               "frames pre", "frames post", "valid"});
  for (const auto& [planner, name] :
       {std::pair{UpgradePlanner::kJsr, "JSR"},
        std::pair{UpgradePlanner::kGreedy, "greedy"},
        std::pair{UpgradePlanner::kEvolutionary, "EA"}}) {
    Rng rng(seed);
    ProtocolProcessor processor(v1, v2, planner, seed);
    const SwitchoverReport report = processor.runSwitchover(
        /*preFrames=*/20, /*postFrames=*/20, /*payloadBits=*/9, rng);
    table.addRow({name, std::to_string(report.deltaCount),
                  std::to_string(report.programLength),
                  std::to_string(jsrUpperBound(report.deltaCount)),
                  std::to_string(report.droppedDuringUpgrade),
                  std::to_string(report.preUpgradeMatches),
                  std::to_string(report.postUpgradeMatches),
                  report.programValidated ? "yes" : "NO"});
  }
  std::cout << table.toMarkdown();
  std::cout << "\nThe EA upgrade needs the fewest link bits of downtime; a\n"
               "full-context swap would instead stall the link for an entire\n"
               "bitstream reload (milliseconds, i.e. millions of bits).\n";
  return 0;
}
