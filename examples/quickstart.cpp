// Quickstart: the paper's running example end to end.
//
// Builds the ones-detector of Example 2.1 / Fig. 3, reconfigures it into
// the zeros-counting machine of Fig. 4 with the four-cycle sequence of
// Table 1, and verifies the result — all through the public API.
//
// Run: ./quickstart
#include <iostream>

#include "core/apply.hpp"
#include "core/migration.hpp"
#include "core/program.hpp"
#include "core/sequence.hpp"
#include "fsm/builder.hpp"
#include "fsm/serialize.hpp"
#include "fsm/simulate.hpp"
#include "gen/families.hpp"

int main() {
  using namespace rfsm;

  // 1. Describe the FSM of Example 2.1 (or use the canned family
  //    onesDetector(); shown explicitly here as API documentation).
  MachineBuilder builder("ones_detector");
  builder.setResetState("S0");
  builder.addTransition("1", "S0", "S1", "0");
  builder.addTransition("1", "S1", "S1", "1");
  builder.addTransition("0", "S0", "S0", "0");
  builder.addTransition("0", "S1", "S0", "0");
  const Machine ones = builder.build();

  std::cout << "=== M: ones detector (Fig. 3) ===\n" << toDot(ones) << "\n";
  std::cout << "run on 1 1 1 0 1 1: ";
  for (const auto& o : runOnNames(ones, {"1", "1", "1", "0", "1", "1"}))
    std::cout << o << " ";
  std::cout << "\n\n";

  // 2. Set up the migration M -> M' (the zeros-counting machine that the
  //    Table 1 sequence produces).
  const Machine zeros = zerosDetector();
  const MigrationContext context(ones, zeros);
  std::cout << "=== Migration ones -> zeros ===\n";
  std::cout << "delta transitions (Def. 4.2):\n";
  for (const Transition& t : context.deltaTransitions())
    std::cout << "  " << context.describe(t) << "\n";

  // 3. The paper's hand-written reconfiguration program: four rewrite
  //    cycles r1..r4 (Table 1).
  const SymbolId in0 = context.inputs().at("0");
  const SymbolId in1 = context.inputs().at("1");
  const SymbolId s0 = context.states().at("S0");
  const SymbolId s1 = context.states().at("S1");
  const SymbolId o0 = context.outputs().at("0");
  const SymbolId o1 = context.outputs().at("1");
  ReconfigurationProgram z;
  z.steps.push_back(ReconfigStep::rewrite(in1, s1, o0));  // r1
  z.steps.push_back(ReconfigStep::rewrite(in1, s1, o0));  // r2
  z.steps.push_back(ReconfigStep::rewrite(in0, s0, o0));  // r3
  z.steps.push_back(ReconfigStep::rewrite(in0, s0, o1));  // r4

  std::cout << "\nreconfiguration sequence (Table 1):\n"
            << sequenceToMarkdown(context, sequenceFromProgram(z));

  // 4. Validate: replaying z on M must yield M', terminating in S0'.
  const ValidationResult verdict = validateProgram(context, z);
  std::cout << "\nprogram valid: " << (verdict.valid ? "yes" : "no")
            << " (" << verdict.cyclesExecuted << " cycles)\n";
  if (!verdict.valid) {
    std::cerr << "reason: " << verdict.reason << "\n";
    return 1;
  }

  // 5. Drive the reconfigured machine: it now counts zeros.
  MutableMachine machine = replayProgram(context, z);
  std::cout << "reconfigured machine on 1 0 0 1 0 0: ";
  for (const char* bit : {"1", "0", "0", "1", "0", "0"})
    std::cout << context.outputs().name(
                     machine.stepNormal(context.inputs().at(bit)))
              << " ";
  std::cout << "\n";
  return 0;
}
