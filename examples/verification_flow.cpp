// In-field verification flow: migrate, audit, conformance-test, repair.
//
// A deployed controller upgrades itself from hdlc_v1 to hdlc_v2.  The
// operator then (1) audits the configuration RAM against the golden image,
// (2) runs a W-method conformance suite through the I/O only, (3) injects
// a RAM upset and shows both checks catching it, and (4) repairs the upset
// gradually with a planned repair program.
//
// Run: ./verification_flow
#include <iostream>

#include "bdd/symbolic_fsm.hpp"
#include "core/apply.hpp"
#include "core/planners.hpp"
#include "core/repair.hpp"
#include "fsm/conformance.hpp"
#include "fsm/minimize.hpp"
#include "fsm/simulate.hpp"
#include "gen/samples.hpp"

int main() {
  using namespace rfsm;

  const Machine v1 = sampleMachine("hdlc_v1");
  const Machine v2 = sampleMachine("hdlc_v2");
  const MigrationContext context(v1, v2);

  // --- Migration ---------------------------------------------------------
  const ReconfigurationProgram z = planGreedy(context);
  MutableMachine device = replayProgram(context, z);
  std::cout << "migrated " << v1.name() << " -> " << v2.name() << " in "
            << z.length() << " cycles (|Td| = " << context.deltaCount()
            << ")\n";

  // --- 1. RAM audit ------------------------------------------------------
  std::cout << "RAM audit (readback vs golden image): "
            << (remainingDeltas(device).empty() ? "clean" : "DIRTY") << "\n";

  // --- 2. Black-box conformance test --------------------------------------
  const Machine spec = minimize(v2).machine;
  const ConformanceSuite suite = wMethodSuite(spec);
  std::cout << "W-method suite: " << suite.testCount() << " tests, "
            << suite.totalInputs() << " input symbols total\n";
  // Drive the *device* through the suite via its I/O only.
  auto runSuiteOnDevice = [&](MutableMachine dut) {
    for (const Word& test : suite.tests) {
      dut.applyStep(ReconfigStep::reset());
      Simulator golden(spec);
      for (const SymbolId i : test) {
        const SymbolId supersetInput =
            context.inputs().at(spec.inputs().name(i));
        const SymbolId got = dut.stepNormal(supersetInput);
        const SymbolId want = golden.step(i);
        if (context.outputs().name(got) != spec.outputs().name(want))
          return false;
      }
    }
    return true;
  };
  std::cout << "conformance verdict: "
            << (runSuiteOnDevice(device) ? "PASS" : "FAIL") << "\n";

  // --- 3. Fault injection --------------------------------------------------
  const SymbolId faultInput = context.inputs().at("1");
  const SymbolId faultState = context.liftTargetState(v2.states().at("Q3"));
  injectFault(device, faultInput, faultState, context.targetReset(),
              context.outputs().at("1"));
  std::cout << "\ninjected an upset into cell (1, Q3)\n";
  std::cout << "RAM audit now: "
            << (remainingDeltas(device).empty() ? "clean" : "DIRTY") << " ("
            << remainingDeltas(device).size() << " cell(s) wrong)\n";
  std::cout << "conformance verdict now: "
            << (runSuiteOnDevice(device) ? "PASS" : "FAIL") << "\n";

  // --- 4. Gradual repair ----------------------------------------------------
  const ReconfigurationProgram repair = planRepair(device);
  device.applyProgram(repair);
  std::cout << "\nrepair program of " << repair.length()
            << " cycles applied\n";
  std::cout << "RAM audit after repair: "
            << (remainingDeltas(device).empty() ? "clean" : "DIRTY") << "\n";
  std::cout << "conformance verdict after repair: "
            << (runSuiteOnDevice(device) ? "PASS" : "FAIL") << "\n";

  // Bonus: double-check v2 against itself symbolically (two independent
  // equivalence engines).
  const auto symbolic = bdd::checkEquivalenceSymbolic(v2, spec);
  std::cout << "\nsymbolic cross-check (v2 vs minimized v2): "
            << (symbolic.equivalent ? "equivalent" : "DIFFERENT") << ", "
            << symbolic.reachablePairs << " reachable product states, "
            << symbolic.bddNodes << " BDD nodes\n";
  return 0;
}
