// Release-train example: a deployed frame delimiter walks through four
// firmware revisions by gradual self-reconfiguration, with a planned
// rollback program for every hop.
//
// Run: ./release_train [seed]
#include <cstdlib>
#include <iostream>

#include "core/chain.hpp"
#include "gen/families.hpp"
#include "gen/samples.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rfsm;
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 4;

  // Four revisions of a flag delimiter: the flag pattern evolves release
  // by release (states are reused across revisions, keeping deltas small).
  const std::vector<Machine> revisions = {
      sequenceDetector("0110").withName("fw1"),
      sequenceDetector("01110").withName("fw2"),
      sequenceDetector("011110").withName("fw3"),
      sampleMachine("hdlc_v1").withName("fw4"),
  };

  std::cout << "release train: fw1 -> fw2 -> fw3 -> fw4 ("
            << revisions.back().stateCount() << " states at the end)\n\n";

  for (const auto planner :
       {ChainPlanner::kJsr, ChainPlanner::kGreedy,
        ChainPlanner::kEvolutionary}) {
    const ChainPlan plan = planMigrationChain(revisions, planner, seed);
    Table table({"hop", "|Td|", "upgrade |Z|", "rollback |Z|", "valid"});
    for (std::size_t hop = 0; hop < plan.stages.size(); ++hop) {
      const ChainStage& stage = plan.stages[hop];
      table.addRow(
          {"fw" + std::to_string(hop + 1) + " -> fw" + std::to_string(hop + 2),
           std::to_string(stage.context.deltaCount()),
           std::to_string(stage.upgrade.length()),
           std::to_string(stage.rollback.length()),
           stage.upgradeValid && stage.rollbackValid ? "yes" : "NO"});
    }
    std::cout << "planner " << toString(planner) << " (total upgrade "
              << plan.totalUpgradeLength() << " cycles, total rollback "
              << plan.totalRollbackLength() << "):\n"
              << table.toMarkdown() << "\n";
  }
  std::cout << "Each hop's program is validated independently; the device\n"
               "stays a working automaton between hops, so the train can\n"
               "pause - or roll back - at any release boundary.\n";
  return 0;
}
