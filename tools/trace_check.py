#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by the rfsm tracer.

Usage: trace_check.py TRACE.json [TRACE2.json ...]

Checks (exit 0 = all files pass, 1 = any violation):
  * top level is an object with a non-empty "traceEvents" array
  * every event has the required keys: ph, name, pid, tid
  * ph is one of the phases the tracer emits: X i b n e M
  * complete events (X) carry numeric, non-negative ts and dur
  * instant events (i) carry the scope key "s"
  * async events (b/n/e) carry an id, and every begin has a matching end
    with the same (category, id)
  * timestamps are monotone enough to be plausible (no negative ts)

The checker is dependency-free (json + sys only) so CI can run it on the
bare runner image.
"""

import json
import sys

PHASES = {"X", "i", "b", "n", "e", "M"}
REQUIRED = ("ph", "name", "pid", "tid")


def fail(path, index, message):
    print(f"{path}: event {index}: {message}", file=sys.stderr)
    return False


def check_file(path):
    ok = True
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{path}: not loadable JSON: {error}", file=sys.stderr)
        return False

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        print(f"{path}: missing top-level traceEvents", file=sys.stderr)
        return False
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        print(f"{path}: traceEvents must be a non-empty array",
              file=sys.stderr)
        return False

    async_open = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            ok = fail(path, index, "not an object")
            continue
        for key in REQUIRED:
            if key not in event:
                ok = fail(path, index, f"missing required key '{key}'")
        ph = event.get("ph")
        if ph not in PHASES:
            ok = fail(path, index, f"unexpected phase {ph!r}")
            continue
        if not event.get("name"):
            ok = fail(path, index, "empty name")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    ok = fail(path, index,
                              f"complete event needs numeric {key} >= 0, "
                              f"got {value!r}")
        elif ph == "i":
            if "s" not in event:
                ok = fail(path, index, "instant event missing scope 's'")
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                ok = fail(path, index, f"instant event needs ts, got {ts!r}")
        elif ph in ("b", "n", "e"):
            if "id" not in event:
                ok = fail(path, index, "async event missing id")
            track = (event.get("cat"), event.get("id"))
            if ph == "b":
                async_open[track] = async_open.get(track, 0) + 1
            elif ph == "e":
                if async_open.get(track, 0) <= 0:
                    ok = fail(path, index,
                              f"async end without begin on track {track}")
                else:
                    async_open[track] -= 1

    unclosed = {track: n for track, n in async_open.items() if n > 0}
    if unclosed:
        print(f"{path}: unclosed async tracks: {unclosed}", file=sys.stderr)
        ok = False

    if ok:
        print(f"{path}: OK ({len(events)} events)")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    results = [check_file(path) for path in argv[1:]]
    return 0 if all(results) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
