#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by the rfsm tracer.

Usage: trace_check.py [--lineage A>B>C] [--distinct-pids N]
                      TRACE.json [TRACE2.json ...]

Checks (exit 0 = all files pass, 1 = any violation):
  * top level is an object with a non-empty "traceEvents" array
  * every event has the required keys: ph, name, pid, tid
  * ph is one of the phases the tracer emits: X i b n e M
  * complete events (X) carry numeric, non-negative ts and dur
  * instant events (i) carry the scope key "s"
  * async events (b/n/e) carry an id, and every begin has a matching end
    with the same (category, id)
  * timestamps are monotone enough to be plausible (no negative ts)

Distributed-trace assertions (evaluated across ALL given files together,
so they work on per-process dumps and on a stitched merge alike):
  * --lineage A>B>C  some span named C has an ancestor named B (following
    parent_span_id links, intermediate spans allowed) which in turn has an
    ancestor named A, all within one trace_id.  Repeatable.
  * --distinct-pids N  the events span at least N distinct pids.

The checker is dependency-free (json + sys only) so CI can run it on the
bare runner image.
"""

import json
import sys

PHASES = {"X", "i", "b", "n", "e", "M"}
REQUIRED = ("ph", "name", "pid", "tid")


def fail(path, index, message):
    print(f"{path}: event {index}: {message}", file=sys.stderr)
    return False


def check_file(path):
    ok = True
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{path}: not loadable JSON: {error}", file=sys.stderr)
        return False

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        print(f"{path}: missing top-level traceEvents", file=sys.stderr)
        return False
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        print(f"{path}: traceEvents must be a non-empty array",
              file=sys.stderr)
        return False

    async_open = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            ok = fail(path, index, "not an object")
            continue
        for key in REQUIRED:
            if key not in event:
                ok = fail(path, index, f"missing required key '{key}'")
        ph = event.get("ph")
        if ph not in PHASES:
            ok = fail(path, index, f"unexpected phase {ph!r}")
            continue
        if not event.get("name"):
            ok = fail(path, index, "empty name")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    ok = fail(path, index,
                              f"complete event needs numeric {key} >= 0, "
                              f"got {value!r}")
        elif ph == "i":
            if "s" not in event:
                ok = fail(path, index, "instant event missing scope 's'")
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                ok = fail(path, index, f"instant event needs ts, got {ts!r}")
        elif ph in ("b", "n", "e"):
            if "id" not in event:
                ok = fail(path, index, "async event missing id")
            track = (event.get("cat"), event.get("id"))
            if ph == "b":
                async_open[track] = async_open.get(track, 0) + 1
            elif ph == "e":
                if async_open.get(track, 0) <= 0:
                    ok = fail(path, index,
                              f"async end without begin on track {track}")
                else:
                    async_open[track] -= 1

    unclosed = {track: n for track, n in async_open.items() if n > 0}
    if unclosed:
        print(f"{path}: unclosed async tracks: {unclosed}", file=sys.stderr)
        ok = False

    if ok:
        print(f"{path}: OK ({len(events)} events)")
    return ok


def collect_spans(paths):
    """All distributed spans across the files: span_id -> (name, parent,
    trace_id, pid).  Span ids are process-unique (pid-salted), so one flat
    map covers a multi-process trace."""
    spans = {}
    pids = set()
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        for event in doc.get("traceEvents", []):
            if not isinstance(event, dict):
                continue
            if "pid" in event and event.get("ph") != "M":
                pids.add(event["pid"])
            args = event.get("args")
            if not isinstance(args, dict) or "span_id" not in args:
                continue
            spans[args["span_id"]] = (
                event.get("name"),
                args.get("parent_span_id", 0),
                args.get("trace_id"),
                event.get("pid"),
            )
    return spans, pids


def check_lineage(spans, chain):
    """True when some span named chain[-1] has ancestors named
    chain[-2], ..., chain[0] in order (gaps allowed), sharing a trace_id."""
    names = [name for name in chain.split(">") if name]
    if len(names) < 2:
        print(f"--lineage needs at least two names, got {chain!r}",
              file=sys.stderr)
        return False
    for span_id, (name, parent, trace_id, _pid) in spans.items():
        if name != names[-1]:
            continue
        need = len(names) - 2
        cursor = parent
        seen = set()
        while cursor in spans and cursor not in seen and need >= 0:
            seen.add(cursor)
            up_name, up_parent, up_trace, _ = spans[cursor]
            if up_trace != trace_id:
                break
            if up_name == names[need]:
                need -= 1
            cursor = up_parent
        if need < 0:
            return True
    print(f"lineage not found: {chain} "
          f"({len(spans)} spans examined)", file=sys.stderr)
    return False


def main(argv):
    lineages = []
    distinct_pids = None
    paths = []
    k = 1
    while k < len(argv):
        if argv[k] == "--lineage":
            if k + 1 >= len(argv):
                print("--lineage needs a chain", file=sys.stderr)
                return 2
            lineages.append(argv[k + 1])
            k += 2
        elif argv[k] == "--distinct-pids":
            if k + 1 >= len(argv):
                print("--distinct-pids needs a count", file=sys.stderr)
                return 2
            distinct_pids = int(argv[k + 1])
            k += 2
        else:
            paths.append(argv[k])
            k += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    results = [check_file(path) for path in paths]

    if lineages or distinct_pids is not None:
        spans, pids = collect_spans(paths)
        for chain in lineages:
            results.append(check_lineage(spans, chain))
        if distinct_pids is not None:
            if len(pids) >= distinct_pids:
                print(f"distinct pids: OK ({len(pids)} >= {distinct_pids})")
                results.append(True)
            else:
                print(f"expected >= {distinct_pids} distinct pids, "
                      f"got {len(pids)}: {sorted(pids)}", file=sys.stderr)
                results.append(False)

    return 0 if all(results) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
