#!/usr/bin/env python3
"""Merge per-process rfsm trace dumps onto one timeline.

Usage: trace_stitch.py --out MERGED.json DUMP.json [DUMP2.json ...]

Every dump the tracer writes (rfsmc --trace-out, RFSM_TRACE_OUT, or
`rfsmc trace-dump`) carries three top-level fields next to traceEvents:

  steadyEpochNs  the process trace epoch on the machine-wide
                 CLOCK_MONOTONIC timebase — event "ts" values are
                 microseconds relative to this epoch
  pid            the emitting process id
  processName    human name ("rfsmc", "rfsmd", "rfsmd-worker")

`rfsmc trace-dump` additionally injects "clockOffsetNs", the estimated
offset of the remote host's CLOCK_MONOTONIC relative to the requesting
host's (from the request/reply midpoint handshake).  Same-host dumps need
no offset: CLOCK_MONOTONIC is shared, so aligning the epochs suffices.

The stitcher maps every event to

    absolute_ns = steadyEpochNs + ts * 1000 - clockOffsetNs

subtracts the earliest absolute time across all dumps, and emits a single
Chrome trace-event / Perfetto JSON whose events keep their original pids
(with process_name metadata preserved), so one timeline shows the client,
the fabric, each daemon, and each worker subprocess causally aligned.

Dependency-free (json + sys only) so CI can run it on the bare runner.
"""

import json
import sys


def load_dump(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: missing top-level traceEvents")
    if "steadyEpochNs" not in doc:
        raise ValueError(
            f"{path}: missing steadyEpochNs (not an rfsm trace dump?)")
    return doc


def absolute_ns(doc, ts_us):
    epoch = doc.get("steadyEpochNs", 0)
    offset = doc.get("clockOffsetNs", 0)
    return epoch + ts_us * 1000.0 - offset


def stitch(paths):
    docs = [(path, load_dump(path)) for path in paths]

    base = None
    for _, doc in docs:
        for event in doc["traceEvents"]:
            if "ts" not in event:
                continue
            t = absolute_ns(doc, event["ts"])
            base = t if base is None else min(base, t)
    if base is None:
        raise ValueError("no timestamped events in any input")

    pids = set()
    merged = []
    for path, doc in docs:
        pid = doc.get("pid")
        if pid is not None:
            pids.add(pid)
        for event in doc["traceEvents"]:
            event = dict(event)
            if "ts" in event:
                event["ts"] = round(
                    (absolute_ns(doc, event["ts"]) - base) / 1000.0, 3)
            merged.append(event)
        name = doc.get("processName")
        if name and pid is not None:
            # Belt and braces: ensure the merged view names the process even
            # if the source dump predates its own process_name metadata.
            merged.append({
                "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                "args": {"name": name},
            })

    # Metadata first, then everything else in timeline order — Perfetto
    # does not require sorting, but diffs of stitched traces read better.
    merged.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0.0)))
    return {"displayTimeUnit": "ns", "traceEvents": merged}, pids


def main(argv):
    out_path = None
    paths = []
    k = 1
    while k < len(argv):
        if argv[k] == "--out":
            if k + 1 >= len(argv):
                print("--out needs a path", file=sys.stderr)
                return 2
            out_path = argv[k + 1]
            k += 2
        else:
            paths.append(argv[k])
            k += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        doc, pids = stitch(paths)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"trace_stitch: {error}", file=sys.stderr)
        return 1

    text = json.dumps(doc, indent=1)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    print(
        f"trace_stitch: merged {len(paths)} dump(s), "
        f"{len(doc['traceEvents'])} events, {len(pids)} process(es)",
        file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
