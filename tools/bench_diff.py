#!/usr/bin/env python3
"""Diff two BENCH_<name>.json sidecars and gate on perf regressions.

Usage: bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]
                     [--wall-threshold PCT] [--counters-must-match]

Compares the telemetry snapshots two runs of the same bench wrote with
--json-out (bench/common.hpp, writeBenchJson):

  * counters        printed as a drift table; with --counters-must-match
                    any difference is a failure (for benches whose counter
                    artifact is bit-identical by contract)
  * histograms      per-name p99_ms compared; a current p99 more than
                    --threshold percent above baseline is a REGRESSION
  * timers          per-name mean ms (total_ms / count) compared under the
                    same threshold, reported but only advisory (timer means
                    on shared CI runners are noisy; the gate is p99)
  * wall_ms         artifact wall time compared under --wall-threshold
                    (default: off) for coarse end-to-end drift

Exit 0 = no gated regression, 1 = regression or counter mismatch,
2 = unusable input.  Sub-millisecond baselines are ignored by the p99 gate
(noise floor); the table still shows them.

Dependency-free (json + sys only) so CI can run it on the bare runner
image.
"""

import json
import sys

NOISE_FLOOR_MS = 1.0


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{path}: not loadable JSON: {error}", file=sys.stderr)
        return None
    if not isinstance(doc, dict) or "telemetry" not in doc:
        print(f"{path}: missing 'telemetry' section", file=sys.stderr)
        return None
    return doc


def pct(base, now):
    if base <= 0:
        return 0.0
    return 100.0 * (now - base) / base


def main(argv):
    threshold = 25.0
    wall_threshold = None
    counters_must_match = False
    rest = argv[1:]
    args = []
    k = 0
    while k < len(rest):
        arg = rest[k]
        if arg == "--threshold":
            k += 1
            threshold = float(rest[k])
        elif arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--wall-threshold":
            k += 1
            wall_threshold = float(rest[k])
        elif arg.startswith("--wall-threshold="):
            wall_threshold = float(arg.split("=", 1)[1])
        elif arg == "--counters-must-match":
            counters_must_match = True
        else:
            args.append(arg)
        k += 1
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline = load(args[0])
    current = load(args[1])
    if baseline is None or current is None:
        return 2
    if baseline.get("bench") != current.get("bench"):
        print(
            f"refusing to diff different benches: "
            f"'{baseline.get('bench')}' vs '{current.get('bench')}'",
            file=sys.stderr,
        )
        return 2

    failed = False
    name = current.get("bench", "?")
    print(
        f"bench_diff: {name}  "
        f"{baseline.get('git_rev', '?')} -> {current.get('git_rev', '?')}  "
        f"(p99 gate: +{threshold:g}%)"
    )

    base_t = baseline["telemetry"]
    cur_t = current["telemetry"]

    # Counters: drift table, optionally gating.
    base_counters = base_t.get("counters", {})
    cur_counters = cur_t.get("counters", {})
    drifted = sorted(
        k
        for k in set(base_counters) | set(cur_counters)
        if base_counters.get(k) != cur_counters.get(k)
    )
    if drifted:
        print("counter drift:")
        for key in drifted:
            print(
                f"  {key}: {base_counters.get(key, 0)} -> "
                f"{cur_counters.get(key, 0)}"
            )
        if counters_must_match:
            print("FAIL: counters differ (--counters-must-match)")
            failed = True
    else:
        print("counters: identical")

    # Histograms: p99 gate.
    base_hists = base_t.get("histograms", {})
    cur_hists = cur_t.get("histograms", {})
    for key in sorted(set(base_hists) & set(cur_hists)):
        base_p99 = float(base_hists[key].get("p99_ms", 0.0))
        cur_p99 = float(cur_hists[key].get("p99_ms", 0.0))
        delta = pct(base_p99, cur_p99)
        line = f"  {key}: p99 {base_p99:.3f} ms -> {cur_p99:.3f} ms ({delta:+.1f}%)"
        if base_p99 >= NOISE_FLOOR_MS and delta > threshold:
            print(f"REGRESSION{line}")
            failed = True
        else:
            print(f"ok {line}")

    # Timers: advisory mean comparison.
    base_timers = base_t.get("timers", {})
    cur_timers = cur_t.get("timers", {})
    for key in sorted(set(base_timers) & set(cur_timers)):
        b = base_timers[key]
        c = cur_timers[key]
        if not b.get("count") or not c.get("count"):
            continue
        base_mean = float(b["total_ms"]) / float(b["count"])
        cur_mean = float(c["total_ms"]) / float(c["count"])
        print(
            f"  (advisory) {key}: mean {base_mean:.3f} ms -> "
            f"{cur_mean:.3f} ms ({pct(base_mean, cur_mean):+.1f}%)"
        )

    # Wall time: optional coarse gate.
    base_wall = float(baseline.get("wall_ms", 0.0))
    cur_wall = float(current.get("wall_ms", 0.0))
    delta = pct(base_wall, cur_wall)
    line = f"  wall: {base_wall:.1f} ms -> {cur_wall:.1f} ms ({delta:+.1f}%)"
    if wall_threshold is not None and base_wall >= NOISE_FLOOR_MS and delta > wall_threshold:
        print(f"REGRESSION{line}")
        failed = True
    else:
        print(f"ok {line}")

    if failed:
        print("bench_diff: FAIL", file=sys.stderr)
        return 1
    print("bench_diff: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
