#!/usr/bin/env python3
"""Diff two BENCH_<name>.json sidecars and gate on perf regressions.

Usage: bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]
                     [--wall-threshold PCT] [--counters-must-match]
       bench_diff.py --self-check

Compares the telemetry snapshots two runs of the same bench wrote with
--json-out (bench/common.hpp, writeBenchJson):

  * counters        printed as a drift table; with --counters-must-match
                    any difference is a failure (for benches whose counter
                    artifact is bit-identical by contract)
  * histograms      per-name p99_ms compared; a current p99 more than
                    --threshold percent above baseline is a REGRESSION
  * timers          per-name mean ms (total_ms / count) compared under the
                    same threshold, reported but only advisory (timer means
                    on shared CI runners are noisy; the gate is p99)
  * wall_ms         artifact wall time compared under --wall-threshold
                    (default: off) for coarse end-to-end drift
  * curves          arrival-rate curves (top-level "curves" section, e.g.
                    A16 bench_session_sweep): points are matched by
                    offered_per_sec value; per-rate p99_ms is gated under
                    --threshold like histograms, per-rate goodput_per_sec
                    dropping more than --threshold percent is a REGRESSION,
                    rates present on only one side are advisory

Exit 0 = no gated regression, 1 = regression or counter mismatch,
2 = unusable input.  Sub-millisecond baselines are ignored by the p99 gate
(noise floor); the table still shows them.

Malformed sidecars — absent or zero baseline counters, missing histogram
percentiles, non-numeric timer fields, sections of the wrong shape — are
reported with a clear per-field message (and exit 2 where the file is
unusable), never a traceback: CI log readers should see what is wrong with
the data, not where the script crashed.

--self-check runs the built-in fixture suite (no files needed) and exits
0/1; CI runs it before trusting any gate this script emits.

Dependency-free (json + sys + tempfile only) so CI can run it on the bare
runner image.
"""

import json
import sys

NOISE_FLOOR_MS = 1.0


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{path}: not loadable JSON: {error}", file=sys.stderr)
        return None
    if not isinstance(doc, dict) or "telemetry" not in doc:
        print(f"{path}: missing 'telemetry' section", file=sys.stderr)
        return None
    if not isinstance(doc["telemetry"], dict):
        print(f"{path}: 'telemetry' is not an object", file=sys.stderr)
        return None
    return doc


def num(value):
    """Coerce to float; None when absent or non-numeric (bool excluded)."""
    if isinstance(value, bool) or value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def section(telemetry, name, origin, problems):
    """telemetry[name] as a dict of dict-or-scalar entries; {} + a recorded
    problem when the section has the wrong shape."""
    value = telemetry.get(name, {})
    if not isinstance(value, dict):
        problems.append(f"{origin}: '{name}' section is not an object")
        return {}
    return value


def pct(base, now):
    if base <= 0:
        return 0.0
    return 100.0 * (now - base) / base


def curve_points(doc, origin, problems):
    """The top-level "curves" section as {offered_rate: {metric: value}}.
    None when the section is absent or unusable (recorded as a problem);
    individual malformed entries are skipped with a problem each."""
    curves = doc.get("curves")
    if curves is None:
        return None
    if not isinstance(curves, dict):
        problems.append(f"{origin}: 'curves' section is not an object")
        return None
    offered = curves.get("offered_per_sec")
    if not isinstance(offered, list):
        problems.append(
            f"{origin}: curves.offered_per_sec missing or not an array"
        )
        return None
    points = {}
    for idx, rate in enumerate(offered):
        rate_v = num(rate)
        if rate_v is None:
            problems.append(
                f"{origin}: curves.offered_per_sec[{idx}] is non-numeric"
            )
            continue
        point = {}
        for key in ("goodput_per_sec", "p99_ms"):
            array = curves.get(key)
            value = None
            if not isinstance(array, list) or idx >= len(array):
                problems.append(
                    f"{origin}: curves.{key} has no value for offered rate "
                    f"{rate_v:g}"
                )
            else:
                value = num(array[idx])
                if value is None:
                    problems.append(
                        f"{origin}: curves.{key}[{idx}] is non-numeric"
                    )
            point[key] = value
        points[rate_v] = point
    return points


def diff_curves(baseline, current, base_path, cur_path, threshold, problems):
    """Prints the per-rate curve comparison; returns True on a gated
    regression."""
    base_points = curve_points(baseline, base_path, problems)
    cur_points = curve_points(current, cur_path, problems)
    if base_points is None and cur_points is None:
        return False
    print("curves (per offered rate):")
    if base_points is None:
        print("  no baseline curves: current curves not gated")
        return False
    if cur_points is None:
        problems.append(f"{cur_path}: curves section vanished; not gated")
        print("  curves vanished in current (see warnings)")
        return False

    failed = False
    for rate in sorted(set(base_points) | set(cur_points)):
        if rate not in base_points:
            print(f"  (new) rate {rate:g}/s: no baseline, not gated")
            continue
        if rate not in cur_points:
            print(f"  (gone) rate {rate:g}/s: present only in baseline")
            continue
        base_point = base_points[rate]
        cur_point = cur_points[rate]

        base_p99 = base_point.get("p99_ms")
        cur_p99 = cur_point.get("p99_ms")
        if base_p99 is not None and cur_p99 is not None:
            delta = pct(base_p99, cur_p99)
            line = (
                f"  rate {rate:g}/s: p99 {base_p99:.3f} ms -> "
                f"{cur_p99:.3f} ms ({delta:+.1f}%)"
            )
            if base_p99 >= NOISE_FLOOR_MS and delta > threshold:
                print(f"REGRESSION{line}")
                failed = True
            else:
                print(f"ok {line}")

        base_goodput = base_point.get("goodput_per_sec")
        cur_goodput = cur_point.get("goodput_per_sec")
        if base_goodput is not None and cur_goodput is not None:
            delta = pct(base_goodput, cur_goodput)
            line = (
                f"  rate {rate:g}/s: goodput {base_goodput:.1f}/s -> "
                f"{cur_goodput:.1f}/s ({delta:+.1f}%)"
            )
            if base_goodput > 0 and delta < -threshold:
                print(f"REGRESSION{line}")
                failed = True
            else:
                print(f"ok {line}")
    return failed


def diff(baseline, current, base_path, cur_path, threshold, wall_threshold,
         counters_must_match):
    """Prints the comparison; returns the exit code."""
    if baseline.get("bench") != current.get("bench"):
        print(
            f"refusing to diff different benches: "
            f"'{baseline.get('bench')}' vs '{current.get('bench')}'",
            file=sys.stderr,
        )
        return 2

    failed = False
    problems = []
    name = current.get("bench", "?")
    print(
        f"bench_diff: {name}  "
        f"{baseline.get('git_rev', '?')} -> {current.get('git_rev', '?')}  "
        f"(p99 gate: +{threshold:g}%)"
    )

    base_t = baseline["telemetry"]
    cur_t = current["telemetry"]

    # Counters: drift table, optionally gating.
    base_counters = section(base_t, "counters", base_path, problems)
    cur_counters = section(cur_t, "counters", cur_path, problems)
    drifted = sorted(
        k
        for k in set(base_counters) | set(cur_counters)
        if base_counters.get(k) != cur_counters.get(k)
    )
    if drifted:
        print("counter drift:")
        for key in drifted:
            base_v = base_counters.get(key)
            note = "" if key in base_counters else "  (absent in baseline)"
            print(
                f"  {key}: {0 if base_v is None else base_v} -> "
                f"{cur_counters.get(key, 0)}{note}"
            )
        if counters_must_match:
            print("FAIL: counters differ (--counters-must-match)")
            failed = True
    else:
        print("counters: identical")

    # Histograms: p99 gate.
    base_hists = section(base_t, "histograms", base_path, problems)
    cur_hists = section(cur_t, "histograms", cur_path, problems)
    for key in sorted(set(base_hists) | set(cur_hists)):
        if key not in base_hists:
            print(f"  (new) {key}: no baseline, not gated")
            continue
        if key not in cur_hists:
            print(f"  (gone) {key}: present only in baseline")
            continue
        base_entry = base_hists[key]
        cur_entry = cur_hists[key]
        if not isinstance(base_entry, dict) or not isinstance(cur_entry, dict):
            problems.append(f"histogram '{key}': entry is not an object")
            continue
        base_p99 = num(base_entry.get("p99_ms"))
        cur_p99 = num(cur_entry.get("p99_ms"))
        if base_p99 is None or cur_p99 is None:
            which = base_path if base_p99 is None else cur_path
            problems.append(
                f"histogram '{key}': p99_ms missing or non-numeric in "
                f"{which}; not gated"
            )
            continue
        delta = pct(base_p99, cur_p99)
        line = f"  {key}: p99 {base_p99:.3f} ms -> {cur_p99:.3f} ms ({delta:+.1f}%)"
        if base_p99 >= NOISE_FLOOR_MS and delta > threshold:
            print(f"REGRESSION{line}")
            failed = True
        else:
            print(f"ok {line}")

    # Timers: advisory mean comparison.
    base_timers = section(base_t, "timers", base_path, problems)
    cur_timers = section(cur_t, "timers", cur_path, problems)
    for key in sorted(set(base_timers) & set(cur_timers)):
        b = base_timers[key]
        c = cur_timers[key]
        if not isinstance(b, dict) or not isinstance(c, dict):
            problems.append(f"timer '{key}': entry is not an object")
            continue
        base_count = num(b.get("count"))
        cur_count = num(c.get("count"))
        base_total = num(b.get("total_ms"))
        cur_total = num(c.get("total_ms"))
        if None in (base_count, cur_count, base_total, cur_total):
            problems.append(
                f"timer '{key}': count/total_ms missing or non-numeric; "
                f"skipped"
            )
            continue
        if not base_count or not cur_count:
            continue
        base_mean = base_total / base_count
        cur_mean = cur_total / cur_count
        print(
            f"  (advisory) {key}: mean {base_mean:.3f} ms -> "
            f"{cur_mean:.3f} ms ({pct(base_mean, cur_mean):+.1f}%)"
        )

    # Arrival-rate curves: per-rate p99 and goodput gates.
    if diff_curves(baseline, current, base_path, cur_path, threshold,
                   problems):
        failed = True

    # Wall time: optional coarse gate.
    base_wall = num(baseline.get("wall_ms"))
    cur_wall = num(current.get("wall_ms"))
    if base_wall is None or cur_wall is None:
        which = base_path if base_wall is None else cur_path
        problems.append(f"wall_ms missing or non-numeric in {which}")
        if wall_threshold is not None:
            print("wall: not gated (see problems below)")
    else:
        delta = pct(base_wall, cur_wall)
        line = f"  wall: {base_wall:.1f} ms -> {cur_wall:.1f} ms ({delta:+.1f}%)"
        if (
            wall_threshold is not None
            and base_wall >= NOISE_FLOOR_MS
            and delta > wall_threshold
        ):
            print(f"REGRESSION{line}")
            failed = True
        else:
            print(f"ok {line}")

    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)

    if failed:
        print("bench_diff: FAIL", file=sys.stderr)
        return 1
    print("bench_diff: pass")
    return 0


def self_check():
    """Fixture suite: every malformed-input path must produce a clean exit
    code and message, never a traceback.  Returns 0 on success."""
    import contextlib
    import io
    import os
    import tempfile

    def sidecar(telemetry, wall_ms=10.0, bench="fixture", **extra):
        doc = {"bench": bench, "git_rev": "t", "telemetry": telemetry}
        if wall_ms is not None:
            doc["wall_ms"] = wall_ms
        doc.update(extra)
        return doc

    failures = []

    def run(label, base_doc, cur_doc, want_exit, flags=()):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            cur_path = os.path.join(tmp, "cur.json")
            for path, doc in ((base_path, base_doc), (cur_path, cur_doc)):
                with open(path, "w", encoding="utf-8") as handle:
                    if isinstance(doc, str):
                        handle.write(doc)
                    else:
                        json.dump(doc, handle)
            out, err = io.StringIO(), io.StringIO()
            try:
                with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
                    got = main(["bench_diff.py", base_path, cur_path, *flags])
            except BaseException as error:  # a traceback IS the failure
                failures.append(f"{label}: raised {type(error).__name__}: {error}")
                return
            if got != want_exit:
                failures.append(
                    f"{label}: exit {got}, wanted {want_exit}\n"
                    f"--- stdout ---\n{out.getvalue()}"
                    f"--- stderr ---\n{err.getvalue()}"
                )

    clean = {
        "counters": {"service.plan_cache_hits": 5},
        "histograms": {"rpc": {"p99_ms": 2.0}},
        "timers": {"work": {"count": 2, "total_ms": 4.0}},
    }
    run("identical sidecars pass", sidecar(clean), sidecar(clean), 0)
    run(
        "p99 regression fails",
        sidecar({"histograms": {"rpc": {"p99_ms": 2.0}}}),
        sidecar({"histograms": {"rpc": {"p99_ms": 9.0}}}),
        1,
    )
    run(
        "sub-noise-floor baseline is not gated",
        sidecar({"histograms": {"rpc": {"p99_ms": 0.01}}}),
        sidecar({"histograms": {"rpc": {"p99_ms": 0.9}}}),
        0,
    )
    run(
        "missing baseline percentile warns, does not crash or gate",
        sidecar({"histograms": {"rpc": {"count": 3}}}),
        sidecar({"histograms": {"rpc": {"p99_ms": 99.0}}}),
        0,
    )
    run(
        "non-numeric percentile warns, does not crash",
        sidecar({"histograms": {"rpc": {"p99_ms": "fast"}}}),
        sidecar({"histograms": {"rpc": {"p99_ms": 2.0}}}),
        0,
    )
    run(
        "new-in-current histogram is advisory only",
        sidecar({"histograms": {}}),
        sidecar({"histograms": {"fresh": {"p99_ms": 50.0}}}),
        0,
    )
    run(
        "zero and absent baseline counters diff cleanly",
        sidecar({"counters": {"hits": 0}}),
        sidecar({"counters": {"hits": 7, "born_today": 3}}),
        0,
    )
    run(
        "counter drift fails under --counters-must-match",
        sidecar({"counters": {"hits": 1}}),
        sidecar({"counters": {"hits": 2}}),
        1,
        flags=("--counters-must-match",),
    )
    run(
        "malformed timer entries are skipped with a warning",
        sidecar({"timers": {"work": {"count": 2}}}),
        sidecar({"timers": {"work": {"count": 2, "total_ms": 4.0}}}),
        0,
    )
    run(
        "zero-count timers are skipped",
        sidecar({"timers": {"work": {"count": 0, "total_ms": 0.0}}}),
        sidecar({"timers": {"work": {"count": 0, "total_ms": 0.0}}}),
        0,
    )
    run(
        "missing wall_ms warns instead of crashing the wall gate",
        sidecar({}, wall_ms=None),
        sidecar({}),
        0,
        flags=("--wall-threshold", "10"),
    )
    run(
        "wall regression fails when gated",
        sidecar({}, wall_ms=10.0),
        sidecar({}, wall_ms=100.0),
        1,
        flags=("--wall-threshold", "10"),
    )
    run(
        "telemetry section of the wrong shape is unusable",
        sidecar("not an object"),
        sidecar(clean),
        2,
    )
    run(
        "mismatched bench names are unusable",
        sidecar(clean, bench="a"),
        sidecar(clean, bench="b"),
        2,
    )
    run("unparsable JSON is unusable", "{nope", sidecar(clean), 2)
    run(
        "malformed sections warn but the rest still diffs",
        sidecar({"counters": "oops", "histograms": {"rpc": {"p99_ms": 2.0}}}),
        sidecar({"counters": {"h": 1}, "histograms": {"rpc": {"p99_ms": 2.0}}}),
        0,
    )

    def curves(offered, goodput, p99):
        return {
            "offered_per_sec": offered,
            "goodput_per_sec": goodput,
            "p99_ms": p99,
        }

    flat = curves([100, 400], [100.0, 230.0], [2.0, 110.0])
    run(
        "matching curves pass",
        sidecar({}, curves=flat),
        sidecar({}, curves=flat),
        0,
    )
    run(
        "per-rate p99 regression fails",
        sidecar({}, curves=curves([100, 400], [100.0, 230.0], [2.0, 110.0])),
        sidecar({}, curves=curves([100, 400], [100.0, 230.0], [2.0, 400.0])),
        1,
    )
    run(
        "per-rate goodput drop fails",
        sidecar({}, curves=curves([100, 400], [100.0, 230.0], [2.0, 110.0])),
        sidecar({}, curves=curves([100, 400], [100.0, 110.0], [2.0, 110.0])),
        1,
    )
    run(
        "sub-noise-floor curve p99 is not gated",
        sidecar({}, curves=curves([100], [100.0], [0.05])),
        sidecar({}, curves=curves([100], [100.0], [0.5])),
        0,
    )
    run(
        "missing and new rates are advisory",
        sidecar({}, curves=curves([50, 100], [50.0, 100.0], [1.0, 2.0])),
        sidecar({}, curves=curves([100, 200], [100.0, 195.0], [2.0, 3.0])),
        0,
    )
    run(
        "curves only in current are not gated",
        sidecar({}),
        sidecar({}, curves=flat),
        0,
    )
    run(
        "curves vanished in current warns, does not gate",
        sidecar({}, curves=flat),
        sidecar({}),
        0,
    )
    run(
        "curve arrays of unequal length warn, do not crash",
        sidecar({}, curves=curves([100, 400], [100.0], [2.0, 110.0])),
        sidecar({}, curves=flat),
        0,
    )
    run(
        "non-object curves section warns, does not crash",
        sidecar({}, curves="oops"),
        sidecar({}, curves=flat),
        0,
    )
    run(
        "non-numeric curve values warn, do not crash",
        sidecar({}, curves=curves([100, "fast"], [100.0, 230.0], ["x", 2.0])),
        sidecar({}, curves=flat),
        0,
    )

    if failures:
        for failure in failures:
            print(f"self-check FAILED: {failure}", file=sys.stderr)
        return 1
    print("bench_diff: self-check passed")
    return 0


def main(argv):
    threshold = 25.0
    wall_threshold = None
    counters_must_match = False
    rest = argv[1:]
    args = []
    k = 0
    while k < len(rest):
        arg = rest[k]
        try:
            if arg == "--self-check":
                return self_check()
            elif arg == "--threshold":
                k += 1
                threshold = float(rest[k])
            elif arg.startswith("--threshold="):
                threshold = float(arg.split("=", 1)[1])
            elif arg == "--wall-threshold":
                k += 1
                wall_threshold = float(rest[k])
            elif arg.startswith("--wall-threshold="):
                wall_threshold = float(arg.split("=", 1)[1])
            elif arg == "--counters-must-match":
                counters_must_match = True
            else:
                args.append(arg)
        except (IndexError, ValueError):
            print(f"malformed flag: {arg}", file=sys.stderr)
            return 2
        k += 1
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline = load(args[0])
    current = load(args[1])
    if baseline is None or current is None:
        return 2
    return diff(
        baseline,
        current,
        args[0],
        args[1],
        threshold,
        wall_threshold,
        counters_must_match,
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv))
