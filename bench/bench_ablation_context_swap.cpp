// A4 — Ablation: gradual reconfiguration vs context swap vs full bitstream
// reload.  Quantifies the paper's motivating comparison ("contrary to
// context-swapping, a FSM implementation may be reconfigured stepwise") and
// locates the crossover where a full swap becomes cheaper.
#include "common.hpp"

#include "core/apply.hpp"
#include "core/planners.hpp"
#include "rtl/context_swap.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("A4", "Ablation - downtime: gradual vs context swap vs bitstream");

  // Sweep the fraction of the table that changes on a 32-state controller.
  Table table({"|S|", "changed cells", "of cells", "|Z| (EA)",
               "context swap", "full bitstream", "gradual wins"});
  const rtl::ContextSwapModel swap;
  const rtl::BitstreamReloadModel bitstream;
  for (const int deltas : {2, 4, 8, 16, 32, 48, 64}) {
    const MigrationContext context = randomInstance(32, 2, deltas, 600 + deltas);
    EvolutionConfig config;
    Rng rng(3);
    const ReconfigurationProgram z =
        planEvolutionary(context, config, rng).program;
    const auto comparison = compareDowntime(context, z, swap, bitstream);
    table.addRow({"32", std::to_string(deltas), std::to_string(32 * 2),
                  std::to_string(comparison.gradualCycles),
                  std::to_string(comparison.contextSwapCycles),
                  std::to_string(comparison.bitstreamCycles),
                  comparison.gradualCycles < comparison.contextSwapCycles
                      ? "yes"
                      : "no"});
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\nGradual reconfiguration wins while the change is sparse\n"
               "(the common case for protocol tweaks); a full context swap\n"
               "only pays off once a large fraction of the table changes.\n"
               "Full-bitstream reload is orders of magnitude slower always\n"
               "(XCV300 SelectMAP model), and unlike both RAM approaches it\n"
               "also erases the rest of the device.\n";
}

void compareModels(benchmark::State& state) {
  const MigrationContext context = randomInstance(32, 2, 8, 601);
  const ReconfigurationProgram z = planGreedy(context);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        rtl::compareDowntime(context, z).gradualVsSwap());
}
BENCHMARK(compareModels);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
