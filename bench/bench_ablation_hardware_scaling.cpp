// A3 — Ablation: hardware scaling.  FPGA resource estimates and RTL
// simulation throughput as the controller grows, reproducing the paper's
// sizing argument (the Fig. 5 design scales with RAM, not with rewiring).
#include "common.hpp"

#include <algorithm>

#include "core/jsr.hpp"
#include "core/sequence.hpp"
#include "rtl/datapath.hpp"
#include "rtl/resources.hpp"
#include "rtl/vhdl.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("A3", "Ablation - FPGA resources and RTL throughput vs |S|, |I|");

  Table table({"|S|", "|I|", "F-RAM bits", "G-RAM bits", "BlockRAMs",
               "LUTs", "FFs", "fits XCV300", "VHDL lines"});
  for (const auto& [states, inputs] :
       {std::pair{4, 2}, {16, 2}, {64, 2}, {64, 8}, {256, 4}, {1024, 8}}) {
    const MigrationContext context = randomInstance(
        states, inputs, std::min(8, states / 2), 900 + states + inputs);
    const auto sequence = sequenceFromProgram(planJsr(context));
    const auto e = rtl::estimateResources(context, sequence);
    // VHDL volume scales with RAM depth; count generated lines.
    const std::string vhdl = rtl::generateVhdl(context, sequence);
    const auto lines =
        static_cast<long>(std::count(vhdl.begin(), vhdl.end(), '\n'));
    table.addRow({std::to_string(states), std::to_string(inputs),
                  std::to_string(e.framBits), std::to_string(e.gramBits),
                  std::to_string(e.blockRams), std::to_string(e.luts),
                  std::to_string(e.flipFlops), e.fitsXcv300 ? "yes" : "no",
                  std::to_string(lines)});
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\nThe reconfiguration machinery (Reconfigurator ROM + "
               "counter) stays small;\ncapacity is dominated by F-RAM/G-RAM "
               "depth 2^(|s|+|i|) — the paper's\nreason for placing them in "
               "embedded memory blocks.\n";
}

void rtlThroughputByStates(benchmark::State& state) {
  const MigrationContext context = randomInstance(
      static_cast<int>(state.range(0)), 2, 4, 31);
  rtl::ReconfigurableFsmDatapath hw(context);
  Rng rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(hw.clock(static_cast<SymbolId>(rng.below(2))));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(rtlThroughputByStates)->RangeMultiplier(4)->Range(4, 1024);

void vhdlGeneration(benchmark::State& state) {
  const MigrationContext context = randomInstance(
      static_cast<int>(state.range(0)), 2, 4, 37);
  const auto sequence = sequenceFromProgram(planJsr(context));
  for (auto _ : state)
    benchmark::DoNotOptimize(rtl::generateVhdl(context, sequence).size());
}
BENCHMARK(vhdlGeneration)->Arg(16)->Arg(128)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
