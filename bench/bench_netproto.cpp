// A10 — Netproto application: in-band upgrade downtime by planner, and
// packet-dependent multi-protocol switching accounting.
#include "common.hpp"

#include "apps/netproto/multiport.hpp"
#include "apps/netproto/protocol.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

using netproto::MultiProtocolPort;
using netproto::ProtocolProcessor;
using netproto::SwitchoverReport;
using netproto::UpgradePlanner;

void printArtifact() {
  banner("A10", "Netproto - upgrade downtime and multi-protocol switching");

  Table upgrades({"upgrade", "planner", "|Td|", "downtime bits",
                  "frames pre/post", "valid"});
  const std::pair<const char*, const char*> pairs[] = {
      {"101", "1101"}, {"10110", "110101"}, {"1011010", "1100110"}};
  for (const auto& [v1, v2] : pairs) {
    for (const auto& [planner, name] :
         {std::pair{UpgradePlanner::kJsr, "JSR"},
          std::pair{UpgradePlanner::kGreedy, "greedy"},
          std::pair{UpgradePlanner::kEvolutionary, "EA"}}) {
      Rng rng(2026);
      ProtocolProcessor processor(v1, v2, planner, 5);
      const SwitchoverReport report =
          processor.runSwitchover(10, 10, 8, rng);
      upgrades.addRow({std::string(v1) + " -> " + v2, name,
                       std::to_string(report.deltaCount),
                       std::to_string(report.droppedDuringUpgrade),
                       std::to_string(report.preUpgradeMatches) + "/" +
                           std::to_string(report.postUpgradeMatches),
                       report.programValidated ? "yes" : "NO"});
    }
  }
  std::cout << "\nin-band upgrades:\n" << upgrades.toMarkdown();

  // Packet-dependent processing: a port handling a mixed-version trace.
  MultiProtocolPort port({"101", "1101", "10011"},
                         UpgradePlanner::kEvolutionary, 7);
  Rng rng(11);
  int packets = 0, matches = 0;
  const int versions[] = {0, 0, 1, 1, 1, 2, 0, 2, 2, 1, 0, 0};
  for (const int version : versions) {
    const std::string payload = netproto::renderStream(
        port.currentVersion() == version ? "101" : "101", 1, 10, rng);
    const auto report = port.processPacket(version, payload);
    ++packets;
    matches += report.frameMatches;
  }
  Table trace({"packets", "switches", "switch cycles", "frame matches"});
  trace.addRow({std::to_string(packets), std::to_string(port.switchCount()),
                std::to_string(port.totalSwitchCycles()),
                std::to_string(matches)});
  std::cout << "\nmulti-protocol port over a mixed-version trace:\n"
            << trace.toMarkdown();
  std::cout << "\nEvery version switch costs only the migration program's\n"
               "cycles; the parser never goes through a full context swap.\n";
}

void switchoverBench(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(3);
    netproto::ProtocolProcessor processor("101", "1101",
                                          UpgradePlanner::kGreedy);
    benchmark::DoNotOptimize(processor.runSwitchover(3, 3, 6, rng));
  }
  state.SetLabel("plan+switch+parse");
}
BENCHMARK(switchoverBench)->Unit(benchmark::kMillisecond);

void packetSwitching(benchmark::State& state) {
  MultiProtocolPort port({"101", "1101"}, UpgradePlanner::kGreedy, 3);
  Rng rng(5);
  int version = 0;
  for (auto _ : state) {
    version ^= 1;
    benchmark::DoNotOptimize(
        port.processPacket(version, "10110110"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(packetSwitching);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
