// Shared helpers for the benchmark harness.
//
// Every bench binary first prints its reproduction artifact (the paper
// table/figure it regenerates, as markdown) and then runs google-benchmark
// timings.  Keeping the artifact on stdout makes
// `for b in build/bench/*; do $b; done | tee bench_output.txt` a complete
// reproduction log.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "core/migration.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/rng.hpp"

namespace rfsm::bench {

/// Prints the experiment banner (id and title from DESIGN.md).
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n================================================================\n"
            << id << ": " << title << "\n"
            << "================================================================\n";
}

/// Deterministic random migration instance used across benches: |S| states,
/// |I| inputs, exactly `deltas` delta transitions.
inline MigrationContext randomInstance(int states, int inputs, int deltas,
                                       std::uint64_t seed,
                                       int newStates = 0) {
  Rng rng(seed);
  RandomMachineSpec spec;
  spec.stateCount = states;
  spec.inputCount = inputs;
  spec.outputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = deltas;
  mutation.newStateCount = newStates;
  const Machine target = mutateMachine(source, mutation, rng);
  return MigrationContext(source, target);
}

/// Standard bench main: print the artifact, then run timings.
#define RFSM_BENCH_MAIN(printArtifact)                       \
  int main(int argc, char** argv) {                          \
    printArtifact();                                         \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

}  // namespace rfsm::bench
