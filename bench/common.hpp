// Shared helpers for the benchmark harness.
//
// Every bench binary first prints its reproduction artifact (the paper
// table/figure it regenerates, as markdown) and then runs google-benchmark
// timings.  Keeping the artifact on stdout makes
// `for b in build/bench/*; do $b; done | tee bench_output.txt` a complete
// reproduction log.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/migration.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rfsm::bench {

/// Prints the experiment banner (id and title from DESIGN.md).
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n================================================================\n"
            << id << ": " << title << "\n"
            << "================================================================\n";
}

/// Deterministic random migration instance used across benches: |S| states,
/// |I| inputs, exactly `deltas` delta transitions.
inline MigrationContext randomInstance(int states, int inputs, int deltas,
                                       std::uint64_t seed,
                                       int newStates = 0) {
  Rng rng(seed);
  RandomMachineSpec spec;
  spec.stateCount = states;
  spec.inputCount = inputs;
  spec.outputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = deltas;
  mutation.newStateCount = newStates;
  const Machine target = mutateMachine(source, mutation, rng);
  return MigrationContext(source, target);
}

/// Parallelism of the batch-planning artifacts: one job per hardware
/// thread, overridable with RFSM_JOBS (RFSM_JOBS=1 reproduces the serial
/// run; planner output is bit-identical either way).
inline int artifactJobs() {
  if (const char* env = std::getenv("RFSM_JOBS")) {
    const int jobs = std::atoi(env);
    if (jobs > 0) return jobs;
  }
  return ThreadPool::hardwareJobs();
}

/// Renders a snapshot in the sink selected by RFSM_METRICS: "md" (default)
/// for human-readable artifacts, "csv"/"json" for machine-diffable sweeps.
inline std::string renderTelemetry(const metrics::Snapshot& snap) {
  const char* env = std::getenv("RFSM_METRICS");
  const std::string format = env != nullptr ? env : "md";
  if (format == "csv") return metrics::toCsv(snap);
  if (format == "json") return metrics::toJson(snap);
  return metrics::toMarkdown(snap);
}

/// Prints the telemetry gathered since the last reset and clears it, so a
/// bench's timing loops start from a clean slate.  `countersOnly` drops the
/// wall-clock timers — the one nondeterministic part of a snapshot — for
/// artifacts that must be bit-identical across runs and job counts.
inline void printTelemetry(int jobs, bool countersOnly = false) {
  metrics::Snapshot snap = metrics::snapshot();
  if (countersOnly) snap.timers.clear();
  if (!snap.empty())
    std::cout << "\nplanner telemetry (jobs = " << jobs << "):\n"
              << renderTelemetry(snap);
  metrics::resetAll();
}

/// Standard bench main: print the artifact, then run timings.
#define RFSM_BENCH_MAIN(printArtifact)                       \
  int main(int argc, char** argv) {                          \
    printArtifact();                                         \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                              \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    return 0;                                                \
  }

}  // namespace rfsm::bench
