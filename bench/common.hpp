// Shared helpers for the benchmark harness.
//
// Every bench binary first prints its reproduction artifact (the paper
// table/figure it regenerates, as markdown) and then runs google-benchmark
// timings.  Keeping the artifact on stdout makes
// `for b in build/bench/*; do $b; done | tee bench_output.txt` a complete
// reproduction log.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/migration.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rfsm::bench {

/// Prints the experiment banner (id and title from DESIGN.md).
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n================================================================\n"
            << id << ": " << title << "\n"
            << "================================================================\n";
}

/// Deterministic random migration instance used across benches: |S| states,
/// |I| inputs, exactly `deltas` delta transitions.
inline MigrationContext randomInstance(int states, int inputs, int deltas,
                                       std::uint64_t seed,
                                       int newStates = 0) {
  Rng rng(seed);
  RandomMachineSpec spec;
  spec.stateCount = states;
  spec.inputCount = inputs;
  spec.outputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = deltas;
  mutation.newStateCount = newStates;
  const Machine target = mutateMachine(source, mutation, rng);
  return MigrationContext(source, target);
}

/// Parallelism of the batch-planning artifacts: one job per hardware
/// thread, overridable with RFSM_JOBS (RFSM_JOBS=1 reproduces the serial
/// run; planner output is bit-identical either way).
inline int artifactJobs() {
  if (const char* env = std::getenv("RFSM_JOBS")) {
    const int jobs = std::atoi(env);
    if (jobs > 0) return jobs;
  }
  return ThreadPool::hardwareJobs();
}

/// Renders a snapshot in the sink selected by RFSM_METRICS: "md" (default)
/// for human-readable artifacts, "csv"/"json" for machine-diffable sweeps.
inline std::string renderTelemetry(const metrics::Snapshot& snap) {
  const char* env = std::getenv("RFSM_METRICS");
  const std::string format = env != nullptr ? env : "md";
  if (format == "csv") return metrics::toCsv(snap);
  if (format == "json") return metrics::toJson(snap);
  return metrics::toMarkdown(snap);
}

/// The last full snapshot captured by printTelemetry (timers and histograms
/// included even when the printed artifact dropped them), stashed for
/// writeBenchJson — printTelemetry resets the registry, so the JSON sink
/// cannot re-snapshot.
inline metrics::Snapshot& lastSnapshot() {
  static metrics::Snapshot snap;
  return snap;
}

/// Prints the telemetry gathered since the last reset and clears it, so a
/// bench's timing loops start from a clean slate.  `countersOnly` drops the
/// wall-clock timers and latency histograms — the nondeterministic parts of
/// a snapshot — for artifacts that must be bit-identical across runs and
/// job counts.
inline void printTelemetry(int jobs, bool countersOnly = false) {
  metrics::Snapshot snap = metrics::snapshot();
  // BFS-pool reuse counts depend on which thread's machine got which
  // recycled buffer — scheduling, not planner work — so they are stripped
  // before the sidecar stash too: CI diffs sidecars of repeated runs with
  // --counters-must-match.
  std::erase_if(snap.counters, [](const metrics::CounterSample& c) {
    return c.name == metrics::kBfsPoolReuses;
  });
  lastSnapshot() = snap;
  if (countersOnly) {
    snap.timers.clear();
    snap.histograms.clear();
    // Gauges and rolling windows are point-in-time levels (queue depths,
    // sliding-window percentiles) — as nondeterministic as the timers.
    snap.gauges.clear();
    snap.rolling.clear();
  }
  // Tracer self-metrics depend on whether RFSM_TRACE is set, not on the
  // planner's work: printing them would break the bit-identical-artifact
  // contract (tracing observes, never steers).  They stay in
  // lastSnapshot() for the JSON sidecar.
  std::erase_if(snap.counters, [](const metrics::CounterSample& c) {
    return c.name == metrics::kTraceDropped;
  });
  if (!snap.empty())
    std::cout << "\nplanner telemetry (jobs = " << jobs << "):\n"
              << renderTelemetry(snap);
  metrics::resetAll();
}

/// The git revision the binary was built from (configure-time `git
/// describe`, compiled in as RFSM_GIT_REV), overridable at run time with
/// the RFSM_GIT_REV environment variable (CI stamps the exact commit).
inline std::string gitRevision() {
  if (const char* env = std::getenv("RFSM_GIT_REV")) return env;
#ifdef RFSM_GIT_REV
  return RFSM_GIT_REV;
#else
  return "unknown";
#endif
}

/// Bench name from argv[0]: basename with the "bench_" prefix stripped, so
/// build/bench/bench_fault_sweep defaults to BENCH_fault_sweep.json.
inline std::string benchName(const char* argv0) {
  std::string name(argv0);
  const std::size_t slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name;
}

/// Strips `--json-out [FILE]` (or `--json-out=FILE`) from argv before
/// google-benchmark parses it.  Returns the output path — the explicit FILE
/// or the default BENCH_<name>.json — or "" when the flag is absent.
inline std::string stripJsonOutFlag(int& argc, char** argv) {
  std::string path;
  int kept = 1;
  for (int k = 1; k < argc; ++k) {
    const std::string arg(argv[k]);
    if (arg == "--json-out") {
      path = "BENCH_" + benchName(argv[0]) + ".json";
      if (k + 1 < argc && argv[k + 1][0] != '-') path = argv[++k];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      path = arg.substr(11);
    } else {
      argv[kept++] = argv[k];
    }
  }
  argc = kept;
  return path;
}

/// Extra top-level JSON section a bench can splice into its sidecar — a
/// complete `"key": value` fragment, no trailing comma.  A16 publishes its
/// arrival-rate curves ("curves": {...}) this way so tools/bench_diff.py
/// can gate on goodput/latency trajectories, not just telemetry counters.
/// Cleared between writeBenchJson calls is unnecessary: one sidecar per
/// process.
inline std::string& sidecarExtra() {
  static std::string extra;
  return extra;
}

/// Writes the standardized BENCH_<name>.json sidecar: bench identity, git
/// revision, configuration, artifact wall time, any sidecarExtra section,
/// and the full telemetry snapshot (counters, timers, latency histograms)
/// of the artifact phase.  One file per bench per commit yields a
/// cross-commit perf trajectory.
inline bool writeBenchJson(const std::string& path, const char* argv0,
                           double wallMs) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"" << benchName(argv0) << "\",\n";
  os << "  \"git_rev\": \"" << gitRevision() << "\",\n";
  os << "  \"config\": {\"jobs\": " << artifactJobs() << "},\n";
  os << "  \"wall_ms\": " << wallMs << ",\n";
  if (!sidecarExtra().empty()) os << "  " << sidecarExtra() << ",\n";
  std::istringstream telemetry(metrics::toJson(lastSnapshot()));
  os << "  \"telemetry\": ";
  std::string line;
  bool first = true;
  while (std::getline(telemetry, line)) {
    if (!first) os << "\n  ";
    os << line;
    first = false;
  }
  os << "\n}\n";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write bench JSON to '" << path << "'\n";
    return false;
  }
  out << os.str();
  return true;
}

/// Standard bench main: print the artifact, optionally write the
/// BENCH_<name>.json sidecar (--json-out), then run timings.
#define RFSM_BENCH_MAIN(printArtifact)                                  \
  int main(int argc, char** argv) {                                     \
    const std::string jsonOut =                                         \
        ::rfsm::bench::stripJsonOutFlag(argc, argv);                    \
    const auto artifactStart = std::chrono::steady_clock::now();        \
    printArtifact();                                                    \
    const double artifactMs =                                           \
        std::chrono::duration<double, std::milli>(                      \
            std::chrono::steady_clock::now() - artifactStart)           \
            .count();                                                   \
    if (!jsonOut.empty() &&                                             \
        !::rfsm::bench::writeBenchJson(jsonOut, argv[0], artifactMs))   \
      return 1;                                                         \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))           \
      return 1;                                                         \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }

}  // namespace rfsm::bench
