// E3 — Fig. 5: the hardware implementation.  Replays the Table 1 sequence
// cycle-accurately on the RTL datapath, verifies RAM contents against the
// abstract model, prints the XCV300 resource estimate, and times the
// datapath clock.
#include "common.hpp"

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "core/sequence.hpp"
#include "gen/families.hpp"
#include "rtl/datapath.hpp"
#include "rtl/resources.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("E3", "Fig. 5 - FPGA implementation (RTL model + resources)");
  const MigrationContext context(onesDetector(), zerosDetector());
  const SymbolId in0 = context.inputs().at("0");
  const SymbolId in1 = context.inputs().at("1");
  ReconfigurationProgram z;
  z.steps.push_back(ReconfigStep::rewrite(in1, context.states().at("S1"),
                                          context.outputs().at("0")));
  z.steps.push_back(ReconfigStep::rewrite(in1, context.states().at("S1"),
                                          context.outputs().at("0")));
  z.steps.push_back(ReconfigStep::rewrite(in0, context.states().at("S0"),
                                          context.outputs().at("0")));
  z.steps.push_back(ReconfigStep::rewrite(in0, context.states().at("S0"),
                                          context.outputs().at("1")));
  const ReconfigurationSequence sequence = sequenceFromProgram(z);

  rtl::ReconfigurableFsmDatapath hw(context);
  hw.loadSequence(sequence);
  hw.startReconfiguration();
  hw.clock(in0);

  Table trace({"cycle", "mode", "state", "F-RAM[1,S0]", "F-RAM[1,S1]",
               "G-RAM[1,S1]", "G-RAM[0,S0]"});
  const SymbolId s0 = context.states().at("S0");
  const SymbolId s1 = context.states().at("S1");
  int cycle = 0;
  auto snapshot = [&](const std::string& mode) {
    trace.addRow({std::to_string(cycle), mode,
                  context.states().name(hw.currentState()),
                  context.states().name(hw.framEntry(in1, s0)),
                  context.states().name(hw.framEntry(in1, s1)),
                  context.outputs().name(hw.gramEntry(in1, s1)),
                  context.outputs().name(hw.gramEntry(in0, s0))});
  };
  snapshot("normal");
  while (hw.reconfiguring()) {
    hw.clock(in0);
    ++cycle;
    snapshot("reconfig");
  }
  std::cout << "\ncycle-accurate RAM evolution during Table 1 replay:\n"
            << trace.toMarkdown();

  const MutableMachine model = replayProgram(context, z);
  bool agree = true;
  for (SymbolId s = 0; s < context.states().size(); ++s)
    for (SymbolId i = 0; i < context.inputs().size(); ++i)
      if (model.isSpecified(i, s))
        agree = agree && hw.framEntry(i, s) == model.next(i, s) &&
                hw.gramEntry(i, s) == model.output(i, s);
  std::cout << "\nRTL RAM contents match abstract model: "
            << (agree ? "yes" : "NO") << "\n";

  std::cout << "\nresource estimate (paper target: Virtex XCV300):\n"
            << rtl::describeEstimate(rtl::estimateResources(context, sequence));

  // A bigger, generator-sized instance for scale.
  const MigrationContext big = randomInstance(64, 4, 20, 5);
  const auto bigSeq = sequenceFromProgram(planJsr(big));
  std::cout << "\nresource estimate for a 64-state, 4-input controller:\n"
            << rtl::describeEstimate(rtl::estimateResources(big, bigSeq));
}

void rtlClock(benchmark::State& state) {
  const MigrationContext context = randomInstance(
      static_cast<int>(state.range(0)), 2, 4, 11);
  rtl::ReconfigurableFsmDatapath hw(context);
  Rng rng(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(hw.clock(static_cast<SymbolId>(rng.below(2))));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(rtlClock)->Arg(8)->Arg(32)->Arg(128);

void rtlFullReconfiguration(benchmark::State& state) {
  const MigrationContext context = randomInstance(16, 2, 8, 3);
  const auto sequence = sequenceFromProgram(planJsr(context));
  for (auto _ : state) {
    rtl::ReconfigurableFsmDatapath hw(context);
    hw.loadSequence(sequence);
    hw.startReconfiguration();
    hw.clock(0);
    while (hw.reconfiguring()) hw.clock(0);
    benchmark::DoNotOptimize(hw.currentState());
  }
}
BENCHMARK(rtlFullReconfiguration);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
