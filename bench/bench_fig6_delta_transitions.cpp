// E4 — Fig. 6 + Example 4.1: delta transitions of the migration M -> M'.
// Prints the computed T_d next to the paper's expected set and times delta
// computation across machine sizes.
#include "common.hpp"

#include <set>

#include "gen/families.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("E4", "Fig. 6 + Example 4.1 - delta transitions");
  const MigrationContext context(example41Source(), example41Target());

  const std::set<std::string> paper{"(0, S1, S0, 0)", "(1, S2, S3, 0)",
                                    "(1, S3, S3, 1)", "(0, S3, S0, 0)"};
  Table table({"delta transition (measured)", "in paper set"});
  std::set<std::string> got;
  for (const Transition& t : context.deltaTransitions()) {
    const std::string text = "(" + context.inputs().name(t.input) + ", " +
                             context.states().name(t.from) + ", " +
                             context.states().name(t.to) + ", " +
                             context.outputs().name(t.output) + ")";
    got.insert(text);
    table.addRow({text, paper.count(text) ? "yes" : "NO"});
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\n|Td| = " << context.deltaCount() << " (paper: 4), sets "
            << (got == paper ? "MATCH" : "DIFFER") << "\n";
}

void computeDeltas(benchmark::State& state) {
  const int states = static_cast<int>(state.range(0));
  Rng rng(17);
  RandomMachineSpec spec;
  spec.stateCount = states;
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = states / 2;
  const Machine target = mutateMachine(source, mutation, rng);
  for (auto _ : state) {
    MigrationContext context(source, target);
    benchmark::DoNotOptimize(context.deltaCount());
  }
  state.SetComplexityN(states);
}
BENCHMARK(computeDeltas)->RangeMultiplier(4)->Range(8, 512)->Complexity();

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
