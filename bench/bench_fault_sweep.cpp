// A12 — Fault sweep: seeded SEU/power-loss injection over a grid of
// migration instances, proving the recovery contract: every disturbed
// migration ends verified-equivalent to M' or cleanly rolled back to M —
// zero silent corruption.  The artifact is bit-identical for any RFSM_JOBS
// value (per-run seeds come from substream-style indexing, backoff is
// counted in simulated cycles, and the telemetry prints counters only).
//
// `--smoke` shrinks the grid for the CI regression gate; the binary exits 1
// when any run ends in the kFailed (silent-corruption risk) outcome.
#include "common.hpp"

#include <vector>

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "core/recovery.hpp"
#include "util/fault.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

struct InstanceSpec {
  const char* name;
  int states, inputs, deltas, newStates;
  std::uint64_t seed;
};

struct ModelSpec {
  const char* name;
  fault::FaultModel model;
};

const InstanceSpec kInstances[] = {
    {"S6 I2 |Td|4", 6, 2, 4, 0, 101},
    {"S8 I3 |Td|10 +2 states", 8, 3, 10, 2, 202},
    {"S12 I3 |Td|14 +3 states", 12, 3, 14, 3, 303},
};

const ModelSpec kModels[] = {
    {"none", {0.0, 0.0, 0, 0.0}},
    {"power loss", {1.0, 0.0, 0, 0.0}},
    {"SEU flips", {0.0, 1.0, 2, 0.0}},
    {"loss + flips", {1.0, 1.0, 2, 0.0}},
    {"stuck-at", {0.0, 1.0, 1, 1.0}},
};

/// Aggregated outcomes of one (instance, model) grid cell across seeds.
struct CellTally {
  int runs = 0, verified = 0, rolledBack = 0, failed = 0;
  int detected = 0, resumed = 0, patched = 0;
  long cycles = 0, backoff = 0;
};

/// Cells a stuck-at fault may target: outside the source domain (the
/// freshly allocated RAM rows of the expansion region), so a rollback to
/// the source image always escapes the damage.
std::vector<std::size_t> expansionCells(const MigrationContext& context) {
  std::vector<std::size_t> cells;
  for (SymbolId s = 0; s < context.states().size(); ++s)
    for (SymbolId i = 0; i < context.inputs().size(); ++i)
      if (!context.inSourceStates(s) || !context.inSourceInputs(i))
        cells.push_back(static_cast<std::size_t>(s) *
                            static_cast<std::size_t>(context.inputs().size()) +
                        static_cast<std::size_t>(i));
  return cells;
}

GuardedMigrationReport runCell(const MigrationContext& context,
                               const ReconfigurationProgram& program,
                               const fault::FaultModel& model,
                               std::uint64_t scenarioSeed) {
  MutableMachine machine(context);
  fault::FaultGeometry geometry;
  geometry.cellCount = static_cast<std::size_t>(context.states().size()) *
                       static_cast<std::size_t>(context.inputs().size());
  geometry.bitsPerCell = machine.faultBitsPerCell();
  geometry.programLength = program.length();
  if (model.stickyProbability > 0.0)
    geometry.stickyCells = expansionCells(context);
  fault::FaultInjector injector(scenarioSeed);
  const fault::FaultScenario scenario = injector.draw(model, geometry);
  ProgramJournal journal;
  return runGuardedMigration(machine, program, scenario, RecoveryOptions{},
                             &journal);
}

/// Returns true when the zero-silent-corruption contract held.
bool printArtifact(bool smoke) {
  banner("A12", "Fault sweep - injection, detection, recovery");
  const int jobs = artifactJobs();
  const int seedsPerCell = smoke ? 2 : 8;
  const int instanceCount =
      smoke ? 2 : static_cast<int>(std::size(kInstances));
  const int modelCount = static_cast<int>(std::size(kModels));

  // Flat grid of independent runs so parallelFor can chew on it; each run
  // derives everything from its own indices — bit-identical for any jobs.
  const int cellCount = instanceCount * modelCount;
  std::vector<CellTally> tallies(static_cast<std::size_t>(cellCount));
  std::vector<MigrationContext> contexts;
  std::vector<ReconfigurationProgram> programs;
  for (int inst = 0; inst < instanceCount; ++inst) {
    const InstanceSpec& spec = kInstances[inst];
    contexts.push_back(randomInstance(spec.states, spec.inputs, spec.deltas,
                                      spec.seed, spec.newStates));
    programs.push_back(planJsr(contexts.back()));
  }

  ThreadPool pool(jobs);
  const auto runCount = static_cast<std::size_t>(cellCount * seedsPerCell);
  std::vector<GuardedMigrationReport> reports(runCount);
  pool.parallelFor(runCount, [&](std::size_t run) {
    const int cell = static_cast<int>(run) / seedsPerCell;
    const int inst = cell / modelCount;
    const int model = cell % modelCount;
    reports[run] =
        runCell(contexts[static_cast<std::size_t>(inst)],
                programs[static_cast<std::size_t>(inst)],
                kModels[model].model, 0x5eed0000 + run);
  });

  bool contractHolds = true;
  for (std::size_t run = 0; run < runCount; ++run) {
    const GuardedMigrationReport& r = reports[run];
    CellTally& t = tallies[run / static_cast<std::size_t>(seedsPerCell)];
    ++t.runs;
    t.verified += r.outcome == MigrationOutcome::kVerified ? 1 : 0;
    t.rolledBack += r.outcome == MigrationOutcome::kRolledBack ? 1 : 0;
    t.failed += r.outcome == MigrationOutcome::kFailed ? 1 : 0;
    t.detected += r.faultDetected ? 1 : 0;
    t.resumed += r.resumed ? 1 : 0;
    t.patched += r.patchAttempts > 0 ? 1 : 0;
    t.cycles += r.executedCycles;
    t.backoff += r.backoffCycles;
    if (r.outcome == MigrationOutcome::kFailed) contractHolds = false;
  }

  Table table({"instance", "fault model", "runs", "verified", "rolled back",
               "FAILED", "detected", "resumed", "patched", "cycles",
               "backoff"});
  for (int cell = 0; cell < cellCount; ++cell) {
    const CellTally& t = tallies[static_cast<std::size_t>(cell)];
    table.addRow({kInstances[cell / modelCount].name,
                  kModels[cell % modelCount].name, std::to_string(t.runs),
                  std::to_string(t.verified), std::to_string(t.rolledBack),
                  std::to_string(t.failed), std::to_string(t.detected),
                  std::to_string(t.resumed), std::to_string(t.patched),
                  std::to_string(t.cycles), std::to_string(t.backoff)});
  }
  std::cout << "\nguarded migrations under default injection rates ("
            << (smoke ? "smoke" : "full") << " grid, " << runCount
            << " runs):\n"
            << table.toMarkdown();
  std::cout << "\nzero-silent-corruption contract: "
            << (contractHolds ? "HOLDS (every run verified or cleanly rolled "
                                "back)"
                              : "VIOLATED - see FAILED column")
            << "\n";
  printTelemetry(jobs, /*countersOnly=*/true);
  return contractHolds;
}

void guardedMigrationBench(benchmark::State& state) {
  const MigrationContext context = randomInstance(10, 3, 8, 42, 2);
  const ReconfigurationProgram program = planJsr(context);
  fault::FaultModel model;  // default injection rates
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runCell(context, program, model, seed++));
  }
  state.SetLabel("inject+verify+recover");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(guardedMigrationBench)->Unit(benchmark::kMicrosecond);

void integrityScanBench(benchmark::State& state) {
  const MigrationContext context = randomInstance(16, 4, 8, 42, 0);
  MutableMachine machine(context);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.integrityScan());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 4);
}
BENCHMARK(integrityScanBench);

}  // namespace
}  // namespace rfsm::bench

int main(int argc, char** argv) {
  // Strip the sweep's own flags before google-benchmark sees them.
  const std::string jsonOut = rfsm::bench::stripJsonOutFlag(argc, argv);
  bool smoke = false;
  int kept = 1;
  for (int k = 1; k < argc; ++k) {
    if (std::string(argv[k]) == "--smoke")
      smoke = true;
    else
      argv[kept++] = argv[k];
  }
  argc = kept;
  const auto artifactStart = std::chrono::steady_clock::now();
  const bool contractHolds = rfsm::bench::printArtifact(smoke);
  const double artifactMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - artifactStart)
          .count();
  if (!jsonOut.empty() &&
      !rfsm::bench::writeBenchJson(jsonOut, argv[0], artifactMs))
    return 1;
  if (!contractHolds) return 1;
  if (smoke) return 0;  // regression gate: artifact only, no timings
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
