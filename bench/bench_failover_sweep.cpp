// A19 — Hot-standby failover sweep: the session replication plane under
// primary loss.  A real rfsmd primary quorum- or async-replicates a
// streaming session to a real rfsmd standby; the primary is SIGKILLed
// mid-stream and the client's SessionStream fails over to the standby,
// which promotes (epoch bump) and serves the rest of the stream.  Cells:
//
//  * failover grid — {quorum, async} x kill points x {no chaos,
//    repl-light}: the stitched post-failover transcript must be
//    byte-identical to an uninterrupted SessionEngine reference, with any
//    sequence gap healed by the client's rewind (re-open + resend); under
//    quorum the standby must resume at exactly the primary's acked
//    high-water mark (no acked mutation lost);
//  * deposed-primary cell — the killed primary restarts over its own state
//    dir still believing it is the epoch-1 primary; its next quorum ship
//    hits the promoted standby's higher epoch and the client is refused
//    with STALE_EPOCH (split-brain fenced, not silently forked);
//  * promotion cost — the time from first post-kill attempt to the first
//    acked mutation on the standby, reported per cell: warm replay keeps
//    it O(un-applied tail), not O(history).
//
// The binary exits 1 when any transcript diverges, an acked mutation is
// lost under quorum, or the deposed primary is not fenced.  `--smoke`
// shrinks the grid for the CI regression gate.
#include "common.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/session.hpp"
#include "util/ipc.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

using namespace std::chrono_literals;
using service::MutationRecord;
using service::PlanOutcome;
using service::SessionConfig;
using service::SessionEngine;
using service::SessionStatus;

std::string rfsmdPath() {
  if (const char* env = std::getenv("RFSM_RFSMD")) return env;
#ifdef RFSM_RFSMD_BUILD_PATH
  return RFSM_RFSMD_BUILD_PATH;
#else
  return "rfsmd";
#endif
}

SessionConfig sessionConfig() {
  SessionConfig config;
  config.tenant = "ha";
  config.name = "stream";
  config.stateCount = 8;
  config.inputCount = 2;
  config.outputCount = 2;
  config.seed = 0xA19;
  config.planner = "jsr";
  return config;
}

service::SessionOpenRequest openRequestFor(const SessionConfig& config) {
  service::SessionOpenRequest request;
  request.tenant = config.tenant;
  request.name = config.name;
  request.priority = static_cast<std::uint32_t>(config.priority);
  request.weight = static_cast<std::uint32_t>(config.weight);
  request.planner = config.planner;
  request.stateCount = config.stateCount;
  request.inputCount = config.inputCount;
  request.outputCount = config.outputCount;
  request.seed = config.seed;
  return request;
}

service::SessionMutateRequest mutateRequestFor(const SessionConfig& config,
                                               std::uint64_t seq) {
  service::SessionMutateRequest request;
  request.tenant = config.tenant;
  request.name = config.name;
  request.seq = seq;
  request.deltaCount = 3;
  request.mutationSeed = 0xA19000 + seq;
  return request;
}

MutationRecord recordFor(std::uint64_t seq) {
  MutationRecord rec;
  rec.seq = seq;
  rec.deltaCount = 3;
  rec.mutationSeed = 0xA19000 + seq;
  return rec;
}

/// An rfsmd with arbitrary extra flags (--replica, --repl-ack, --chaos).
struct Daemon {
  pid_t pid = -1;

  bool start(const std::string& socketPath, const std::string& stateDir,
             const std::vector<std::string>& extra = {}) {
    pid = fork();
    if (pid == -1) return false;
    if (pid == 0) {
      const std::string binary = rfsmdPath();
      std::vector<std::string> args = {binary,
                                       "--socket",
                                       socketPath,
                                       "--state-dir",
                                       stateDir,
                                       "--workers",
                                       "1",
                                       "--snapshot-every",
                                       "2"};
      args.insert(args.end(), extra.begin(), extra.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(binary.c_str(), argv.data());
      _exit(127);
    }
    for (int spin = 0; spin < 200; ++spin) {
      if (::access(socketPath.c_str(), F_OK) == 0) return true;
      std::this_thread::sleep_for(25ms);
    }
    return false;
  }

  void sigkill() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    pid = -1;
  }

  ~Daemon() { sigkill(); }
};

// --- Failover grid --------------------------------------------------------

struct FailoverCell {
  std::string ack;
  std::string chaos;  ///< "" = off
  std::uint64_t killAfter = 0;
  bool ok = false;
  bool byteIdentical = false;
  bool quorumLossless = true;  ///< resumed at the acked high-water mark
  std::uint64_t resumedAt = 0;
  std::uint64_t rewinds = 0;
  std::uint64_t failovers = 0;
  std::uint64_t standbyEpoch = 0;
  double promotionMs = 0.0;
  std::string detail;
};

/// Streams `total` mutations with the primary SIGKILLed after `killAfter`
/// acks; the client fails over to the standby and rewinds through any
/// sequence gap.  Returns every contract signal for the artifact table.
FailoverCell runFailoverCell(const std::string& ack, std::uint64_t killAfter,
                             std::uint64_t total, const std::string& chaos) {
  FailoverCell cell;
  cell.ack = ack;
  cell.chaos = chaos;
  cell.killAfter = killAfter;
  const SessionConfig config = sessionConfig();

  std::map<std::uint64_t, std::string> reference;
  {
    SessionEngine engine(config);
    for (std::uint64_t k = 1; k <= total; ++k) {
      const PlanOutcome outcome = engine.apply(recordFor(k));
      if (outcome.planned) reference[k] = outcome.program;
    }
  }

  char primaryTemplate[] = "/tmp/rfsm-a19p-XXXXXX";
  char standbyTemplate[] = "/tmp/rfsm-a19s-XXXXXX";
  const char* primaryDir = mkdtemp(primaryTemplate);
  const char* standbyDir = mkdtemp(standbyTemplate);
  if (primaryDir == nullptr || standbyDir == nullptr) {
    cell.detail = "mkdtemp failed";
    return cell;
  }
  const std::string primarySock = std::string(primaryDir) + "/rfsmd.sock";
  const std::string standbySock = std::string(standbyDir) + "/rfsmd.sock";

  Daemon standby;
  if (!standby.start(standbySock, standbyDir)) {
    cell.detail = "standby did not start";
    return cell;
  }
  std::vector<std::string> primaryExtra = {"--replica", standbySock,
                                           "--repl-ack", ack};
  if (!chaos.empty()) {
    primaryExtra.push_back("--chaos");
    primaryExtra.push_back("11:" + chaos);
  }
  Daemon primary;
  if (!primary.start(primarySock, primaryDir, primaryExtra)) {
    cell.detail = "primary did not start";
    return cell;
  }

  service::SessionStream::Options streamOptions;
  streamOptions.endpoints = {ipc::parseEndpoint(primarySock),
                             ipc::parseEndpoint(standbySock)};
  streamOptions.retryFor = 20s;

  // Answers for one seq must agree across resends — a rewind that replays
  // an already-recorded seq with different bytes is divergence, caught
  // here rather than averaged away.
  std::map<std::uint64_t, std::string> transcript;
  const auto record = [&cell, &transcript](std::uint64_t seq,
                                           const std::string& program) {
    const auto [it, fresh] = transcript.emplace(seq, program);
    if (!fresh && it->second != program) {
      cell.detail = "resent seq " + std::to_string(seq) + " diverged";
      return false;
    }
    return true;
  };

  try {
    service::SessionStream stream(streamOptions);
    if (stream.open(openRequestFor(config)).status != SessionStatus::kOk) {
      cell.detail = "open failed";
      return cell;
    }
    for (std::uint64_t k = 1; k <= killAfter; ++k) {
      const auto response = stream.mutate(mutateRequestFor(config, k));
      if (response.status != SessionStatus::kOk) {
        cell.detail = "pre-kill seq " + std::to_string(k) + ": " +
                      response.error;
        return cell;
      }
      if (!record(k, response.program)) return cell;
    }
    primary.sigkill();

    // Post-kill: the stream rotates to the standby; a sequence gap (async
    // loss window) surfaces as kBadSequence and is healed by re-opening
    // (which promotes the standby) and resending from its high-water mark.
    const auto promotionStart = std::chrono::steady_clock::now();
    bool firstAck = true;
    std::uint64_t k = killAfter + 1;
    while (k <= total) {
      const auto response = stream.mutate(mutateRequestFor(config, k));
      if (response.status == SessionStatus::kBadSequence) {
        if (++cell.rewinds > 8) {
          cell.detail = "rewind bound exceeded";
          return cell;
        }
        const auto reopened = stream.open(openRequestFor(config));
        if (reopened.status != SessionStatus::kOk) {
          cell.detail = "rewind open failed: " + reopened.error;
          return cell;
        }
        if (cell.resumedAt == 0) cell.resumedAt = reopened.lastApplied;
        k = reopened.lastApplied + 1;
        continue;
      }
      if (response.status != SessionStatus::kOk) {
        cell.detail = "post-kill seq " + std::to_string(k) + ": " +
                      toString(response.status) + " " + response.error;
        return cell;
      }
      if (firstAck) {
        cell.promotionMs = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() -
                               promotionStart)
                               .count();
        if (cell.resumedAt == 0) cell.resumedAt = k - 1;
        firstAck = false;
      }
      if (!record(k, response.program)) return cell;
      ++k;
    }
    cell.failovers = stream.failovers();

    const auto status = stream.status({config.tenant, config.name});
    cell.standbyEpoch = status.epoch;
  } catch (const Error& error) {
    cell.detail = error.what();
    return cell;
  }

  cell.ok = true;
  cell.byteIdentical = transcript == reference;
  if (!cell.byteIdentical && cell.detail.empty())
    cell.detail = "transcript diverged";
  // Quorum: every acked record reached the standby's journal before the
  // ack, so the resume point can never trail the kill point.
  cell.quorumLossless = ack != "quorum" || cell.resumedAt >= killAfter;
  if (!cell.quorumLossless)
    cell.detail = "acked mutation lost under quorum (resumed at " +
                  std::to_string(cell.resumedAt) + " < " +
                  std::to_string(killAfter) + ")";
  return cell;
}

// --- Deposed-primary cell -------------------------------------------------

struct DeposedCell {
  bool ok = false;
  bool fenced = false;
  std::uint64_t staleEpochSeen = 0;
  std::string detail;
};

/// After a failover, the killed primary restarts over its own state dir
/// still believing it owns epoch 1; its next quorum ship must be refused
/// by the promoted standby and the client must see STALE_EPOCH.
DeposedCell runDeposedCell() {
  DeposedCell cell;
  const SessionConfig config = sessionConfig();
  const std::uint64_t kAcked = 3;

  char primaryTemplate[] = "/tmp/rfsm-a19d-XXXXXX";
  char standbyTemplate[] = "/tmp/rfsm-a19e-XXXXXX";
  const char* primaryDir = mkdtemp(primaryTemplate);
  const char* standbyDir = mkdtemp(standbyTemplate);
  if (primaryDir == nullptr || standbyDir == nullptr) {
    cell.detail = "mkdtemp failed";
    return cell;
  }
  const std::string primarySock = std::string(primaryDir) + "/rfsmd.sock";
  const std::string standbySock = std::string(standbyDir) + "/rfsmd.sock";

  Daemon standby;
  if (!standby.start(standbySock, standbyDir)) {
    cell.detail = "standby did not start";
    return cell;
  }
  Daemon primary;
  if (!primary.start(primarySock, primaryDir,
                     {"--replica", standbySock, "--repl-ack", "quorum"})) {
    cell.detail = "primary did not start";
    return cell;
  }

  try {
    service::SessionStream::Options primaryOnly;
    primaryOnly.endpoint = ipc::parseEndpoint(primarySock);
    primaryOnly.retryFor = 10s;
    {
      service::SessionStream stream(primaryOnly);
      if (stream.open(openRequestFor(config)).status != SessionStatus::kOk) {
        cell.detail = "open failed";
        return cell;
      }
      for (std::uint64_t k = 1; k <= kAcked; ++k)
        if (stream.mutate(mutateRequestFor(config, k)).status !=
            SessionStatus::kOk) {
          cell.detail = "seq " + std::to_string(k) + " failed";
          return cell;
        }
    }
    primary.sigkill();

    // Failover: promote the standby by resuming the stream against it.
    service::SessionStream::Options standbyOnly;
    standbyOnly.endpoint = ipc::parseEndpoint(standbySock);
    standbyOnly.retryFor = 10s;
    {
      service::SessionStream stream(standbyOnly);
      const auto resumed = stream.open(openRequestFor(config));
      if (resumed.status != SessionStatus::kOk ||
          resumed.lastApplied != kAcked) {
        cell.detail = "standby resume failed";
        return cell;
      }
      if (stream.mutate(mutateRequestFor(config, kAcked + 1)).status !=
          SessionStatus::kOk) {
        cell.detail = "standby mutate failed";
        return cell;
      }
    }

    // The deposed primary comes back on its old state dir and keeps
    // streaming under epoch 1.
    Daemon deposed;
    if (!deposed.start(primarySock, primaryDir,
                       {"--replica", standbySock, "--repl-ack", "quorum"})) {
      cell.detail = "deposed primary did not restart";
      return cell;
    }
    service::SessionStream stream(primaryOnly);
    const auto resumed = stream.open(openRequestFor(config));
    if (resumed.status != SessionStatus::kOk) {
      cell.detail = "deposed resume failed";
      return cell;
    }
    const auto refused =
        stream.mutate(mutateRequestFor(config, resumed.lastApplied + 1));
    cell.fenced = refused.status == SessionStatus::kStaleEpoch;
    if (!cell.fenced)
      cell.detail = std::string("expected STALE_EPOCH, got ") +
                    toString(refused.status);

    service::SessionStream probe(standbyOnly);
    cell.staleEpochSeen = probe.status({config.tenant, config.name}).epoch;
  } catch (const Error& error) {
    cell.detail = error.what();
    return cell;
  }
  cell.ok = true;
  return cell;
}

// --- Artifact -------------------------------------------------------------

std::string formatMs(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

/// Returns true when every failover transcript is byte-identical, quorum
/// loses no acked mutation, and the deposed primary is fenced.
bool printArtifact(bool smoke) {
  banner("A19",
         "Failover sweep - WAL shipping, epoch fencing, standby promotion");

  struct GridSpec {
    std::string ack;
    std::uint64_t killAfter;
    std::string chaos;
  };
  std::vector<GridSpec> grid;
  const std::uint64_t total = smoke ? 6 : 10;
  if (smoke) {
    grid = {{"quorum", 3, ""}, {"async", 3, ""}};
  } else {
    for (const char* ack : {"quorum", "async"})
      for (const std::uint64_t killAfter : {2ull, 5ull})
        for (const char* chaos : {"", "repl-light"})
          grid.push_back({ack, killAfter, chaos});
  }

  std::vector<FailoverCell> cells;
  Table table({"ack", "kill@", "chaos", "resumed@", "rewinds", "epoch",
               "promote ms", "transcript"});
  bool allHold = true;
  for (const GridSpec& spec : grid) {
    cells.push_back(
        runFailoverCell(spec.ack, spec.killAfter, total, spec.chaos));
    const FailoverCell& cell = cells.back();
    const bool holds =
        cell.ok && cell.byteIdentical && cell.quorumLossless &&
        cell.failovers >= 1 && cell.standbyEpoch >= 2;
    allHold = allHold && holds;
    table.addRow({cell.ack, std::to_string(cell.killAfter),
                  cell.chaos.empty() ? "off" : cell.chaos,
                  std::to_string(cell.resumedAt),
                  std::to_string(cell.rewinds),
                  std::to_string(cell.standbyEpoch),
                  formatMs(cell.promotionMs),
                  holds ? "BYTE-IDENTICAL"
                        : "FAILED (" +
                              (cell.detail.empty() ? "?" : cell.detail) +
                              ")"});
  }
  std::cout << "\nfailover grid (" << total
            << " mutations per cell, primary SIGKILLed mid-stream, client "
               "fails over to the standby):\n"
            << table.toMarkdown();

  const DeposedCell deposed = runDeposedCell();
  const bool deposedHolds = deposed.ok && deposed.fenced;
  allHold = allHold && deposedHolds;
  std::cout << "\ndeposed-primary cell: old primary restarts on epoch 1 "
               "after the standby promoted to epoch "
            << deposed.staleEpochSeen << "\n  "
            << (deposedHolds
                    ? "client refused with STALE_EPOCH (split-brain fenced)"
                    : "NOT FENCED (" +
                          (deposed.detail.empty() ? "?" : deposed.detail) +
                          ")")
            << "\n";

  // Publish the per-cell signals for tools/bench_diff.py.
  std::ostringstream curves;
  curves << "\"curves\": {\n";
  const auto array = [&curves, &cells](const char* key, auto&& project,
                                       bool last = false) {
    curves << "    \"" << key << "\": [";
    for (std::size_t k = 0; k < cells.size(); ++k)
      curves << (k ? ", " : "") << project(cells[k]);
    curves << "]" << (last ? "" : ",") << "\n";
  };
  array("kill_after", [](const FailoverCell& c) { return c.killAfter; });
  array("resumed_at", [](const FailoverCell& c) { return c.resumedAt; });
  array("rewinds", [](const FailoverCell& c) { return c.rewinds; });
  array("standby_epoch", [](const FailoverCell& c) { return c.standbyEpoch; });
  array("promotion_ms", [](const FailoverCell& c) { return c.promotionMs; },
        /*last=*/true);
  curves << "  }";
  sidecarExtra() = curves.str();

  printTelemetry(artifactJobs());
  return allHold;
}

}  // namespace
}  // namespace rfsm::bench

int main(int argc, char** argv) {
  const std::string jsonOut = rfsm::bench::stripJsonOutFlag(argc, argv);
  bool smoke = false;
  int kept = 1;
  for (int k = 1; k < argc; ++k) {
    if (std::string(argv[k]) == "--smoke")
      smoke = true;
    else
      argv[kept++] = argv[k];
  }
  argc = kept;
  const auto artifactStart = std::chrono::steady_clock::now();
  const bool contractHolds = rfsm::bench::printArtifact(smoke);
  const double artifactMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - artifactStart)
          .count();
  if (!jsonOut.empty() &&
      !rfsm::bench::writeBenchJson(jsonOut, argv[0], artifactMs))
    return 1;
  if (!contractHolds) return 1;
  if (smoke) return 0;  // regression gate: artifact only, no timings
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::Shutdown();
  return 0;
}
