// A6 — Sample controller migrations: every bundled revision pair planned by
// every planner, with the partial-reconfiguration special case where it
// applies.  This is the "realistic workloads" counterpart to the random
// machines of Table 2.
#include "common.hpp"

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/local_search.hpp"
#include "core/partial.hpp"
#include "core/planners.hpp"
#include "gen/samples.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("A6", "Sample controller upgrades - all planners");

  Table table({"upgrade", "|Td|", "lower", "JSR", "greedy", "EA", "2-opt",
               "anneal", "output-only opt", "all valid"});
  for (const SampleMigration& pair : sampleMigrations()) {
    const MigrationContext context(pair.source, pair.target);
    bool allValid = true;
    auto lengthOf = [&](const ReconfigurationProgram& z) {
      allValid = allValid && validateProgram(context, z).valid;
      return std::to_string(z.length());
    };
    EvolutionConfig config;
    Rng eaRng(5), saRng(6);
    const std::string jsr = lengthOf(planJsr(context));
    const std::string greedy = lengthOf(planGreedy(context));
    const std::string ea =
        lengthOf(planEvolutionary(context, config, eaRng).program);
    const std::string twoOpt = lengthOf(planTwoOpt(context).program);
    const std::string anneal =
        lengthOf(planAnnealing(context, AnnealingConfig{}, saRng).program);
    std::string partial = "-";
    if (isOutputOnlyMigration(context))
      if (const auto optimal = planOutputOnlyOptimal(context))
        partial = lengthOf(*optimal);
    table.addRow({pair.name, std::to_string(context.deltaCount()),
                  std::to_string(programLowerBound(context)), jsr, greedy,
                  ea, twoOpt, anneal, partial, allValid ? "yes" : "NO"});
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\nThe parity upgrade is output-only: the static-graph\n"
               "optimal planner (Held-Karp over walks) applies and no\n"
               "temporary transitions are needed at all.\n";
}

void planSampleUpgrades(benchmark::State& state) {
  const auto pairs = sampleMigrations();
  for (auto _ : state) {
    int total = 0;
    for (const SampleMigration& pair : pairs) {
      const MigrationContext context(pair.source, pair.target);
      total += planGreedy(context).length();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(planSampleUpgrades)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
