// A16 — Multi-tenant session sweep: the streaming session layer under
// offered load, crash/restart, and tenant contention.  Three artifacts:
//
//  * an arrival-rate sweep — one tenant streams mutations at increasing
//    offered rates against token-bucket admission control; each rate's
//    goodput and completion-latency p50/p99 (from scheduled arrival to
//    applied plan, so queueing and admission backoff count) form the
//    goodput/latency curves published in the BENCH_*.json sidecar under
//    "curves" for tools/bench_diff.py to gate on;
//  * a kill/restart/resume cell — a real rfsmd is SIGKILLed mid-stream,
//    restarted over the same state dir, and the resumed transcript is
//    compared byte-for-byte against an uninterrupted SessionEngine
//    reference;
//  * a starved-tenant cell — aggressor tenants flood mutations at ~10x the
//    victim's rate; weighted-fair scheduling must keep the victim's p99
//    within a bound of its uncontended latency.
//
// The binary exits 1 when recovery is not byte-identical or the fairness
// bound breaks.  `--smoke` shrinks the grid for the CI regression gate.
#include "common.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/session.hpp"
#include "util/ipc.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

using namespace std::chrono_literals;
using service::MutationRecord;
using service::PlanOutcome;
using service::SessionConfig;
using service::SessionEngine;
using service::SessionService;
using service::SessionServiceOptions;
using service::SessionStatus;

std::string rfsmdPath() {
  if (const char* env = std::getenv("RFSM_RFSMD")) return env;
#ifdef RFSM_RFSMD_BUILD_PATH
  return RFSM_RFSMD_BUILD_PATH;
#else
  return "rfsmd";
#endif
}

SessionConfig sessionConfig(const std::string& tenant,
                            const std::string& name) {
  SessionConfig config;
  config.tenant = tenant;
  config.name = name;
  config.stateCount = 8;
  config.inputCount = 2;
  config.outputCount = 2;
  config.seed = 0xA16;
  config.planner = "jsr";
  return config;
}

service::SessionOpenRequest openRequestFor(const SessionConfig& config) {
  service::SessionOpenRequest request;
  request.tenant = config.tenant;
  request.name = config.name;
  request.priority = static_cast<std::uint32_t>(config.priority);
  request.weight = static_cast<std::uint32_t>(config.weight);
  request.planner = config.planner;
  request.stateCount = config.stateCount;
  request.inputCount = config.inputCount;
  request.outputCount = config.outputCount;
  request.seed = config.seed;
  return request;
}

service::SessionMutateRequest mutateRequestFor(const SessionConfig& config,
                                               std::uint64_t seq,
                                               bool defer = false) {
  service::SessionMutateRequest request;
  request.tenant = config.tenant;
  request.name = config.name;
  request.seq = seq;
  request.deltaCount = 3;
  request.mutationSeed = 0xA16000 + seq;
  request.defer = defer;
  return request;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

// --- Arrival-rate sweep ---------------------------------------------------

struct RatePoint {
  double offered = 0.0;   ///< mutations/second scheduled
  double goodput = 0.0;   ///< mutations/second applied
  double p50Ms = 0.0;     ///< completion latency, arrival -> applied
  double p99Ms = 0.0;
  std::uint64_t rejections = 0;  ///< RESOURCE_EXHAUSTED verdicts absorbed
};

/// One open-loop cell: mutations arrive on a fixed schedule; an admission
/// rejection backs off per the retryAfterMs hint and resends the same seq
/// (sessions are strictly sequential), so saturation shows up as latency,
/// not lost work.
RatePoint runRate(double offeredPerSec, std::uint64_t mutations,
                  double admitRate) {
  SessionServiceOptions options;
  options.executors = 2;
  options.tenantRate = admitRate;
  options.tenantBurst = 8.0;
  SessionService store(options);
  const SessionConfig config = sessionConfig("sweep", "stream");
  if (store.open(openRequestFor(config)).status != SessionStatus::kOk)
    return {};

  RatePoint point;
  point.offered = offeredPerSec;
  std::vector<double> latenciesMs;
  latenciesMs.reserve(mutations);
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(1s / offeredPerSec);
  const auto start = std::chrono::steady_clock::now();
  auto arrival = start;
  for (std::uint64_t seq = 1; seq <= mutations; ++seq) {
    std::this_thread::sleep_until(arrival);
    while (true) {
      const auto response = store.mutate(mutateRequestFor(config, seq));
      if (response.status == SessionStatus::kResourceExhausted) {
        ++point.rejections;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::max<std::int64_t>(
                1, response.retryAfterMs)));
        continue;
      }
      break;
    }
    latenciesMs.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - arrival)
                              .count());
    arrival += interval;
  }
  const double wallSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  point.goodput = wallSec > 0.0 ? static_cast<double>(mutations) / wallSec
                                : 0.0;
  point.p50Ms = quantile(latenciesMs, 0.50);
  point.p99Ms = quantile(latenciesMs, 0.99);
  return point;
}

// --- Kill / restart / resume cell -----------------------------------------

struct Daemon {
  pid_t pid = -1;

  bool start(const std::string& socketPath, const std::string& stateDir) {
    pid = fork();
    if (pid == -1) return false;
    if (pid == 0) {
      const std::string binary = rfsmdPath();
      ::execl(binary.c_str(), binary.c_str(), "--socket", socketPath.c_str(),
              "--state-dir", stateDir.c_str(), "--workers", "1",
              "--snapshot-every", "2", static_cast<char*>(nullptr));
      _exit(127);
    }
    for (int spin = 0; spin < 200; ++spin) {
      if (::access(socketPath.c_str(), F_OK) == 0) return true;
      std::this_thread::sleep_for(25ms);
    }
    return false;
  }

  void sigkill() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    pid = -1;
  }

  ~Daemon() { sigkill(); }
};

/// The shared mutation schedule: odd seqs defer (compacted into the next
/// even flush), the final seq always flushes.
MutationRecord scheduledMut(std::uint64_t k, std::uint64_t total) {
  MutationRecord rec;
  rec.seq = k;
  rec.deltaCount = 3;
  rec.mutationSeed = 0xA16000 + k;
  rec.defer = k % 2 == 1 && k != total;
  return rec;
}

struct KillCell {
  bool ok = false;
  bool byteIdentical = false;
  std::uint64_t resumedAt = 0;
  std::string detail;
};

KillCell runKillCell() {
  KillCell cell;
  const std::uint64_t kMutations = 6;
  const std::uint64_t kKillAfter = 3;
  const SessionConfig config = sessionConfig("kill", "stream");

  std::vector<std::pair<std::uint64_t, std::string>> reference;
  {
    SessionEngine engine(config);
    for (std::uint64_t k = 1; k <= kMutations; ++k) {
      const PlanOutcome outcome = engine.apply(scheduledMut(k, kMutations));
      if (outcome.planned) reference.emplace_back(k, outcome.program);
    }
  }

  char dirTemplate[] = "/tmp/rfsm-a16-XXXXXX";
  const char* stateDir = mkdtemp(dirTemplate);
  if (stateDir == nullptr) {
    cell.detail = "mkdtemp failed";
    return cell;
  }
  const std::string socketPath =
      std::string(stateDir) + "/rfsmd.sock";

  const auto streamRange =
      [&config](service::SessionStream& stream, std::uint64_t from,
                std::uint64_t to, std::uint64_t total,
                std::vector<std::pair<std::uint64_t, std::string>>*
                    transcript) -> bool {
    for (std::uint64_t k = from; k <= to; ++k) {
      const MutationRecord rec = scheduledMut(k, total);
      service::SessionMutateRequest request;
      request.tenant = config.tenant;
      request.name = config.name;
      request.seq = rec.seq;
      request.deltaCount = rec.deltaCount;
      request.mutationSeed = rec.mutationSeed;
      request.defer = rec.defer;
      const auto response = stream.mutate(request);
      if (response.status != SessionStatus::kOk &&
          response.status != SessionStatus::kAccepted)
        return false;
      if (response.status == SessionStatus::kOk)
        transcript->emplace_back(k, response.program);
    }
    return true;
  };

  std::vector<std::pair<std::uint64_t, std::string>> transcript;
  service::SessionStream::Options streamOptions;
  streamOptions.endpoint = ipc::parseEndpoint(socketPath);
  streamOptions.retryFor = 15s;

  Daemon daemon;
  if (!daemon.start(socketPath, stateDir)) {
    cell.detail = "rfsmd did not start";
    return cell;
  }
  try {
    service::SessionStream stream(streamOptions);
    if (stream.open(openRequestFor(config)).status != SessionStatus::kOk) {
      cell.detail = "open failed";
      return cell;
    }
    if (!streamRange(stream, 1, kKillAfter, kMutations, &transcript)) {
      cell.detail = "pre-kill stream failed";
      return cell;
    }
  } catch (const Error& error) {
    cell.detail = error.what();
    return cell;
  }
  daemon.sigkill();

  Daemon restarted;
  if (!restarted.start(socketPath, stateDir)) {
    cell.detail = "rfsmd did not restart";
    return cell;
  }
  try {
    service::SessionStream stream(streamOptions);
    const auto resumed = stream.open(openRequestFor(config));
    if (resumed.status != SessionStatus::kOk) {
      cell.detail = "resume open failed";
      return cell;
    }
    cell.resumedAt = resumed.lastApplied;
    if (!streamRange(stream, resumed.lastApplied + 1, kMutations, kMutations,
                     &transcript)) {
      cell.detail = "post-restart stream failed";
      return cell;
    }
  } catch (const Error& error) {
    cell.detail = error.what();
    return cell;
  }

  cell.ok = true;
  cell.byteIdentical = transcript == reference;
  if (!cell.byteIdentical) cell.detail = "transcript diverged";
  return cell;
}

// --- Starved-tenant fairness cell -----------------------------------------

struct FairnessCell {
  double victimSoloP99Ms = 0.0;
  double victimContendedP99Ms = 0.0;
  double boundMs = 0.0;
  bool holds = false;
};

std::vector<double> victimLatencies(SessionService& store,
                                    const SessionConfig& victim,
                                    std::uint64_t mutations) {
  std::vector<double> latenciesMs;
  latenciesMs.reserve(mutations);
  for (std::uint64_t k = 1; k <= mutations; ++k) {
    const auto start = std::chrono::steady_clock::now();
    store.mutate(mutateRequestFor(victim, k));
    latenciesMs.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
    std::this_thread::sleep_for(2ms);
  }
  return latenciesMs;
}

FairnessCell runFairnessCell(std::uint64_t victimMutations,
                             std::uint64_t aggressorMutations) {
  FairnessCell cell;
  // Uncontended baseline.
  {
    SessionServiceOptions options;
    options.executors = 2;
    SessionService store(options);
    const SessionConfig victim = sessionConfig("victim", "v");
    store.open(openRequestFor(victim));
    cell.victimSoloP99Ms =
        quantile(victimLatencies(store, victim, victimMutations), 0.99);
  }
  // Contended: three aggressor sessions flood back-to-back mutations (the
  // victim paces itself, so the aggressors offer ~10x its rate).
  SessionServiceOptions options;
  options.executors = 2;
  SessionService store(options);
  std::vector<SessionConfig> aggressors;
  for (int a = 0; a < 3; ++a) {
    aggressors.push_back(
        sessionConfig("aggr", "s" + std::to_string(a)));
    store.open(openRequestFor(aggressors.back()));
  }
  const SessionConfig victim = sessionConfig("victim", "v");
  store.open(openRequestFor(victim));
  std::vector<std::thread> threads;
  threads.reserve(aggressors.size());
  for (const SessionConfig& config : aggressors)
    threads.emplace_back([&store, config, aggressorMutations] {
      for (std::uint64_t k = 1; k <= aggressorMutations; ++k)
        store.mutate(mutateRequestFor(config, k));
    });
  cell.victimContendedP99Ms =
      quantile(victimLatencies(store, victim, victimMutations), 0.99);
  for (std::thread& t : threads) t.join();

  // Weighted-fair scheduling bounds the victim's wait to a handful of
  // in-flight aggressor items per slot.  The bound is deliberately loose
  // (catastrophic starvation — strict FIFO draining the whole aggressor
  // backlog first — overshoots it by an order of magnitude) so slow CI
  // machines do not flake.
  cell.boundMs = cell.victimSoloP99Ms * 32.0 + 50.0;
  cell.holds = cell.victimContendedP99Ms < cell.boundMs;
  return cell;
}

// --- Artifact -------------------------------------------------------------

std::string formatMs(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

/// Returns true when the kill cell is byte-identical and the fairness
/// bound holds.
bool printArtifact(bool smoke) {
  banner("A16", "Session sweep - arrival rates, crash recovery, fairness");

  const std::vector<double> rates =
      smoke ? std::vector<double>{100.0, 400.0}
            : std::vector<double>{50.0, 100.0, 200.0, 400.0, 800.0};
  const std::uint64_t mutations = smoke ? 60 : 250;
  const double admitRate = 200.0;

  std::vector<RatePoint> points;
  Table table({"offered/s", "goodput/s", "p50 ms", "p99 ms", "rejections"});
  for (const double rate : rates) {
    points.push_back(runRate(rate, mutations, admitRate));
    const RatePoint& point = points.back();
    table.addRow({formatMs(point.offered), formatMs(point.goodput),
                  formatMs(point.p50Ms), formatMs(point.p99Ms),
                  std::to_string(point.rejections)});
  }
  std::cout << "\narrival-rate sweep (one tenant, admission "
            << formatMs(admitRate) << "/s sustained, burst 8, " << mutations
            << " mutations per point):\n"
            << table.toMarkdown();

  const KillCell kill = runKillCell();
  std::cout << "\nkill/restart/resume cell: SIGKILL after 3 of 6 mutations, "
               "restart, resume\n"
            << "  resumed at seq " << kill.resumedAt << ", transcript "
            << (kill.byteIdentical ? "BYTE-IDENTICAL to uninterrupted run"
                                   : std::string("DIVERGED (") +
                                         (kill.detail.empty() ? "?"
                                                              : kill.detail) +
                                         ")")
            << "\n";

  const FairnessCell fairness =
      runFairnessCell(smoke ? 10 : 25, smoke ? 30 : 120);
  std::cout << "\nstarved-tenant cell: 3 aggressor sessions flooding vs one "
               "paced victim\n"
            << "  victim p99 solo " << formatMs(fairness.victimSoloP99Ms)
            << " ms, contended " << formatMs(fairness.victimContendedP99Ms)
            << " ms, bound " << formatMs(fairness.boundMs) << " ms: "
            << (fairness.holds ? "FAIRNESS HOLDS" : "STARVED") << "\n";

  // Publish the curves for tools/bench_diff.py.
  std::ostringstream curves;
  curves << "\"curves\": {\n";
  const auto array = [&curves, &points](const char* key,
                                        auto&& project, bool last = false) {
    curves << "    \"" << key << "\": [";
    for (std::size_t k = 0; k < points.size(); ++k)
      curves << (k ? ", " : "") << project(points[k]);
    curves << "]" << (last ? "" : ",") << "\n";
  };
  array("offered_per_sec", [](const RatePoint& p) { return p.offered; });
  array("goodput_per_sec", [](const RatePoint& p) { return p.goodput; });
  array("p50_ms", [](const RatePoint& p) { return p.p50Ms; });
  array("p99_ms", [](const RatePoint& p) { return p.p99Ms; });
  array("rejections", [](const RatePoint& p) { return p.rejections; },
        /*last=*/true);
  curves << "  }";
  sidecarExtra() = curves.str();

  printTelemetry(artifactJobs());
  return kill.ok && kill.byteIdentical && fairness.holds;
}

void sessionMutateBench(benchmark::State& state) {
  SessionServiceOptions options;
  options.executors = static_cast<int>(state.range(0));
  SessionService store(options);
  const SessionConfig config = sessionConfig("bench", "stream");
  store.open(openRequestFor(config));
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.mutate(mutateRequestFor(config, ++seq)));
  }
  state.SetLabel("streamed mutate -> plan, in-process");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(sessionMutateBench)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void sessionCompactionBench(benchmark::State& state) {
  // Deferred run of `range` mutations flushed by one plan: measures what
  // compaction saves over planning each mutation individually.
  SessionServiceOptions options;
  options.executors = 1;
  SessionService store(options);
  const SessionConfig config = sessionConfig("bench", "compact");
  store.open(openRequestFor(config));
  std::uint64_t seq = 0;
  const std::uint64_t run = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    for (std::uint64_t k = 1; k < run; ++k)
      store.mutate(mutateRequestFor(config, ++seq, /*defer=*/true));
    benchmark::DoNotOptimize(store.mutate(mutateRequestFor(config, ++seq)));
  }
  state.SetLabel("deferred run compacted into one plan");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(run));
}
BENCHMARK(sessionCompactionBench)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfsm::bench

int main(int argc, char** argv) {
  const std::string jsonOut = rfsm::bench::stripJsonOutFlag(argc, argv);
  bool smoke = false;
  int kept = 1;
  for (int k = 1; k < argc; ++k) {
    if (std::string(argv[k]) == "--smoke")
      smoke = true;
    else
      argv[kept++] = argv[k];
  }
  argc = kept;
  const auto artifactStart = std::chrono::steady_clock::now();
  const bool contractHolds = rfsm::bench::printArtifact(smoke);
  const double artifactMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - artifactStart)
          .count();
  if (!jsonOut.empty() &&
      !rfsm::bench::writeBenchJson(jsonOut, argv[0], artifactMs))
    return 1;
  if (!contractHolds) return 1;
  if (smoke) return 0;  // regression gate: artifact only, no timings
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
