// A11 — Migration difficulty: do the structural features predict actual
// program length?  Sweeps random instances, comparing the cheap estimate
// with the EA planner's achieved |Z| and the bounds.
#include "common.hpp"

#include <cmath>

#include "core/bounds.hpp"
#include "core/difficulty.hpp"
#include "core/planners.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("A11", "Migration difficulty features vs achieved |Z|");

  Table table({"|S|", "|Td|", "near-reset", "unreachable", "chainable",
               "estimate", "EA |Z|", "|error|", "bounds"});
  double squaredError = 0;
  int rows = 0;
  for (const int states : {6, 10, 16}) {
    for (const int deltas : {3, 6, 10}) {
      const MigrationContext context = randomInstance(
          states, 2, deltas,
          static_cast<std::uint64_t>(states) * 97 + deltas);
      const DifficultyProfile profile = analyzeDifficulty(context);
      EvolutionConfig config;
      Rng rng(7);
      const int achieved =
          planEvolutionary(context, config, rng).program.length();
      const int error = std::abs(profile.estimatedLength() - achieved);
      squaredError += static_cast<double>(error) * error;
      ++rows;
      table.addRow({std::to_string(states), std::to_string(deltas),
                    std::to_string(profile.sourcesNearReset),
                    std::to_string(profile.sourcesUnreachable),
                    std::to_string(profile.chainablePairs),
                    std::to_string(profile.estimatedLength()),
                    std::to_string(achieved), std::to_string(error),
                    "[" + std::to_string(programLowerBound(context)) + ", " +
                        std::to_string(jsrUpperBound(context)) + "]"});
    }
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\nRMS estimate error: "
            << formatFixed(std::sqrt(squaredError / rows), 2)
            << " cycles.  The estimate costs one BFS; the EA costs\n"
               "thousands of decoded programs - useful as an admission\n"
               "filter before committing to a live migration window.\n";
}

void analyze(benchmark::State& state) {
  const MigrationContext context = randomInstance(16, 2, 10, 77);
  for (auto _ : state)
    benchmark::DoNotOptimize(analyzeDifficulty(context).estimatedLength());
}
BENCHMARK(analyze);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
