// A15 — Plan-cache sweep: the content-addressed plan-result cache across
// every consumer (in-process planRange at two job counts, an rfsmd server,
// the fabric, and the fabric's full degradation ladder), proving two
// contracts at once:
//
//   * correctness — warm (cache-hit) output is bit-identical to the cold
//     run and to a cache-disabled reference, for every rung and job count,
//     and the warm run actually hit (nonzero service.plan_cache_hits);
//   * poisoning defense — a deliberately tampered cache entry is detected
//     by the sampled quorum check, quarantined, recomputed, and never
//     served (the tampered cell's output still matches the reference and
//     service.plan_cache_poisoned goes up).
//
// The timing half records per-call latencies of cold (cache cleared each
// call) and warm (fully cached) planRange into bench.plan_cold/_warm
// histograms — the sidecar carries their p99s, and the binary exits 1
// unless warm p99 < cold p99.  Exit 1 likewise when any correctness or
// poisoning cell fails, so CI needs no output parsing.  `--smoke` shrinks
// the batch for the CI gate.
#include "common.hpp"

#include <unistd.h>

#include <thread>
#include <vector>

#include "service/fabric.hpp"
#include "service/plan_cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/histogram.hpp"
#include "util/ipc.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

using namespace std::chrono_literals;

std::string rfsmdPath() {
  if (const char* env = std::getenv("RFSM_RFSMD")) return env;
#ifdef RFSM_RFSMD_BUILD_PATH
  return RFSM_RFSMD_BUILD_PATH;
#else
  return "rfsmd";
#endif
}

std::string freshSocketPath(const char* tag) {
  return "/tmp/rfsm-a15-" + std::to_string(getpid()) + "-" + tag + ".sock";
}

service::BatchSpec sweepSpec(bool smoke) {
  service::BatchSpec spec;
  spec.stateCount = 10;
  spec.inputCount = 3;
  spec.outputCount = 2;
  spec.deltaCount = 8;
  spec.newStateCount = 1;
  spec.instanceCount = smoke ? 12 : 24;
  spec.seed = 0xA15;
  spec.planner = "greedy";
  return spec;
}

/// A real planner service on a fresh unix socket, serving until dropped.
struct RunningServer {
  std::string path;
  service::Server server;
  CancelToken stop;
  std::thread thread;

  explicit RunningServer(std::string socketPath)
      : path(std::move(socketPath)),
        server(options(path)),
        thread([this] { server.run(&stop); }) {}
  ~RunningServer() {
    stop.cancel();
    thread.join();
  }

  static service::ServerOptions options(const std::string& socketPath) {
    service::ServerOptions options;
    options.socketPath = socketPath;
    options.workerBinary = rfsmdPath();
    options.shardSize = 4;
    options.pool.workers = 2;
    return options;
  }
};

/// A correct remote replica for the poisoning cell.  It must NOT be an
/// in-process RunningServer: that would share this process's plan cache and
/// happily serve the poisoned entry back, letting the poison vouch for
/// itself.  Planning with kBypass models a separate process with its own
/// (empty) cache.
class HonestEndpoint {
 public:
  explicit HonestEndpoint(std::string path)
      : path_(std::move(path)),
        listen_(ipc::listenUnix(path_)),
        thread_([this] { serve(); }) {}

  ~HonestEndpoint() {
    stop_.cancel();
    thread_.join();
    unlink(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  void serve() {
    while (!stop_.expired()) {
      CancelToken slice(200ms);
      auto connection = ipc::acceptUnix(listen_.get(), &slice);
      if (!connection.has_value()) continue;
      try {
        handle(connection->get());
      } catch (const Error&) {
        // Client went away: next connection.
      }
    }
  }

  void handle(int fd) {
    std::string payload;
    CancelToken read(2000ms);
    if (ipc::readFrame(fd, payload, &read) != ipc::ReadStatus::kOk) return;
    const auto request = service::decodePlanRequest(payload);
    service::PlanResponse response;
    response.status = WorkResult::Status::kOk;
    response.programs =
        service::planRange(request.spec, request.rangeLo(), request.rangeHi(),
                           nullptr, 1, service::PlanCacheMode::kBypass);
    ipc::writeFrame(fd, service::encodePlanResponse(response));
  }

  std::string path_;
  ipc::Fd listen_;
  CancelToken stop_;
  std::thread thread_;
};

std::uint64_t hitsValue() {
  return metrics::counter(metrics::kServicePlanCacheHits).value();
}
std::uint64_t poisonedValue() {
  return metrics::counter(metrics::kServicePlanCachePoisoned).value();
}

struct CellResult {
  std::string status = "?";
  bool coldIdentical = false;  ///< cold output == cache-disabled reference
  bool warmIdentical = false;  ///< warm output == the same reference
  std::uint64_t warmHits = 0;  ///< plan-cache hits during the warm run
};

/// Runs `plan` cold (empty cache) and warm (immediately again) and checks
/// both against the disabled-cache reference.
template <typename PlanFn>
CellResult runColdWarm(const std::vector<std::string>& reference,
                       PlanFn&& plan) {
  CellResult cell;
  service::clearPlanCache();
  service::ClientResult cold = plan();
  cell.status = toString(cold.status);
  if (cold.status != WorkResult::Status::kOk) return cell;
  cell.coldIdentical = cold.programs == reference;
  const std::uint64_t before = hitsValue();
  service::ClientResult warm = plan();
  if (warm.status != WorkResult::Status::kOk) {
    cell.status = toString(warm.status);
    return cell;
  }
  cell.warmIdentical = warm.programs == reference;
  cell.warmHits = hitsValue() - before;
  return cell;
}

service::ClientResult planViaFabric(const service::BatchSpec& spec,
                                    std::vector<ipc::Endpoint> endpoints,
                                    std::ostream& err, int quorum = 1,
                                    std::uint64_t shardSize = 0) {
  service::FabricOptions options;
  options.endpoints = std::move(endpoints);
  options.backoffBase = 1ms;
  options.backoffCap = 10ms;
  options.quorum = quorum;
  options.shardSize = shardSize;
  options.breaker.failureThreshold = 1;
  service::Fabric fabric(std::move(options));
  return fabric.plan(spec, err);
}

bool printArtifact(bool smoke) {
  banner("A15", "Plan-cache sweep - warm/cold identity, eviction, poisoning");
  const int jobs = artifactJobs();
  const service::BatchSpec spec = sweepSpec(smoke);

  // The reference is computed before the cache is ever enabled: the bytes a
  // cache-free build would produce.
  service::configurePlanCache(0);
  const std::vector<std::string> reference =
      service::planRange(spec, 0, spec.instanceCount);
  service::configurePlanCache(4096);

  struct Row {
    std::string scenario;
    CellResult cell;
  };
  std::vector<Row> rows;
  std::ostringstream sink;  // degradation notices (asserted, not printed)

  rows.push_back({"local-jobs1", runColdWarm(reference, [&] {
                    return service::planLocal(spec, 0, 1);
                  })});
  rows.push_back({"local-jobsN", runColdWarm(reference, [&] {
                    return service::planLocal(spec, 0, jobs);
                  })});
  {  // one daemon, two requests: cross-worker sharing through the parent
    RunningServer server(freshSocketPath("server"));
    service::ClientOptions client;
    client.socketPath = server.path;
    client.jobs = jobs;
    rows.push_back({"server", runColdWarm(reference, [&] {
                      return service::planBatch(spec, client, sink);
                    })});
  }
  {  // healthy fabric rung: warm shards never cross the wire
    RunningServer a(freshSocketPath("fabric-a"));
    RunningServer b(freshSocketPath("fabric-b"));
    rows.push_back({"fabric", runColdWarm(reference, [&] {
                      return planViaFabric(
                          spec,
                          {ipc::parseEndpoint(a.path),
                           ipc::parseEndpoint(b.path)},
                          sink);
                    })});
  }
  {  // degraded rung: every endpoint dead, ladder lands on in-process
    rows.push_back({"fabric-degraded", runColdWarm(reference, [&] {
                      return planViaFabric(
                          spec,
                          {ipc::parseEndpoint(freshSocketPath("dead-a")),
                           ipc::parseEndpoint(freshSocketPath("dead-b"))},
                          sink);
                    })});
  }

  // Poisoning cell: warm the cache honestly, tamper one entry in place,
  // then replan via a quorum-2 fabric whose single shard is sampled — the
  // cached shard must be byte-verified, the poison quarantined and
  // recomputed, and the output still reference-identical.
  bool poisonDetected = false;
  bool poisonNeverServed = false;
  {
    service::clearPlanCache();
    HonestEndpoint honest(freshSocketPath("poison-honest"));
    std::ostringstream err;
    service::ClientResult seed = planViaFabric(
        spec, {ipc::parseEndpoint(honest.path())}, err);
    if (seed.status == WorkResult::Status::kOk) {
      service::planCacheStore(service::planCacheKey(spec, 0),
                              "# poisoned entry\n");
      const std::uint64_t before = poisonedValue();
      // One shard spanning the batch: shard 0 is always quorum-sampled, so
      // the cached (poisoned) shard is guaranteed byte-verified.
      service::ClientResult verified = planViaFabric(
          spec, {ipc::parseEndpoint(honest.path())}, err, /*quorum=*/2,
          /*shardSize=*/spec.instanceCount);
      poisonDetected = poisonedValue() > before;
      poisonNeverServed = verified.status == WorkResult::Status::kOk &&
                          verified.programs == reference;
    }
  }

  bool contractHolds = poisonDetected && poisonNeverServed;
  Table table({"scenario", "status", "cold identical", "warm identical",
               "warm hits > 0"});
  for (const Row& row : rows) {
    table.addRow({row.scenario, row.cell.status,
                  row.cell.coldIdentical ? "yes" : "NO",
                  row.cell.warmIdentical ? "yes" : "NO",
                  row.cell.warmHits > 0 ? "yes" : "NO"});
    if (!row.cell.coldIdentical || !row.cell.warmIdentical ||
        row.cell.warmHits == 0)
      contractHolds = false;
  }
  std::cout << "\nplan-cache consumers, cold vs warm (" << spec.instanceCount
            << " instances, jobs = " << jobs << "):\n"
            << table.toMarkdown();
  std::cout << "\ntampered-entry cell: detected "
            << (poisonDetected ? "yes" : "NO") << ", never served "
            << (poisonNeverServed ? "yes" : "NO") << "\n";

  // Timing: per-call cold (cache cleared) vs warm (fully cached) latency.
  // Histograms land in the sidecar; the p99 ordering is gated right here.
  metrics::Histogram& cold = metrics::histogram("bench.plan_cold");
  metrics::Histogram& warm = metrics::histogram("bench.plan_warm");
  const int samples = smoke ? 10 : 40;
  for (int k = 0; k < samples; ++k) {
    service::clearPlanCache();
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(service::planRange(spec, 0, spec.instanceCount,
                                                nullptr, jobs));
    cold.record(std::chrono::steady_clock::now() - start);
  }
  for (int k = 0; k < samples; ++k) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(service::planRange(spec, 0, spec.instanceCount,
                                                nullptr, jobs));
    warm.record(std::chrono::steady_clock::now() - start);
  }
  const double coldP99 =
      static_cast<double>(cold.quantile(0.99)) / 1e6;
  const double warmP99 =
      static_cast<double>(warm.quantile(0.99)) / 1e6;
  const bool warmFaster = warmP99 < coldP99;
  std::cout << "warm p99 below cold p99: " << (warmFaster ? "yes" : "NO")
            << "\n";
  if (!warmFaster) contractHolds = false;

  std::cout << "\nplan-cache contract: "
            << (contractHolds
                    ? "HOLDS (every rung bit-identical cold and warm, "
                      "poisoning detected and never served, warm p99 < "
                      "cold p99)"
                    : "VIOLATED - see the columns above")
            << "\n";
  printTelemetry(jobs, /*countersOnly=*/true);
  service::configurePlanCache(0);
  return contractHolds;
}

void planColdBench(benchmark::State& state) {
  const service::BatchSpec spec = sweepSpec(/*smoke=*/true);
  service::configurePlanCache(4096);
  for (auto _ : state) {
    service::clearPlanCache();
    benchmark::DoNotOptimize(service::planRange(spec, 0, spec.instanceCount));
  }
  service::configurePlanCache(0);
  state.SetLabel("cold cache");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.instanceCount));
}
BENCHMARK(planColdBench)->Unit(benchmark::kMillisecond);

void planWarmBench(benchmark::State& state) {
  const service::BatchSpec spec = sweepSpec(/*smoke=*/true);
  service::configurePlanCache(4096);
  benchmark::DoNotOptimize(service::planRange(spec, 0, spec.instanceCount));
  for (auto _ : state) {
    benchmark::DoNotOptimize(service::planRange(spec, 0, spec.instanceCount));
  }
  service::configurePlanCache(0);
  state.SetLabel("warm cache");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.instanceCount));
}
BENCHMARK(planWarmBench)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfsm::bench

int main(int argc, char** argv) {
  const std::string jsonOut = rfsm::bench::stripJsonOutFlag(argc, argv);
  bool smoke = false;
  int kept = 1;
  for (int k = 1; k < argc; ++k) {
    if (std::string(argv[k]) == "--smoke")
      smoke = true;
    else
      argv[kept++] = argv[k];
  }
  argc = kept;
  const auto artifactStart = std::chrono::steady_clock::now();
  const bool contractHolds = rfsm::bench::printArtifact(smoke);
  const double artifactMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - artifactStart)
          .count();
  if (!jsonOut.empty() &&
      !rfsm::bench::writeBenchJson(jsonOut, argv[0], artifactMs))
    return 1;
  if (!contractHolds) return 1;
  if (smoke) return 0;  // regression gate: artifact only, no timings
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
