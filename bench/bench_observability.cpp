// A17 — Observability sweep: the cost and the fidelity of the tracing and
// live-telemetry plane, proving three contracts at once:
//
//   * tracing never steers — planner output for a fixed batch is
//     bit-identical with tracing off and on, at jobs=1 and jobs=N (the
//     RFSM_JOBS sweep CI runs), and a distributed context adopted around
//     the batch changes nothing either;
//   * overhead is bounded and reported — per-call latencies of the traced
//     and untraced runs land in bench.obs_traced_on/_off histograms (the
//     sidecar carries both, so tools/bench_diff.py can gate the off-run's
//     p99 against the noise floor across commits), and the artifact gates
//     the traced/untraced p50 ratio right here;
//   * the plane itself behaves — the span ring stays bounded under
//     overflow (drops counted, capacity respected) and a RollingHistogram
//     fed a known latency sweep reports ordered, in-range percentiles.
//
// `--smoke` shrinks the batch for the CI gate.  Exit 1 on any violation,
// so CI needs no output parsing.
#include "common.hpp"

#include <algorithm>
#include <vector>

#include "service/protocol.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace rfsm::bench {
namespace {

service::BatchSpec sweepSpec(bool smoke) {
  service::BatchSpec spec;
  spec.stateCount = 10;
  spec.inputCount = 3;
  spec.outputCount = 2;
  spec.deltaCount = 8;
  spec.newStateCount = 1;
  spec.instanceCount = smoke ? 8 : 16;
  spec.seed = 0xA17;
  spec.planner = "greedy";
  return spec;
}

/// RAII: forces the tracer on or off and restores the previous state, so
/// the bench leaves the process the way the environment configured it.
struct TracerState {
  explicit TracerState(bool on) : previous(trace::enabled()) {
    trace::setEnabled(on);
  }
  ~TracerState() { trace::setEnabled(previous); }
  bool previous;
};

std::vector<std::string> planOnce(const service::BatchSpec& spec, int jobs,
                                  bool traced, metrics::Histogram* latency) {
  TracerState tracer(traced);
  // A traced run is the full distributed shape: a sampled root context
  // adopted, a root span installed, children parenting under it — exactly
  // what `rfsmc plan` sets up.
  std::optional<trace::ContextScope> scope;
  std::optional<trace::ScopedSpan> root;
  if (traced) {
    scope.emplace(trace::beginTrace());
    root.emplace("bench.observability", "bench");
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::string> programs =
      service::planRange(spec, 0, spec.instanceCount, nullptr, jobs);
  if (latency != nullptr)
    latency->record(std::chrono::steady_clock::now() - start);
  return programs;
}

/// The ring must stay bounded under overflow: more spans than capacity
/// leaves at most `capacity` buffered and a nonzero drop count.
bool ringStaysBounded() {
  TracerState tracer(true);
  const std::size_t savedCapacity = trace::capacity();
  trace::setCapacity(64);
  for (int k = 0; k < 300; ++k)
    trace::instant("bench.obs_overflow", "bench");
  const bool bounded = trace::eventCount() <= 64 && trace::droppedCount() > 0;
  trace::setCapacity(savedCapacity);  // also clears the ring
  return bounded;
}

/// Feeds a RollingHistogram 1..N milliseconds and checks the window
/// reports them: full count, ordered percentiles, values inside the swept
/// range.  (tests/ covers rotation and merge equivalence; this is the
/// live-plane end of the contract on a real registry entry.)
bool rollingWindowReports(int samples) {
  metrics::RollingHistogram& window = metrics::rolling("bench.obs_window");
  for (int k = 1; k <= samples; ++k)
    window.record(std::chrono::milliseconds(k));
  const auto stats = window.stats();
  const auto ms = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1e6;
  };
  const bool ok = stats.count == static_cast<std::uint64_t>(samples) &&
                  stats.p50 <= stats.p90 && stats.p90 <= stats.p99 &&
                  ms(stats.p50) >= 1.0 && ms(stats.p99) <= 2.0 * samples;
  std::cout << "rolling window: count " << stats.count << ", p50 "
            << ms(stats.p50) << " ms, p90 " << ms(stats.p90) << " ms, p99 "
            << ms(stats.p99) << " ms over " << window.window().count()
            << " ms\n";
  return ok;
}

bool printArtifact(bool smoke) {
  banner("A17", "Observability sweep - tracing overhead and fidelity");
  const int jobs = artifactJobs();
  const service::BatchSpec spec = sweepSpec(smoke);

  // Identity: the untraced jobs=1 run is the reference everything else
  // must match byte for byte.
  const std::vector<std::string> reference =
      planOnce(spec, 1, /*traced=*/false, nullptr);
  struct Cell {
    const char* scenario;
    int jobs;
    bool traced;
  };
  const Cell cells[] = {{"untraced-jobsN", jobs, false},
                        {"traced-jobs1", 1, true},
                        {"traced-jobsN", jobs, true}};
  bool identical = true;
  Table table({"scenario", "jobs", "tracing", "identical to reference"});
  table.addRow({"untraced-jobs1", "1", "off", "(reference)"});
  for (const Cell& cell : cells) {
    const bool match =
        planOnce(spec, cell.jobs, cell.traced, nullptr) == reference;
    identical = identical && match;
    table.addRow({cell.scenario, std::to_string(cell.jobs),
                  cell.traced ? "on" : "off", match ? "yes" : "NO"});
  }
  std::cout << "\ntracing is inert (" << spec.instanceCount
            << " instances):\n"
            << table.toMarkdown();

  // Overhead: interleave untraced and traced calls so drift (turbo,
  // neighbors) hits both histograms alike.  The sidecar carries both; CI
  // diffs the off-run's p99 against past commits (the noise floor), and
  // the p50 ratio — the robust center, not the tail — is gated here.
  metrics::Histogram& off = metrics::histogram("bench.obs_traced_off");
  metrics::Histogram& on = metrics::histogram("bench.obs_traced_on");
  // Not shrunk in smoke mode: each call is sub-ms and the p99 of a small
  // sample set is its max, which flaps the bench_diff.py rerun gate.
  const int samples = 30;
  for (int k = 0; k < samples; ++k) {
    benchmark::DoNotOptimize(planOnce(spec, jobs, /*traced=*/false, &off));
    benchmark::DoNotOptimize(planOnce(spec, jobs, /*traced=*/true, &on));
    trace::clear();  // each traced call re-fills from an empty ring
  }
  const double offP50 = static_cast<double>(off.quantile(0.50)) / 1e6;
  const double offP99 = static_cast<double>(off.quantile(0.99)) / 1e6;
  const double onP50 = static_cast<double>(on.quantile(0.50)) / 1e6;
  const double onP99 = static_cast<double>(on.quantile(0.99)) / 1e6;
  const double ratio = offP50 > 0.0 ? onP50 / offP50 : 0.0;
  // Tracing costs one relaxed load per disabled span and a short
  // mutex-guarded append per enabled one; 2x p50 is far above anything it
  // can legitimately add, while staying out of CI-runner jitter on the
  // sub-100us smoke calls.
  const bool overheadBounded = ratio > 0.0 && ratio < 2.0;
  std::cout << "\ntracing overhead (" << samples << " interleaved calls, jobs = "
            << jobs << "):\n"
            << "  off: p50 " << offP50 << " ms, p99 " << offP99 << " ms\n"
            << "  on:  p50 " << onP50 << " ms, p99 " << onP99 << " ms\n"
            << "  on/off p50 ratio " << ratio << " (bound 2.0): "
            << (overheadBounded ? "ok" : "EXCEEDED") << "\n";
  {
    std::ostringstream extra;
    extra << "\"overhead\": {\"off_p50_ms\": " << offP50
          << ", \"off_p99_ms\": " << offP99 << ", \"on_p50_ms\": " << onP50
          << ", \"on_p99_ms\": " << onP99 << ", \"p50_ratio\": " << ratio
          << "}";
    sidecarExtra() = extra.str();
  }

  const bool bounded = ringStaysBounded();
  std::cout << "span ring bounded under overflow: " << (bounded ? "yes" : "NO")
            << "\n";
  const bool rolling = rollingWindowReports(smoke ? 20 : 50);

  const bool contractHolds = identical && overheadBounded && bounded && rolling;
  std::cout << "\nobservability contract: "
            << (contractHolds
                    ? "HOLDS (bit-identical traced/untraced at every job "
                      "count, overhead bounded, ring bounded, window "
                      "percentiles sane)"
                    : "VIOLATED - see above")
            << "\n";
  printTelemetry(jobs, /*countersOnly=*/true);
  return contractHolds;
}

void planUntracedBench(benchmark::State& state) {
  const service::BatchSpec spec = sweepSpec(/*smoke=*/true);
  for (auto _ : state)
    benchmark::DoNotOptimize(planOnce(spec, 1, /*traced=*/false, nullptr));
  state.SetLabel("tracing off");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.instanceCount));
}
BENCHMARK(planUntracedBench)->Unit(benchmark::kMillisecond);

void planTracedBench(benchmark::State& state) {
  const service::BatchSpec spec = sweepSpec(/*smoke=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planOnce(spec, 1, /*traced=*/true, nullptr));
    trace::clear();
  }
  state.SetLabel("tracing on");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.instanceCount));
}
BENCHMARK(planTracedBench)->Unit(benchmark::kMillisecond);

void spanRecordBench(benchmark::State& state) {
  TracerState tracer(state.range(0) != 0);
  for (auto _ : state) {
    trace::ScopedSpan span("bench.obs_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
  if (trace::enabled()) trace::clear();
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(spanRecordBench)->Arg(0)->Arg(1);

}  // namespace
}  // namespace rfsm::bench

int main(int argc, char** argv) {
  const std::string jsonOut = rfsm::bench::stripJsonOutFlag(argc, argv);
  bool smoke = false;
  int kept = 1;
  for (int k = 1; k < argc; ++k) {
    if (std::string(argv[k]) == "--smoke")
      smoke = true;
    else
      argv[kept++] = argv[k];
  }
  argc = kept;
  const auto artifactStart = std::chrono::steady_clock::now();
  const bool contractHolds = rfsm::bench::printArtifact(smoke);
  const double artifactMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - artifactStart)
          .count();
  if (!jsonOut.empty() &&
      !rfsm::bench::writeBenchJson(jsonOut, argv[0], artifactMs))
    return 1;
  if (!contractHolds) return 1;
  if (smoke) return 0;  // regression gate: artifact only, no timings
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
