// A18 — Deterministic chaos sweep: the full service topology under the
// seeded disk/network fault plane (util/chaos.hpp), proving the robustness
// contract end to end.  Four cells:
//
//  * a net-chaos fabric grid — a real service::Server (spawning rfsmd
//    workers) behind a fabric client, with the wire fault plane armed at
//    (seed x profile); every cell must answer OK with programs
//    bit-identical to the clean in-process planRange reference, and every
//    injection the plane journaled must be visible in
//    service.chaos_net_faults (faults are never absorbed silently);
//  * a replay-determinism cell — the same seeded schedule is driven twice
//    over a single-threaded frame workload; the plane's journal digests
//    must match exactly (same seed = same schedule), and a different seed
//    must diverge;
//  * a corrupt-frame cell — with bit corruption forced on every frame, the
//    CRC32C trailer must reject 100% of them as typed FrameErrors
//    (service.frames_rejected counts each); a corrupted payload must never
//    be returned to the caller;
//  * a disk-chaos kill/restart cell — a real rfsmd runs with
//    `--chaos <seed>:disk-storm`, a session streams mutations through
//    journal-append failures (each refused un-acked and retried), the
//    daemon is SIGKILLed mid-stream and restarted over the same state dir
//    under the same chaos spec; the resumed transcript must be
//    byte-identical to an uninterrupted SessionEngine reference, no acked
//    mutation may be lost, retries must stay bounded, and the daemon's
//    scraped service.chaos_disk_faults must show the injections landed.
//
// The binary exits 1 when any cell breaks its contract.  `--smoke`
// shrinks the grid for the CI regression gate.
#include "common.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "service/client.hpp"
#include "service/fabric.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "util/chaos.hpp"
#include "util/ipc.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

using namespace std::chrono_literals;

std::string rfsmdPath() {
  if (const char* env = std::getenv("RFSM_RFSMD")) return env;
#ifdef RFSM_RFSMD_BUILD_PATH
  return RFSM_RFSMD_BUILD_PATH;
#else
  return "rfsmd";
#endif
}

std::string freshSocketPath(const std::string& tag) {
  return "/tmp/rfsm-a18-" + std::to_string(getpid()) + "-" + tag + ".sock";
}

std::uint64_t counterValue(const char* name) {
  return metrics::counter(name).value();
}

struct SocketPair {
  ipc::Fd a;
  ipc::Fd b;
  SocketPair() {
    int fds[2] = {-1, -1};
    RFSM_CHECK(socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
               "socketpair failed");
    a = ipc::Fd(fds[0]);
    b = ipc::Fd(fds[1]);
  }
};

// --- Net-chaos fabric grid ------------------------------------------------

service::BatchSpec sweepSpec(bool smoke) {
  service::BatchSpec spec;
  spec.stateCount = 8;
  spec.inputCount = 2;
  spec.outputCount = 2;
  spec.deltaCount = 6;
  spec.newStateCount = 1;
  spec.instanceCount = smoke ? 8 : 16;
  spec.seed = 0xA18;
  spec.planner = "greedy";
  return spec;
}

/// A real planner service on a fresh unix socket, serving until dropped.
struct RunningServer {
  std::string path;
  service::Server server;
  CancelToken stop;
  std::thread thread;

  explicit RunningServer(std::string socketPath)
      : path(std::move(socketPath)),
        server(options(path)),
        thread([this] { server.run(&stop); }) {}
  ~RunningServer() {
    stop.cancel();
    thread.join();
  }

  static service::ServerOptions options(const std::string& socketPath) {
    service::ServerOptions options;
    options.socketPath = socketPath;
    options.workerBinary = rfsmdPath();
    options.shardSize = 4;
    options.pool.workers = 2;
    return options;
  }
};

struct NetCell {
  std::uint64_t seed = 0;
  std::string profile;
  std::string status;
  bool degraded = false;
  bool bitIdentical = false;
  std::uint64_t injected = 0;       ///< the plane's own injection count
  std::uint64_t counterDelta = 0;   ///< service.chaos_net_faults delta
  bool accounted = false;           ///< counterDelta == injected
  double wallMs = 0.0;
};

NetCell runNetCell(std::uint64_t seed, const std::string& profileName,
                   const service::BatchSpec& spec,
                   const std::vector<std::string>& reference) {
  NetCell cell;
  cell.seed = seed;
  cell.profile = profileName;
  const std::uint64_t before = counterValue(metrics::kServiceChaosNetFaults);

  // The server starts clean (worker prefork and warm-up undisturbed) so
  // that everything the cell observes is the armed plane's doing; workers
  // are separate processes without RFSM_CHAOS, so the server side of each
  // worker channel and both sides of the client channel take the faults.
  RunningServer server(
      freshSocketPath(std::to_string(seed) + "-" + profileName));
  service::FabricOptions options;
  options.endpoints = {ipc::parseEndpoint(server.path)};
  options.jobs = 2;
  options.backoffBase = 1ms;
  options.backoffCap = 10ms;
  service::Fabric fabric(std::move(options));

  chaos::plane().arm(seed, *chaos::profileByName(profileName));
  std::ostringstream err;
  const auto start = std::chrono::steady_clock::now();
  const service::ClientResult result = fabric.plan(spec, err);
  cell.wallMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  chaos::plane().disarm();

  cell.status = toString(result.status);
  cell.degraded = result.degraded;
  cell.bitIdentical = result.status == WorkResult::Status::kOk &&
                      result.programs == reference;
  cell.injected = chaos::plane().injectedNet();
  cell.counterDelta = counterValue(metrics::kServiceChaosNetFaults) - before;
  cell.accounted = cell.counterDelta == cell.injected;
  return cell;
}

// --- Replay determinism ---------------------------------------------------

struct ScheduleRun {
  std::uint64_t digest = 0;
  std::uint64_t injected = 0;
};

/// One single-threaded seeded frame workload: the consultation sequence is
/// a pure function of the injected faults, which are a pure function of
/// the seed — so the journal digest must reproduce exactly.
ScheduleRun runSchedule(std::uint64_t seed, int rounds) {
  chaos::plane().arm(seed, *chaos::profileByName("net-storm"));
  for (int round = 0; round < rounds; ++round) {
    SocketPair pair;
    const std::string payload =
        "chaos-determinism-" + std::to_string(round);
    try {
      ipc::writeFrame(pair.a.get(), payload);
      std::string read;
      (void)ipc::readFrame(pair.b.get(), read);
    } catch (const ipc::IpcError&) {
      // Injected reset / partial / corruption — part of the schedule.
    }
  }
  chaos::plane().disarm();
  return {chaos::plane().journalDigest(), chaos::plane().injectedNet()};
}

// --- Corrupt-frame cell ---------------------------------------------------

struct CorruptCell {
  int frames = 0;
  int rejected = 0;            ///< typed FrameError rejections
  int poisoned = 0;            ///< corrupted payloads returned as good
  std::uint64_t counterDelta = 0;  ///< service.frames_rejected delta
};

CorruptCell runCorruptCell(int frames) {
  CorruptCell cell;
  cell.frames = frames;
  const std::uint64_t before = counterValue(metrics::kServiceFramesRejected);
  chaos::Profile always;
  always.name = "corrupt-always";
  always.corruptProbability = 1.0;
  chaos::plane().arm(0xC0DE, always);
  for (int k = 0; k < frames; ++k) {
    SocketPair pair;
    const std::string payload = "poison-candidate-" + std::to_string(k);
    ipc::writeFrame(pair.a.get(), payload);  // ships with one bit flipped
    std::string read;
    try {
      (void)ipc::readFrame(pair.b.get(), read);
      if (read != payload) ++cell.poisoned;  // corruption served as truth
    } catch (const ipc::FrameError&) {
      ++cell.rejected;
    }
  }
  chaos::plane().disarm();
  cell.counterDelta = counterValue(metrics::kServiceFramesRejected) - before;
  return cell;
}

// --- Disk-chaos kill/restart/resume cell ----------------------------------

service::SessionConfig killConfig() {
  service::SessionConfig config;
  config.tenant = "chaos";
  config.name = "stream";
  config.stateCount = 8;
  config.inputCount = 2;
  config.outputCount = 2;
  config.seed = 0xA18;
  config.planner = "jsr";
  return config;
}

service::SessionOpenRequest openRequestFor(
    const service::SessionConfig& config) {
  service::SessionOpenRequest request;
  request.tenant = config.tenant;
  request.name = config.name;
  request.planner = config.planner;
  request.stateCount = config.stateCount;
  request.inputCount = config.inputCount;
  request.outputCount = config.outputCount;
  request.seed = config.seed;
  return request;
}

/// The shared mutation schedule: odd seqs defer (compacted into the next
/// even flush), the final seq always flushes.
service::MutationRecord scheduledMut(std::uint64_t k, std::uint64_t total) {
  service::MutationRecord rec;
  rec.seq = k;
  rec.deltaCount = 3;
  rec.mutationSeed = 0xA18000 + k;
  rec.defer = k % 2 == 1 && k != total;
  return rec;
}

struct Daemon {
  pid_t pid = -1;

  bool start(const std::string& socketPath, const std::string& stateDir,
             const std::string& chaosSpec) {
    pid = fork();
    if (pid == -1) return false;
    if (pid == 0) {
      const std::string binary = rfsmdPath();
      ::execl(binary.c_str(), binary.c_str(), "--socket", socketPath.c_str(),
              "--state-dir", stateDir.c_str(), "--workers", "1",
              "--snapshot-every", "2", "--chaos", chaosSpec.c_str(),
              static_cast<char*>(nullptr));
      _exit(127);
    }
    for (int spin = 0; spin < 200; ++spin) {
      if (::access(socketPath.c_str(), F_OK) == 0) return true;
      std::this_thread::sleep_for(25ms);
    }
    return false;
  }

  void sigkill() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    pid = -1;
  }

  ~Daemon() { sigkill(); }
};

/// The daemon's service.chaos_disk_faults value, scraped over the stats
/// frame (0 when the scrape fails — the caller treats that as undetected).
std::uint64_t scrapeDiskFaults(const std::string& socketPath) {
  try {
    const auto reply = service::exchangeEndpoint(
        ipc::parseEndpoint(socketPath), service::encodeStatsRequest(), 5000);
    if (!reply.has_value()) return 0;
    const service::StatsResponse stats =
        service::decodeStatsResponse(*reply);
    for (const auto& counter : stats.metrics.counters)
      if (counter.name == metrics::kServiceChaosDiskFaults)
        return counter.value;
  } catch (const Error&) {
  }
  return 0;
}

struct KillCell {
  bool ok = false;
  bool byteIdentical = false;
  bool ackedPreserved = false;   ///< resume >= highest pre-kill acked seq
  bool retriesBounded = false;
  bool faultsDetected = false;   ///< daemon-side chaos_disk_faults > 0
  std::uint64_t resumedAt = 0;
  std::uint64_t retries = 0;     ///< refused-unacked resends absorbed
  std::uint64_t diskFaults = 0;  ///< scraped across both daemon lives
  std::string detail;
};

KillCell runKillCell(bool smoke) {
  KillCell cell;
  const std::uint64_t kMutations = smoke ? 8 : 12;
  const std::uint64_t kKillAfter = kMutations / 2;
  // Per-seq resend budget: disk-storm refuses roughly a third of appends,
  // so a handful of attempts converges; 80 is an order of magnitude of
  // headroom while still proving boundedness.
  const std::uint64_t kMaxAttempts = 80;
  const std::string chaosSpec = "29:disk-storm";
  const service::SessionConfig config = killConfig();

  std::vector<std::pair<std::uint64_t, std::string>> reference;
  {
    service::SessionEngine engine(config);
    for (std::uint64_t k = 1; k <= kMutations; ++k) {
      const service::PlanOutcome outcome =
          engine.apply(scheduledMut(k, kMutations));
      if (outcome.planned) reference.emplace_back(k, outcome.program);
    }
  }

  char dirTemplate[] = "/tmp/rfsm-a18-XXXXXX";
  const char* stateDir = mkdtemp(dirTemplate);
  if (stateDir == nullptr) {
    cell.detail = "mkdtemp failed";
    return cell;
  }
  const std::string socketPath = std::string(stateDir) + "/rfsmd.sock";

  std::vector<std::pair<std::uint64_t, std::string>> transcript;
  std::uint64_t maxAcked = 0;

  // Streams [from, to]; an injected journal-append failure answers kFailed
  // with the mutation refused un-acked, so the same seq is resent until it
  // lands (RESOURCE_EXHAUSTED honours the retry hint).
  const auto streamRange = [&](service::SessionStream& stream,
                               std::uint64_t from, std::uint64_t to) -> bool {
    for (std::uint64_t k = from; k <= to; ++k) {
      const service::MutationRecord rec = scheduledMut(k, kMutations);
      service::SessionMutateRequest request;
      request.tenant = config.tenant;
      request.name = config.name;
      request.seq = rec.seq;
      request.deltaCount = rec.deltaCount;
      request.mutationSeed = rec.mutationSeed;
      request.defer = rec.defer;
      std::uint64_t attempts = 0;
      while (true) {
        if (++attempts > kMaxAttempts) {
          cell.detail = "retry budget exhausted at seq " +
                        std::to_string(k);
          return false;
        }
        const auto response = stream.mutate(request);
        if (response.status == service::SessionStatus::kOk ||
            response.status == service::SessionStatus::kAccepted) {
          if (response.status == service::SessionStatus::kOk)
            transcript.emplace_back(k, response.program);
          maxAcked = std::max(maxAcked, k);
          break;
        }
        ++cell.retries;
        if (response.status ==
            service::SessionStatus::kResourceExhausted) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::max<std::int64_t>(1, response.retryAfterMs)));
          continue;
        }
        if (response.status == service::SessionStatus::kFailed) {
          std::this_thread::sleep_for(2ms);
          continue;  // refused un-acked (journal append died); resend
        }
        cell.detail = "unexpected status " + std::string(toString(
                          response.status)) + " at seq " + std::to_string(k);
        return false;
      }
    }
    return true;
  };

  // The open persists session state too, so disk-storm can refuse it the
  // same way it refuses appends — resend under the same bounded budget.
  const auto openWithRetry =
      [&](service::SessionStream& stream) -> service::SessionOpenResponse {
    service::SessionOpenResponse response;
    for (std::uint64_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
      response = stream.open(openRequestFor(config));
      if (response.status == service::SessionStatus::kOk) return response;
      ++cell.retries;
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::max<std::int64_t>(2, response.retryAfterMs)));
    }
    return response;
  };

  service::SessionStream::Options streamOptions;
  streamOptions.endpoint = ipc::parseEndpoint(socketPath);
  streamOptions.retryFor = 15s;

  Daemon daemon;
  if (!daemon.start(socketPath, stateDir, chaosSpec)) {
    cell.detail = "rfsmd did not start";
    return cell;
  }
  try {
    service::SessionStream stream(streamOptions);
    if (openWithRetry(stream).status != service::SessionStatus::kOk) {
      cell.detail = "open failed";
      return cell;
    }
    if (!streamRange(stream, 1, kKillAfter)) return cell;
    cell.diskFaults += scrapeDiskFaults(socketPath);
  } catch (const Error& error) {
    cell.detail = error.what();
    return cell;
  }
  daemon.sigkill();

  Daemon restarted;
  if (!restarted.start(socketPath, stateDir, chaosSpec)) {
    cell.detail = "rfsmd did not restart";
    return cell;
  }
  try {
    service::SessionStream stream(streamOptions);
    const auto resumed = openWithRetry(stream);
    if (resumed.status != service::SessionStatus::kOk) {
      cell.detail = "resume open failed";
      return cell;
    }
    cell.resumedAt = resumed.lastApplied;
    cell.ackedPreserved = resumed.lastApplied >= maxAcked;
    if (!cell.ackedPreserved) {
      cell.detail = "acked seq " + std::to_string(maxAcked) +
                    " lost (resumed at " + std::to_string(resumed.lastApplied) +
                    ")";
      return cell;
    }
    if (!streamRange(stream, resumed.lastApplied + 1, kMutations))
      return cell;
    cell.diskFaults += scrapeDiskFaults(socketPath);
  } catch (const Error& error) {
    cell.detail = error.what();
    return cell;
  }

  cell.ok = true;
  cell.byteIdentical = transcript == reference;
  if (!cell.byteIdentical) cell.detail = "transcript diverged";
  cell.retriesBounded = true;  // streamRange enforced kMaxAttempts
  cell.faultsDetected = cell.diskFaults > 0;
  if (cell.faultsDetected == false && cell.detail.empty())
    cell.detail = "no injected disk fault surfaced in counters";
  return cell;
}

// --- Artifact -------------------------------------------------------------

std::string formatMs(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

std::string hex64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool printArtifact(bool smoke) {
  banner("A18", "Chaos sweep - seeded disk/wire faults vs invariants");
  const service::BatchSpec spec = sweepSpec(smoke);
  chaos::plane().disarm();  // the reference is the clean run, by definition
  const std::vector<std::string> reference =
      service::planRange(spec, 0, spec.instanceCount);

  // Net-chaos fabric grid.
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{7}
            : std::vector<std::uint64_t>{7, 11};
  const std::vector<std::string> profiles = {"net-light", "net-storm"};
  bool netHolds = true;
  Table netTable({"seed", "profile", "status", "degraded", "bit-identical",
                  "injected", "counted", "wall ms"});
  for (const std::uint64_t seed : seeds)
    for (const std::string& profile : profiles) {
      const NetCell cell = runNetCell(seed, profile, spec, reference);
      // net-light may legitimately schedule zero faults for a short run;
      // net-storm disturbing nothing means the hooks are dead.
      const bool mustInject = profile == "net-storm";
      const bool holds = cell.bitIdentical && cell.accounted &&
                         (!mustInject || cell.injected > 0);
      netHolds = netHolds && holds;
      netTable.addRow({std::to_string(seed), profile, cell.status,
                       cell.degraded ? "yes" : "no",
                       cell.bitIdentical ? "YES" : "NO",
                       std::to_string(cell.injected),
                       cell.accounted ? "all" : "MISSING",
                       formatMs(cell.wallMs)});
    }
  std::cout << "\nnet-chaos fabric grid (real server + rfsmd workers, one "
               "fabric client;\nreference = clean in-process planRange):\n"
            << netTable.toMarkdown();

  // Replay determinism.
  const int rounds = smoke ? 24 : 48;
  const ScheduleRun first = runSchedule(101, rounds);
  const ScheduleRun second = runSchedule(101, rounds);
  const ScheduleRun other = runSchedule(202, rounds);
  const bool replayHolds = first.digest == second.digest &&
                           first.injected == second.injected &&
                           first.digest != other.digest;
  std::cout << "\nreplay-determinism cell (net-storm, " << rounds
            << " single-threaded frames):\n"
            << "  seed 101 run 1: digest " << hex64(first.digest) << ", "
            << first.injected << " injected\n"
            << "  seed 101 run 2: digest " << hex64(second.digest) << ", "
            << second.injected << " injected\n"
            << "  seed 202:       digest " << hex64(other.digest) << "\n"
            << "  verdict: "
            << (replayHolds ? "SCHEDULE REPLAYS EXACTLY"
                            : "SCHEDULE DIVERGED")
            << "\n";

  // Corrupt-frame cell.
  const CorruptCell corrupt = runCorruptCell(smoke ? 12 : 24);
  const bool corruptHolds = corrupt.rejected == corrupt.frames &&
                            corrupt.poisoned == 0 &&
                            corrupt.counterDelta ==
                                static_cast<std::uint64_t>(corrupt.frames);
  std::cout << "\ncorrupt-frame cell (bit flip forced on every frame):\n"
            << "  " << corrupt.rejected << "/" << corrupt.frames
            << " rejected as FrameError, " << corrupt.poisoned
            << " corrupted payloads served, frames_rejected +"
            << corrupt.counterDelta << "\n"
            << "  verdict: "
            << (corruptHolds ? "NO CORRUPTION SERVED" : "CORRUPTION LEAKED")
            << "\n";

  // Disk-chaos kill/restart cell.
  const KillCell kill = runKillCell(smoke);
  const bool killHolds = kill.ok && kill.byteIdentical &&
                         kill.ackedPreserved && kill.retriesBounded &&
                         kill.faultsDetected;
  std::cout << "\ndisk-chaos kill/restart cell (rfsmd --chaos 29:disk-storm, "
               "SIGKILL mid-stream):\n"
            << "  resumed at seq " << kill.resumedAt << ", " << kill.retries
            << " refused-unacked resends, " << kill.diskFaults
            << " injected disk faults scraped\n"
            << "  transcript "
            << (kill.byteIdentical
                    ? "BYTE-IDENTICAL to uninterrupted reference"
                    : std::string("DIVERGED (") +
                          (kill.detail.empty() ? "?" : kill.detail) + ")")
            << "\n";

  const bool holds = netHolds && replayHolds && corruptHolds && killHolds;
  std::cout << "\ninvariant sweep: "
            << (holds ? "ALL CELLS HOLD" : "CONTRACT BROKEN") << "\n";

  // Deterministic replay evidence for the sidecar: digests and the
  // corrupt-cell tally are pure functions of seed + workload, so two CI
  // runs of the same binary must publish identical values.
  std::ostringstream extra;
  extra << "\"chaos\": {\n"
        << "    \"replay_digest\": \"" << hex64(first.digest) << "\",\n"
        << "    \"replay_injected\": " << first.injected << ",\n"
        << "    \"frames_rejected\": " << corrupt.counterDelta << ",\n"
        << "    \"net_cells_bit_identical\": " << (netHolds ? "true" : "false")
        << ",\n"
        << "    \"kill_cell_byte_identical\": "
        << (kill.byteIdentical ? "true" : "false") << "\n"
        << "  }";
  sidecarExtra() = extra.str();

  printTelemetry(artifactJobs());
  // Chaos disturbs every latency on purpose (a 10% stall rate moves p99 by
  // integer multiples), so the gated histogram/timer sections would flake
  // any tools/bench_diff.py comparison of two honest runs.  The sidecar
  // keeps the counters and the deterministic "chaos" section only.
  lastSnapshot().timers.clear();
  lastSnapshot().histograms.clear();
  lastSnapshot().rolling.clear();
  lastSnapshot().gauges.clear();
  return holds;
}

// --- Timing loops ---------------------------------------------------------

void frameExchangeBench(benchmark::State& state) {
  // range(0): 0 = plane disarmed (the zero-cost claim), 1 = armed with the
  // all-zero "off" profile (the enabled-but-silent draw cost).
  if (state.range(0) == 1)
    chaos::plane().arm(1, *chaos::profileByName("off"));
  else
    chaos::plane().disarm();
  SocketPair pair;
  const std::string payload(256, 'x');
  std::string read;
  for (auto _ : state) {
    ipc::writeFrame(pair.a.get(), payload);
    (void)ipc::readFrame(pair.b.get(), read);
    benchmark::DoNotOptimize(read);
  }
  chaos::plane().disarm();
  state.SetLabel(state.range(0) == 1 ? "plane armed, profile off"
                                     : "plane disarmed");
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(frameExchangeBench)->Arg(0)->Arg(1);

void crc32cBench(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'y');
  for (auto _ : state)
    benchmark::DoNotOptimize(ipc::crc32c(payload));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(crc32cBench)->Arg(64)->Arg(4096)->Arg(1 << 20);

}  // namespace
}  // namespace rfsm::bench

int main(int argc, char** argv) {
  const std::string jsonOut = rfsm::bench::stripJsonOutFlag(argc, argv);
  bool smoke = false;
  int kept = 1;
  for (int k = 1; k < argc; ++k) {
    if (std::string(argv[k]) == "--smoke")
      smoke = true;
    else
      argv[kept++] = argv[k];
  }
  argc = kept;
  const auto artifactStart = std::chrono::steady_clock::now();
  const bool contractHolds = rfsm::bench::printArtifact(smoke);
  const double artifactMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - artifactStart)
          .count();
  if (!jsonOut.empty() &&
      !rfsm::bench::writeBenchJson(jsonOut, argv[0], artifactMs))
    return 1;
  if (!contractHolds) return 1;
  if (smoke) return 0;  // regression gate: artifact only, no timings
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
