// E8 — Theorems 4.2 and 4.3: the upper bound 3(|Td|+1) (hit exactly by the
// JSR heuristic modulo the temp-cell fold) and the strict lower bound |Td|.
// Sweeps a matrix of random instances and reports slack statistics.
#include "common.hpp"

#include <algorithm>
#include <limits>

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("E8", "Thm. 4.2 / Thm. 4.3 - bound verification sweep");

  Table table({"|S|", "|Td|", "trials", "JSR == formula", "JSR <= 3(|Td|+1)",
               "best planner |Z|", "lower bound |Td|", "min slack"});
  for (const int states : {8, 16, 32}) {
    for (const int deltas : {3, 8, 16}) {
      bool formulaOk = true, upperOk = true;
      int minSlack = std::numeric_limits<int>::max();
      int bestSeen = std::numeric_limits<int>::max();
      constexpr int kTrials = 8;
      for (int trial = 0; trial < kTrials; ++trial) {
        const MigrationContext context = randomInstance(
            states, 2, deltas,
            static_cast<std::uint64_t>(states) * 100 + deltas * 10 + trial);
        const ReconfigurationProgram jsr = planJsr(context);
        // Exact JSR length: 3|Td|+3, or 3|Td| when the temporary cell is a
        // delta (folded into the tail).
        const SymbolId i0 = context.liftTargetInput(0);
        bool tempDelta = false;
        for (const Transition& td : context.deltaTransitions())
          if (td.input == i0 && td.from == context.targetReset())
            tempDelta = true;
        formulaOk = formulaOk &&
                    jsr.length() == (tempDelta ? 3 * deltas : 3 * deltas + 3);
        upperOk = upperOk && jsr.length() <= jsrUpperBound(context);

        EvolutionConfig config;
        config.generations = 60;
        Rng rng(trial);
        const int best = std::min(
            {jsr.length(), planGreedy(context).length(),
             planEvolutionary(context, config, rng).program.length()});
        bestSeen = std::min(bestSeen, best);
        minSlack = std::min(minSlack, best - programLowerBound(context));
      }
      table.addRow({std::to_string(states), std::to_string(deltas),
                    std::to_string(kTrials), formulaOk ? "yes" : "NO",
                    upperOk ? "yes" : "NO", std::to_string(bestSeen),
                    std::to_string(deltas), std::to_string(minSlack)});
    }
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\nmin slack = best |Z| minus the Thm. 4.3 lower bound |Td|;\n"
               "it is never negative (the lower bound holds) and shrinks as\n"
               "the planners find orders needing few connection steps.\n";
}

void boundsFormula(benchmark::State& state) {
  for (auto _ : state) {
    for (int d = 0; d < 1000; ++d)
      benchmark::DoNotOptimize(jsrUpperBound(d) - programLowerBound(d));
  }
}
BENCHMARK(boundsFormula);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
