// A8 — Symbolic vs explicit equivalence checking.  Two independent engines
// decide whether a migration really produced M': the explicit product BFS
// (fsm/equivalence.hpp) and BDD-based symbolic reachability
// (bdd/symbolic_fsm.hpp).  The table reports agreement and the symbolic
// engine's internals across machine sizes.
#include "common.hpp"

#include "bdd/symbolic_fsm.hpp"
#include "fsm/equivalence.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("A8", "Equivalence engines - explicit BFS vs BDD reachability");

  Table table({"|S|", "|I|", "pair", "explicit", "symbolic", "agree",
               "reachable pairs", "BDD nodes", "iterations"});
  for (const int states : {4, 8, 16, 32}) {
    Rng rng(static_cast<std::uint64_t>(states) * 11 + 1);
    RandomMachineSpec spec;
    spec.stateCount = states;
    spec.inputCount = 2;
    spec.outputCount = 2;
    const Machine a = randomMachine(spec, rng);
    MutationSpec mutation;
    mutation.deltaCount = 2;
    const Machine mutant = mutateMachine(a, mutation, rng);

    for (const auto& [label, other] :
         {std::pair<std::string, const Machine*>{"copy", &a},
          std::pair<std::string, const Machine*>{"mutant", &mutant}}) {
      const bool explicitVerdict = areEquivalent(a, *other);
      const auto symbolic = bdd::checkEquivalenceSymbolic(a, *other);
      table.addRow({std::to_string(states), "2", label,
                    explicitVerdict ? "equiv" : "diff",
                    symbolic.equivalent ? "equiv" : "diff",
                    explicitVerdict == symbolic.equivalent ? "yes" : "NO",
                    std::to_string(symbolic.reachablePairs),
                    std::to_string(symbolic.bddNodes),
                    std::to_string(symbolic.iterations)});
    }
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\nBoth engines must agree on every row; the symbolic one\n"
               "additionally reports the size of the reachable product\n"
               "space it explored.\n";
}

void explicitEquivalence(benchmark::State& state) {
  Rng rng(3);
  RandomMachineSpec spec;
  spec.stateCount = static_cast<int>(state.range(0));
  const Machine a = randomMachine(spec, rng);
  const Machine b = randomMachine(spec, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(areEquivalent(a, b));
}
BENCHMARK(explicitEquivalence)->Arg(8)->Arg(32)->Arg(128);

void symbolicEquivalence(benchmark::State& state) {
  Rng rng(3);
  RandomMachineSpec spec;
  spec.stateCount = static_cast<int>(state.range(0));
  const Machine a = randomMachine(spec, rng);
  const Machine b = randomMachine(spec, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        bdd::checkEquivalenceSymbolic(a, b).equivalent);
  state.SetLabel("|S|=" + std::to_string(state.range(0)));
}
BENCHMARK(symbolicEquivalence)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
