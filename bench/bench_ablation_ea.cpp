// A1 — Ablation: EA design choices.  Crossover/mutation operator matrix and
// generation-budget sweep on a fixed instance set, plus search-progress
// accounting (initial random best vs final best).
//
// Every configuration is evaluated over the shared instance set through
// planEvolutionaryBatch (jobs-way parallel, RFSM_JOBS to override); the
// results are bit-identical for every job count.
#include "common.hpp"

#include <vector>

#include "core/planners.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

constexpr int kDeltas = 16;
constexpr int kTrials = 4;

std::vector<MigrationContext> trialInstances() {
  std::vector<MigrationContext> instances;
  instances.reserve(kTrials);
  for (int trial = 0; trial < kTrials; ++trial)
    instances.push_back(randomInstance(16, 2, kDeltas, 400 + trial));
  return instances;
}

double meanLength(const std::vector<MigrationContext>& instances, int jobs,
                  const EvolutionConfig& config, const DecodeOptions& options,
                  double* meanInitial = nullptr) {
  BatchOptions batch;
  batch.jobs = jobs;
  batch.seed = 13;
  const std::vector<EvolutionaryPlan> plans =
      planEvolutionaryBatch(instances, config, batch, options);
  double sum = 0, sumInit = 0;
  for (const EvolutionaryPlan& plan : plans) {
    sum += plan.program.length();
    sumInit += plan.initialBest;
  }
  if (meanInitial != nullptr) *meanInitial = sumInit / kTrials;
  return sum / kTrials;
}

void printArtifact() {
  banner("A1", "Ablation - EA operators and budget (|Td| = 16)");
  const int jobs = artifactJobs();
  const std::vector<MigrationContext> instances = trialInstances();

  Table ops({"crossover", "mutation", "mean |Z|", "mean initial best",
             "improvement"});
  for (const auto crossover : {CrossoverOp::kOrder, CrossoverOp::kPmx}) {
    for (const auto mutation :
         {MutationOp::kSwap, MutationOp::kInsert, MutationOp::kInversion}) {
      EvolutionConfig config;
      config.crossover = crossover;
      config.mutation = mutation;
      double initial = 0;
      const double mean = meanLength(instances, jobs, config, {}, &initial);
      ops.addRow({toString(crossover), toString(mutation),
                  formatFixed(mean, 1), formatFixed(initial, 1),
                  formatFixed(initial - mean, 1)});
    }
  }
  std::cout << "\noperator matrix:\n" << ops.toMarkdown();

  Table budget({"generations", "mean |Z| (paper decoder)",
                "mean |Z| (best-of-three decoder)"});
  for (const int generations : {0, 10, 30, 60, 120, 240}) {
    EvolutionConfig config;
    config.generations = generations;
    DecodeOptions better;
    better.rule = DecodeRule::kBestOfThree;
    budget.addRow({std::to_string(generations),
                   formatFixed(meanLength(instances, jobs, config, {}), 1),
                   formatFixed(meanLength(instances, jobs, config, better),
                               1)});
  }
  std::cout << "\ngeneration budget sweep:\n" << budget.toMarkdown();
  std::cout << "\ngenerations = 0 is the best of the random initial"
               " population; the gap to\nlater rows is what the evolutionary"
               " search itself contributes.\n";
  printTelemetry(jobs);
}

void eaGenerationsScaling(benchmark::State& state) {
  const MigrationContext context = randomInstance(16, 2, kDeltas, 401);
  EvolutionConfig config;
  config.generations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rng rng(9);
    benchmark::DoNotOptimize(
        planEvolutionary(context, config, rng).program.length());
  }
}
BENCHMARK(eaGenerationsScaling)->Arg(10)->Arg(40)->Arg(160)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
