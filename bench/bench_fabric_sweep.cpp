// A14 — Planner fabric sweep: the cross-host fabric under an endpoint
// fault grid (dead, flapping, slow, lying, all-dead), proving the
// robustness contract end to end: every cell answers OK with programs
// *bit-identical* to the unsharded in-process planAll, and every induced
// fault is *detected* (rerouted/hedged/quorum-mismatch counters, breaker
// trips, or the degradation flag) — never silently served.  The artifact
// prints one row per scenario with status, degradation, bit-identity, and
// detection verdicts; the binary exits 1 when any cell breaks either half
// of the contract.
//
// Honest and faulty endpoints are played by a mix of real service::Server
// instances (spawning rfsmd workers — compile-time RFSM_RFSMD_BUILD_PATH,
// overridable with RFSM_RFSMD) and in-bench fake endpoints that speak the
// real wire protocol but tamper, stall, or flap on purpose.  `--smoke`
// shrinks the batch for the CI regression gate.
#include "common.hpp"

#include <unistd.h>

#include <memory>
#include <thread>
#include <vector>

#include "service/fabric.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/breaker.hpp"
#include "util/ipc.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

using namespace std::chrono_literals;

std::string rfsmdPath() {
  if (const char* env = std::getenv("RFSM_RFSMD")) return env;
#ifdef RFSM_RFSMD_BUILD_PATH
  return RFSM_RFSMD_BUILD_PATH;
#else
  return "rfsmd";
#endif
}

std::string freshSocketPath(const char* tag) {
  return "/tmp/rfsm-a14-" + std::to_string(getpid()) + "-" + tag + ".sock";
}

service::BatchSpec sweepSpec(bool smoke) {
  service::BatchSpec spec;
  spec.stateCount = 10;
  spec.inputCount = 3;
  spec.outputCount = 2;
  spec.deltaCount = 8;
  spec.newStateCount = 1;
  spec.instanceCount = smoke ? 12 : 24;
  spec.seed = 0xA14;
  spec.planner = "greedy";
  return spec;
}

/// A real planner service on a fresh unix socket, serving until dropped.
struct RunningServer {
  std::string path;
  service::Server server;
  CancelToken stop;
  std::thread thread;

  explicit RunningServer(std::string socketPath)
      : path(std::move(socketPath)),
        server(options(path)),
        thread([this] { server.run(&stop); }) {}
  ~RunningServer() {
    stop.cancel();
    thread.join();
  }

  static service::ServerOptions options(const std::string& socketPath) {
    service::ServerOptions options;
    options.socketPath = socketPath;
    options.workerBinary = rfsmdPath();
    options.shardSize = 4;
    options.pool.workers = 2;
    return options;
  }
};

/// An in-bench endpoint speaking the real plan protocol with scripted
/// misbehaviour.  Honest replies are planRange's bytes — bit-identical to
/// any correct party — so any observable difference is the fault model.
class FakeEndpoint {
 public:
  enum class Behavior {
    kHonest,  ///< correct bytes
    kTamper,  ///< appends junk to every program (a lying replica)
    kSlow,    ///< answers correctly after `delay`
    kFlaky,   ///< hangs up without answering every other connection
  };

  FakeEndpoint(std::string path, Behavior behavior,
               std::chrono::milliseconds delay = 0ms)
      : path_(std::move(path)),
        behavior_(behavior),
        delay_(delay),
        listen_(ipc::listenUnix(path_)),
        thread_([this] { serve(); }) {}

  ~FakeEndpoint() {
    stop_.cancel();
    thread_.join();
    unlink(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  void serve() {
    while (!stop_.expired()) {
      CancelToken slice(200ms);
      auto connection = ipc::acceptUnix(listen_.get(), &slice);
      if (!connection.has_value()) continue;
      try {
        handle(connection->get());
      } catch (const Error&) {
        // Client went away (a cancelled hedge loser): next connection.
      }
    }
  }

  void handle(int fd) {
    std::string payload;
    CancelToken read(2000ms);
    if (ipc::readFrame(fd, payload, &read) != ipc::ReadStatus::kOk) return;
    if (behavior_ == Behavior::kFlaky && (++connections_ % 2) != 0)
      return;  // drop the connection without a reply
    const auto request = service::decodePlanRequest(payload);
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    service::PlanResponse response;
    response.status = WorkResult::Status::kOk;
    // kBypass: the fake plays a *remote* process — it must not share (or
    // serve back) this process's plan cache, or a poisoned entry could
    // vouch for itself in cache scenarios.
    response.programs =
        service::planRange(request.spec, request.rangeLo(), request.rangeHi(),
                           nullptr, 1, service::PlanCacheMode::kBypass);
    if (behavior_ == Behavior::kTamper)
      for (std::string& program : response.programs)
        program += "# tampered\n";
    ipc::writeFrame(fd, service::encodePlanResponse(response));
  }

  std::string path_;
  Behavior behavior_;
  std::chrono::milliseconds delay_;
  ipc::Fd listen_;
  CancelToken stop_;
  std::uint64_t connections_ = 0;
  std::thread thread_;
};

service::FabricOptions fastFabric(std::vector<ipc::Endpoint> endpoints) {
  service::FabricOptions options;
  options.endpoints = std::move(endpoints);
  options.backoffBase = 1ms;
  options.backoffCap = 10ms;
  return options;
}

struct CellResult {
  std::string status;
  bool degraded = false;
  bool bitIdentical = false;
  bool faultDetected = false;
  double wallMs = 0.0;
};

/// Reads a fabric counter's process-wide value.
std::uint64_t counterValue(const char* name) {
  return metrics::counter(name).value();
}

CellResult runFabric(service::FabricOptions options,
                     const service::BatchSpec& spec,
                     const std::vector<std::string>& reference,
                     const std::vector<const char*>& detectionCounters,
                     bool degradationIsTheDetection = false) {
  std::vector<std::uint64_t> before;
  before.reserve(detectionCounters.size());
  for (const char* name : detectionCounters)
    before.push_back(counterValue(name));

  service::Fabric fabric(std::move(options));
  std::ostringstream err;
  const auto start = std::chrono::steady_clock::now();
  const service::ClientResult result = fabric.plan(spec, err);
  CellResult cell;
  cell.wallMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  cell.status = toString(result.status);
  cell.degraded = result.degraded;
  cell.bitIdentical = result.status == WorkResult::Status::kOk &&
                      result.programs == reference;
  for (std::size_t k = 0; k < detectionCounters.size(); ++k)
    if (counterValue(detectionCounters[k]) > before[k])
      cell.faultDetected = true;
  if (degradationIsTheDetection) cell.faultDetected = result.degraded;
  return cell;
}

/// Returns true when every cell is bit-identical and every induced fault
/// was detected (the healthy baseline counts "no fault to detect" as pass).
bool printArtifact(bool smoke) {
  banner("A14", "Planner fabric sweep - endpoint faults vs bit-identity");
  const service::BatchSpec spec = sweepSpec(smoke);
  const std::vector<std::string> reference =
      service::planRange(spec, 0, spec.instanceCount);

  struct Row {
    std::string scenario;
    CellResult cell;
    bool detectionRequired;
  };
  std::vector<Row> rows;

  {  // all endpoints healthy: two real servers, no fault to detect
    RunningServer a(freshSocketPath("healthy-a"));
    RunningServer b(freshSocketPath("healthy-b"));
    auto options = fastFabric({ipc::parseEndpoint(a.path),
                               ipc::parseEndpoint(b.path)});
    rows.push_back({"all-healthy",
                    runFabric(std::move(options), spec, reference, {}),
                    /*detectionRequired=*/false});
  }
  {  // one endpoint dead: shards reroute, breaker quarantines it
    RunningServer live(freshSocketPath("dead-live"));
    auto options =
        fastFabric({ipc::parseEndpoint(freshSocketPath("dead-dead")),
                    ipc::parseEndpoint(live.path)});
    options.shardSize = 3;
    options.breaker.failureThreshold = 2;
    rows.push_back(
        {"one-dead",
         runFabric(std::move(options), spec, reference,
                   {metrics::kFabricRerouted, metrics::kFabricBreakerTrips}),
         /*detectionRequired=*/true});
  }
  {  // one endpoint flapping: every other connection dropped mid-request
    FakeEndpoint flaky(freshSocketPath("flap"),
                       FakeEndpoint::Behavior::kFlaky);
    RunningServer live(freshSocketPath("flap-live"));
    auto options =
        fastFabric({ipc::parseEndpoint(flaky.path()),
                    ipc::parseEndpoint(live.path)});
    options.shardSize = 3;
    rows.push_back(
        {"one-flapping",
         runFabric(std::move(options), spec, reference,
                   {metrics::kFabricRerouted, metrics::kFabricBreakerTrips}),
         /*detectionRequired=*/true});
  }
  {  // one endpoint slow: the tail shard is hedged to the honest twin
    FakeEndpoint slow(freshSocketPath("slow"),
                      FakeEndpoint::Behavior::kSlow, 600ms);
    FakeEndpoint honest(freshSocketPath("slow-twin"),
                        FakeEndpoint::Behavior::kHonest);
    auto options = fastFabric({ipc::parseEndpoint(slow.path()),
                               ipc::parseEndpoint(honest.path())});
    options.shardSize = spec.instanceCount;  // one shard, primary = slow
    options.hedgeMs = 40;
    rows.push_back({"one-slow",
                    runFabric(std::move(options), spec, reference,
                              {metrics::kFabricHedged}),
                    /*detectionRequired=*/true});
  }
  {  // one endpoint lying: quorum 2 byte-compares and serves ground truth
    FakeEndpoint liar(freshSocketPath("liar"),
                      FakeEndpoint::Behavior::kTamper);
    FakeEndpoint honest(freshSocketPath("liar-twin"),
                        FakeEndpoint::Behavior::kHonest);
    auto options = fastFabric({ipc::parseEndpoint(liar.path()),
                               ipc::parseEndpoint(honest.path())});
    options.shardSize = spec.instanceCount;  // one (sampled) shard
    options.quorum = 2;
    rows.push_back({"one-lying",
                    runFabric(std::move(options), spec, reference,
                              {metrics::kFabricQuorumMismatch}),
                    /*detectionRequired=*/true});
  }
  {  // every endpoint dead: the full ladder down to in-process planning
    auto options =
        fastFabric({ipc::parseEndpoint(freshSocketPath("down-a")),
                    ipc::parseEndpoint(freshSocketPath("down-b"))});
    options.breaker.failureThreshold = 1;
    rows.push_back({"all-dead",
                    runFabric(std::move(options), spec, reference,
                              {metrics::kFabricDegraded},
                              /*degradationIsTheDetection=*/true),
                    /*detectionRequired=*/true});
  }

  bool contractHolds = true;
  Table table({"scenario", "status", "degraded", "bit-identical",
               "fault detected", "wall ms"});
  for (const Row& row : rows) {
    const bool detectionOk =
        !row.detectionRequired || row.cell.faultDetected;
    table.addRow({row.scenario, row.cell.status,
                  row.cell.degraded ? "yes" : "no",
                  row.cell.bitIdentical ? "yes" : "NO",
                  row.detectionRequired
                      ? (row.cell.faultDetected ? "yes" : "NO")
                      : "n/a",
                  std::to_string(static_cast<long>(row.cell.wallMs))});
    if (!row.cell.bitIdentical || !detectionOk) contractHolds = false;
  }
  std::cout << "\nfabric planning under induced endpoint faults ("
            << (smoke ? "smoke" : "full") << " grid, " << spec.instanceCount
            << " instances, 2 endpoints per cell):\n"
            << table.toMarkdown();
  std::cout << "\nfault-visibility contract: "
            << (contractHolds
                    ? "HOLDS (every cell bit-identical, every fault "
                      "detected, never silently served)"
                    : "VIOLATED - see bit-identical / fault-detected "
                      "columns")
            << "\n";
  printTelemetry(artifactJobs(), /*countersOnly=*/true);
  return contractHolds;
}

void fabricPlanBench(benchmark::State& state) {
  const service::BatchSpec spec = sweepSpec(/*smoke=*/true);
  RunningServer a(freshSocketPath("bench-a"));
  RunningServer b(freshSocketPath("bench-b"));
  service::Fabric fabric(
      fastFabric({ipc::parseEndpoint(a.path),
                  ipc::parseEndpoint(b.path)}));
  std::ostringstream err;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric.plan(spec, err));
  }
  state.SetLabel("2-endpoint fabric");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.instanceCount));
}
BENCHMARK(fabricPlanBench)->Unit(benchmark::kMillisecond);

void inProcessPlanBench(benchmark::State& state) {
  const service::BatchSpec spec = sweepSpec(/*smoke=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service::planRange(spec, 0, spec.instanceCount));
  }
  state.SetLabel("in-process baseline");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.instanceCount));
}
BENCHMARK(inProcessPlanBench)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfsm::bench

int main(int argc, char** argv) {
  const std::string jsonOut = rfsm::bench::stripJsonOutFlag(argc, argv);
  bool smoke = false;
  int kept = 1;
  for (int k = 1; k < argc; ++k) {
    if (std::string(argv[k]) == "--smoke")
      smoke = true;
    else
      argv[kept++] = argv[k];
  }
  argc = kept;
  const auto artifactStart = std::chrono::steady_clock::now();
  const bool contractHolds = rfsm::bench::printArtifact(smoke);
  const double artifactMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - artifactStart)
          .count();
  if (!jsonOut.empty() &&
      !rfsm::bench::writeBenchJson(jsonOut, argv[0], artifactMs))
    return 1;
  if (!contractHolds) return 1;
  if (smoke) return 0;  // regression gate: artifact only, no timings
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
