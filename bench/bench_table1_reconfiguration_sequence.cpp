// E2 — Fig. 4 + Table 1: the four-cycle reconfiguration sequence turning
// the ones detector into the zeros-counting machine.  Prints the Table 1
// reproduction and the Fig. 4 state trace, validates the migration, and
// times program replay.
#include "common.hpp"

#include "core/apply.hpp"
#include "core/mutable_machine.hpp"
#include "core/sequence.hpp"
#include "gen/families.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

ReconfigurationProgram table1Program(const MigrationContext& c) {
  const SymbolId in0 = c.inputs().at("0");
  const SymbolId in1 = c.inputs().at("1");
  const SymbolId s0 = c.states().at("S0");
  const SymbolId s1 = c.states().at("S1");
  const SymbolId o0 = c.outputs().at("0");
  const SymbolId o1 = c.outputs().at("1");
  ReconfigurationProgram z;
  z.steps.push_back(ReconfigStep::rewrite(in1, s1, o0));  // r1
  z.steps.push_back(ReconfigStep::rewrite(in1, s1, o0));  // r2
  z.steps.push_back(ReconfigStep::rewrite(in0, s0, o0));  // r3
  z.steps.push_back(ReconfigStep::rewrite(in0, s0, o1));  // r4
  return z;
}

void printArtifact() {
  banner("E2", "Fig. 4 + Table 1 - reconfiguration sequence ones -> zeros");
  const MigrationContext context(onesDetector(), zerosDetector());
  const ReconfigurationProgram z = table1Program(context);

  std::cout << "\nTable 1 (reconfiguration sequence, paper layout):\n"
            << sequenceToMarkdown(context, sequenceFromProgram(z));

  // Fig. 4: the transitions taken during reconfiguration.
  Table trace({"cycle", "state before", "state after", "cell written"});
  MutableMachine machine(context);
  for (std::size_t k = 0; k < z.steps.size(); ++k) {
    const SymbolId before = machine.state();
    machine.applyStep(z.steps[k]);
    trace.addRow({"r" + std::to_string(k + 1),
                  context.states().name(before),
                  context.states().name(machine.state()),
                  "(" + context.inputs().name(z.steps[k].input) + ", " +
                      context.states().name(before) + ")"});
  }
  std::cout << "\nFig. 4 state trace:\n" << trace.toMarkdown();

  const ValidationResult verdict = validateProgram(context, z);
  std::cout << "\nlength: " << z.length()
            << " cycles (paper: four clock cycles)\n"
            << "validates (M -> M', ends in S0'): "
            << (verdict.valid ? "yes" : ("NO - " + verdict.reason)) << "\n";
}

void replayTable1(benchmark::State& state) {
  const MigrationContext context(onesDetector(), zerosDetector());
  const ReconfigurationProgram z = table1Program(context);
  for (auto _ : state) {
    MutableMachine machine(context);
    machine.applyProgram(z);
    benchmark::DoNotOptimize(machine.state());
  }
  state.SetItemsProcessed(state.iterations() * z.length());
}
BENCHMARK(replayTable1);

void validateTable1(benchmark::State& state) {
  const MigrationContext context(onesDetector(), zerosDetector());
  const ReconfigurationProgram z = table1Program(context);
  for (auto _ : state)
    benchmark::DoNotOptimize(validateProgram(context, z).valid);
}
BENCHMARK(validateTable1);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
