// A9 — Post-migration verification cost: W-method conformance suites.
// After a migration the device can be verified through I/O alone; this
// bench sizes the suite (tests, total input symbols) across machine sizes
// and measures the mutation-detection rate on generator mutants.
#include "common.hpp"

#include "fsm/conformance.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/minimize.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("A9", "W-method conformance suites - size and mutant detection");

  Table table({"|S| (minimal)", "|I|", "tests", "input symbols",
               "mutants tried", "verdicts correct"});
  for (const int states : {3, 5, 8, 12}) {
    Rng rng(static_cast<std::uint64_t>(states) * 271 + 9);
    RandomMachineSpec spec;
    spec.stateCount = states;
    spec.inputCount = 2;
    spec.outputCount = 2;
    const Machine raw = randomMachine(spec, rng);
    const Machine specMachine = minimize(raw).machine;
    const ConformanceSuite suite = wMethodSuite(specMachine);

    constexpr int kMutants = 20;
    int correct = 0;
    for (int m = 0; m < kMutants; ++m) {
      MutationSpec mutation;
      mutation.deltaCount = 1 + static_cast<int>(rng.below(3));
      const Machine mutant = mutateMachine(specMachine, mutation, rng);
      const bool equivalent = areEquivalent(specMachine, mutant);
      const bool pass =
          runConformanceSuite(specMachine, mutant, suite).pass;
      if (pass == equivalent) ++correct;
    }
    table.addRow({std::to_string(specMachine.stateCount()), "2",
                  std::to_string(suite.testCount()),
                  std::to_string(suite.totalInputs()),
                  std::to_string(kMutants),
                  std::to_string(correct) + "/" + std::to_string(kMutants)});
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\nThe W-method guarantee: with the implementation's state\n"
               "count bounded by the spec's, the suite passes exactly the\n"
               "equivalent implementations - every verdict column must be\n"
               "N/N.\n";
}

void buildSuite(benchmark::State& state) {
  Rng rng(5);
  RandomMachineSpec spec;
  spec.stateCount = static_cast<int>(state.range(0));
  spec.inputCount = 2;
  const Machine machine = minimize(randomMachine(spec, rng)).machine;
  for (auto _ : state)
    benchmark::DoNotOptimize(wMethodSuite(machine).testCount());
}
BENCHMARK(buildSuite)->Arg(5)->Arg(10)->Arg(20);

void runSuite(benchmark::State& state) {
  Rng rng(5);
  RandomMachineSpec spec;
  spec.stateCount = 10;
  spec.inputCount = 2;
  const Machine machine = minimize(randomMachine(spec, rng)).machine;
  const ConformanceSuite suite = wMethodSuite(machine);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        runConformanceSuite(machine, machine, suite).pass);
}
BENCHMARK(runSuite);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
