// A5 — Ablation: the cost of reconfigurability.  Sizes a fixed two-level
// logic implementation of each machine against the paper's RAM-based
// Fig. 5 implementation.  Logic is cheaper for sparse controllers but is
// frozen at synthesis time; the RAM design pays area for the ability to
// rewrite one cell per cycle.
#include "common.hpp"

#include "core/jsr.hpp"
#include "core/sequence.hpp"
#include "gen/families.hpp"
#include "gen/samples.hpp"
#include "logic/synthesize.hpp"
#include "rtl/resources.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void addRow(Table& table, const std::string& label, const Machine& machine) {
  const logic::TwoLevelSynthesis synthesis =
      logic::synthesizeTwoLevel(machine);
  const MigrationContext identity(machine, machine);
  const auto ram = rtl::estimateResources(identity, {});
  table.addRow({label, std::to_string(machine.stateCount()),
                std::to_string(machine.inputCount()),
                std::to_string(synthesis.totalCubes()),
                std::to_string(synthesis.totalLiterals()),
                std::to_string(synthesis.estimatedLuts()),
                std::to_string(ram.framBits + ram.gramBits),
                std::to_string(ram.blockRams)});
}

void printArtifact() {
  banner("A5", "Ablation - fixed two-level logic vs reconfigurable RAM");

  Table table({"machine", "|S|", "|I|", "cubes", "literals", "logic LUTs",
               "RAM bits", "BlockRAMs"});
  addRow(table, "ones detector (Fig. 3)", onesDetector());
  for (const auto& name : sampleNames())
    addRow(table, name, sampleMachine(name));
  addRow(table, "counter16", counterMachine(16));
  Rng rng(7);
  RandomMachineSpec spec;
  spec.stateCount = 32;
  spec.inputCount = 4;
  spec.outputCount = 4;
  spec.name = "random32x4";
  addRow(table, "random32x4", randomMachine(spec, rng));
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\nThe logic implementation cannot be changed one transition\n"
               "per cycle - rewriting it means re-synthesis, re-place and\n"
               "re-route (the technology-dependent flow the paper's RAM\n"
               "architecture deliberately avoids).\n";
}

void synthesizeBench(benchmark::State& state) {
  Rng rng(11);
  RandomMachineSpec spec;
  spec.stateCount = static_cast<int>(state.range(0));
  spec.inputCount = 2;
  const Machine machine = randomMachine(spec, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        logic::synthesizeTwoLevel(machine).estimatedLuts());
  state.SetLabel("|S|=" + std::to_string(state.range(0)));
}
BENCHMARK(synthesizeBench)->Arg(8)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
