// A7 — Ablation: state encoding (binary / Gray / one-hot).  The Fig. 5
// RAM design needs a dense code (the state is a RAM address: one-hot would
// square the RAM), while fixed-logic implementations often shrink with
// one-hot.  This bench quantifies both sides of that trade-off.
#include "common.hpp"

#include "gen/families.hpp"
#include "gen/samples.hpp"
#include "logic/synthesize.hpp"
#include "rtl/encoding.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("A7", "Ablation - state encoding: binary vs Gray vs one-hot");

  Table table({"machine", "|S|", "encoding", "state bits", "RAM bits",
               "logic cubes", "logic literals", "logic LUTs"});
  std::vector<std::pair<std::string, Machine>> machines;
  machines.emplace_back("hdlc_v1", sampleMachine("hdlc_v1"));
  machines.emplace_back("counter12", counterMachine(12));
  machines.emplace_back("vending_v2", sampleMachine("vending_v2"));
  {
    Rng rng(3);
    RandomMachineSpec spec;
    spec.stateCount = 16;
    spec.inputCount = 2;
    spec.name = "random16";
    machines.emplace_back("random16", randomMachine(spec, rng));
  }

  for (const auto& [label, machine] : machines) {
    for (const auto strategy :
         {rtl::StateEncoding::kBinary, rtl::StateEncoding::kGray,
          rtl::StateEncoding::kOneHot}) {
      const rtl::StateCodeMap codes =
          assignStateCodes(machine.stateCount(), strategy);
      const auto synthesis = logic::synthesizeTwoLevel(machine, codes);
      // RAM with this code: depth 2^(inputWidth + codeWidth), word =
      // codeWidth (F) resp. outputWidth (G).
      const int wi = synthesis.encoding.inputWidth;
      const std::int64_t depth = std::int64_t{1} << (wi + codes.width);
      const std::int64_t ramBits =
          depth * (codes.width + synthesis.encoding.outputWidth);
      table.addRow({label, std::to_string(machine.stateCount()),
                    rtl::toString(strategy), std::to_string(codes.width),
                    std::to_string(ramBits),
                    std::to_string(synthesis.totalCubes()),
                    std::to_string(synthesis.totalLiterals()),
                    std::to_string(synthesis.estimatedLuts())});
    }
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\nOne-hot explodes the RAM (the state is an address bit per\n"
               "state) - which is why the paper's reconfigurable design\n"
               "implies dense binary codes - while for fixed logic one-hot\n"
               "often trims the per-bit ON-sets.\n";
}

void synthesizeOneHot(benchmark::State& state) {
  Rng rng(5);
  RandomMachineSpec spec;
  spec.stateCount = static_cast<int>(state.range(0));
  const Machine machine = randomMachine(spec, rng);
  const auto codes = rtl::assignStateCodes(machine.stateCount(),
                                           rtl::StateEncoding::kOneHot);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        logic::synthesizeTwoLevel(machine, codes).estimatedLuts());
}
BENCHMARK(synthesizeOneHot)->Arg(8)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
