// A13 — Planner service sweep: the supervised worker pool under induced
// process faults, proving the recovery contract end to end: for every
// fault scenario the service answers OK and its programs are *bit-identical*
// to the unsharded in-process planAll — a killed, aborted, or hung worker
// costs retries and latency, never correctness.  The artifact prints one
// row per (scenario, workers) cell with status, retry/crash counts, and
// the bit-identity verdict; the binary exits 1 when any cell breaks the
// contract.
//
// Worker subprocesses are spawned from the rfsmd binary next to this one
// (compile-time RFSM_RFSMD_BUILD_PATH, overridable with RFSM_RFSMD).
// `--smoke` shrinks the grid for the CI regression gate.
#include "common.hpp"

#include <vector>

#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/fault.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

std::string rfsmdPath() {
  if (const char* env = std::getenv("RFSM_RFSMD")) return env;
#ifdef RFSM_RFSMD_BUILD_PATH
  return RFSM_RFSMD_BUILD_PATH;
#else
  return "rfsmd";
#endif
}

service::BatchSpec sweepSpec(bool smoke) {
  service::BatchSpec spec;
  spec.stateCount = 10;
  spec.inputCount = 3;
  spec.outputCount = 2;
  spec.deltaCount = 8;
  spec.newStateCount = 1;
  spec.instanceCount = smoke ? 12 : 24;
  spec.seed = 0xA13;
  spec.planner = "greedy";
  return spec;
}

service::ServerOptions cellOptions(const std::string& scenario, int workers,
                                   std::uint64_t shardSize) {
  service::ServerOptions options;
  options.workerBinary = rfsmdPath();
  options.shardSize = shardSize;
  options.pool.workers = workers;
  options.pool.maxAttempts = 4;
  options.pool.backoffBase = std::chrono::milliseconds(5);
  options.pool.backoffCap = std::chrono::milliseconds(50);
  options.pool.restartLimit = 16;
  // The hedge that makes hang-worker recoverable: a silent worker is
  // killed after 400 ms of silence and the shard retried.
  options.pool.attemptTimeout = std::chrono::milliseconds(400);
  options.scenario = *fault::serviceScenarioByName(scenario);
  return options;
}

struct CellResult {
  std::string status;
  double wallMs = 0.0;
  std::uint64_t retries = 0;
  std::uint64_t crashes = 0;
  bool bitIdentical = false;
};

CellResult runCell(const std::string& scenario, int workers,
                   const service::BatchSpec& spec,
                   const std::vector<std::string>& reference) {
  service::Server server(cellOptions(scenario, workers, /*shardSize=*/4));
  service::PlanRequest request;
  request.spec = spec;
  request.deadlineMs = 60000;
  request.requestId = 0xA13;
  const auto start = std::chrono::steady_clock::now();
  const service::PlanResponse response = server.handlePlan(request);
  CellResult cell;
  cell.wallMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  cell.status = toString(response.status);
  cell.retries = response.retries;
  cell.crashes = response.crashes;
  cell.bitIdentical = response.status == WorkResult::Status::kOk &&
                      response.programs == reference;
  return cell;
}

/// Returns true when every cell answered OK with bit-identical programs.
bool printArtifact(bool smoke) {
  banner("A13", "Planner service sweep - worker faults vs bit-identity");
  const service::BatchSpec spec = sweepSpec(smoke);
  const std::vector<std::string> reference =
      service::planRange(spec, 0, spec.instanceCount);
  const std::vector<std::string> scenarios = {
      "none", "kill-first-shard", "abort-mid-shard", "hang-worker"};
  const std::vector<int> workerCounts = smoke ? std::vector<int>{2}
                                              : std::vector<int>{2, 4};

  bool contractHolds = true;
  Table table({"scenario", "workers", "status", "retries", "crashes",
               "bit-identical", "wall ms"});
  for (const std::string& scenario : scenarios) {
    for (const int workers : workerCounts) {
      const CellResult cell = runCell(scenario, workers, spec, reference);
      table.addRow({scenario, std::to_string(workers), cell.status,
                    std::to_string(cell.retries),
                    std::to_string(cell.crashes),
                    cell.bitIdentical ? "yes" : "NO",
                    std::to_string(static_cast<long>(cell.wallMs))});
      if (!cell.bitIdentical) contractHolds = false;
    }
  }
  std::cout << "\nsharded planning under induced worker faults ("
            << (smoke ? "smoke" : "full") << " grid, " << spec.instanceCount
            << " instances, shard size 4):\n"
            << table.toMarkdown();
  std::cout << "\nbit-identical-recovery contract: "
            << (contractHolds
                    ? "HOLDS (every scenario matches in-process planAll)"
                    : "VIOLATED - see bit-identical column")
            << "\n";
  printTelemetry(artifactJobs(), /*countersOnly=*/true);
  return contractHolds;
}

void serverPlanBench(benchmark::State& state) {
  const service::BatchSpec spec = sweepSpec(/*smoke=*/true);
  service::Server server(
      cellOptions("none", static_cast<int>(state.range(0)), 4));
  service::PlanRequest request;
  request.spec = spec;
  request.deadlineMs = 60000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handlePlan(request));
  }
  state.SetLabel("sharded via worker pool");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.instanceCount));
}
BENCHMARK(serverPlanBench)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void inProcessPlanBench(benchmark::State& state) {
  const service::BatchSpec spec = sweepSpec(/*smoke=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service::planRange(spec, 0, spec.instanceCount));
  }
  state.SetLabel("in-process baseline");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.instanceCount));
}
BENCHMARK(inProcessPlanBench)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rfsm::bench

int main(int argc, char** argv) {
  const std::string jsonOut = rfsm::bench::stripJsonOutFlag(argc, argv);
  bool smoke = false;
  int kept = 1;
  for (int k = 1; k < argc; ++k) {
    if (std::string(argv[k]) == "--smoke")
      smoke = true;
    else
      argv[kept++] = argv[k];
  }
  argc = kept;
  const auto artifactStart = std::chrono::steady_clock::now();
  const bool contractHolds = rfsm::bench::printArtifact(smoke);
  const double artifactMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - artifactStart)
          .count();
  if (!jsonOut.empty() &&
      !rfsm::bench::writeBenchJson(jsonOut, argv[0], artifactMs))
    return 1;
  if (!contractHolds) return 1;
  if (smoke) return 0;  // regression gate: artifact only, no timings
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
