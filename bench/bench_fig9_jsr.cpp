// E6 — Fig. 9 + Example 4.3: the JSR (jump, set, return) heuristic on the
// Fig. 6 migration.  Prints the full 15-step program in the paper's Z
// notation and times planning across instance sizes.
#include "common.hpp"

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/mutable_machine.hpp"
#include "gen/families.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("E6", "Fig. 9 + Example 4.3 - the JSR heuristic");
  const MigrationContext context(example41Source(), example41Target());
  const ReconfigurationProgram z = planJsr(context);

  // Print the program in the paper's transition notation by replaying it.
  Table table({"z_k", "kind", "transition taken", "cell written"});
  MutableMachine machine(context);
  for (std::size_t k = 0; k < z.steps.size(); ++k) {
    const ReconfigStep& step = z.steps[k];
    const SymbolId before = machine.state();
    machine.applyStep(step);
    std::string kind, taken = "(", cell = "-";
    switch (step.kind) {
      case StepKind::kReset:
        kind = "reset";
        taken = "rst -> " + context.states().name(machine.state());
        break;
      case StepKind::kTraverse:
        kind = "take";
        taken = "(" + context.inputs().name(step.input) + ", " +
                context.states().name(before) + " -> " +
                context.states().name(machine.state()) + ")";
        break;
      case StepKind::kRewrite:
        kind = step.temporary ? "jump (temporary)" : "set (delta)";
        taken = "(" + context.inputs().name(step.input) + ", " +
                context.states().name(before) + ", " +
                context.states().name(step.nextState) + ", " +
                context.outputs().name(step.output) + ")";
        cell = "(" + context.inputs().name(step.input) + ", " +
               context.states().name(before) + ")";
        break;
    }
    table.addRow({"z" + std::to_string(k), kind, taken, cell});
  }
  std::cout << "\n" << table.toMarkdown();

  const ValidationResult verdict = validateProgram(context, z);
  std::cout << "\n|Z| = " << z.length()
            << " (paper Example 4.3: 15 = 3 * (|Td| + 1) with |Td| = 4)\n"
            << "bound 3(|Td|+1) = " << jsrUpperBound(context)
            << ", valid: " << (verdict.valid ? "yes" : "NO") << "\n";
}

void planJsrBench(benchmark::State& state) {
  const MigrationContext context = randomInstance(
      static_cast<int>(state.range(0)), 2,
      static_cast<int>(state.range(0)) / 2, 23);
  for (auto _ : state)
    benchmark::DoNotOptimize(planJsr(context).length());
}
BENCHMARK(planJsrBench)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void validateJsrBench(benchmark::State& state) {
  const MigrationContext context = randomInstance(32, 2, 16, 29);
  const ReconfigurationProgram z = planJsr(context);
  for (auto _ : state)
    benchmark::DoNotOptimize(validateProgram(context, z).valid);
}
BENCHMARK(validateJsrBench);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
