// E5 — Fig. 7/8 + Example 4.2: temporary transitions shorten the
// reconfiguration program from four cycles (path following) to three
// (temporary shortcut including its repair).  Reproduces both programs and
// sweeps the advantage as the ring grows.
#include "common.hpp"

#include "core/apply.hpp"
#include "fsm/builder.hpp"
#include "gen/families.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

/// Generalized Example 4.2: a ring of `n` states under input 1 with
/// self-loops under 0; the single delta is (0, S{n-1}) -> S0 / 0.
std::pair<Machine, Machine> ringInstance(int n) {
  MachineBuilder src("ring_M");
  MachineBuilder dst("ring_Mprime");
  for (MachineBuilder* b : {&src, &dst}) {
    b->addInput("0");
    b->addInput("1");
    b->addOutput("0");
    b->addOutput("1");
    for (int k = 0; k < n; ++k) b->addState("S" + std::to_string(k));
    b->setResetState("S0");
    for (int k = 0; k < n; ++k) {
      const std::string here = "S" + std::to_string(k);
      const std::string next = "S" + std::to_string(k + 1 == n ? n - 1 : k + 1);
      b->addTransition("1", here, next, "0");
      if (k + 1 < n) b->addTransition("0", here, here, "0");
    }
  }
  const std::string last = "S" + std::to_string(n - 1);
  src.addTransition("0", last, last, "1");
  dst.addTransition("0", last, "S0", "0");
  return {src.build(), dst.build()};
}

/// The Example 4.2 path-following program: walk the ring, rewrite the delta.
ReconfigurationProgram pathProgram(const MigrationContext& c, int n) {
  ReconfigurationProgram z;
  const SymbolId in1 = c.inputs().at("1");
  for (int k = 0; k + 1 < n; ++k) z.steps.push_back(ReconfigStep::traverse(in1));
  z.steps.push_back(ReconfigStep::rewrite(c.inputs().at("0"),
                                          c.states().at("S0"),
                                          c.outputs().at("0")));
  return z;
}

/// The Example 4.2 temporary-transition program: shortcut, rewrite, repair.
ReconfigurationProgram temporaryProgram(const MigrationContext& c, int n) {
  ReconfigurationProgram z;
  const SymbolId in0 = c.inputs().at("0");
  const SymbolId s0 = c.states().at("S0");
  const SymbolId last = c.states().at("S" + std::to_string(n - 1));
  const SymbolId o0 = c.outputs().at("0");
  z.steps.push_back(ReconfigStep::rewrite(in0, last, o0, /*temporary=*/true));
  z.steps.push_back(ReconfigStep::rewrite(in0, s0, o0));
  z.steps.push_back(ReconfigStep::rewrite(in0, s0, o0));
  return z;
}

void printArtifact() {
  banner("E5", "Fig. 7/8 + Example 4.2 - temporary transitions");

  Table table({"ring size", "path program |Z|", "temporary program |Z|",
               "paper (n=4)", "both valid"});
  for (const int n : {4, 6, 8, 12, 16, 24}) {
    const auto [source, target] = ringInstance(n);
    const MigrationContext context(source, target);
    const ReconfigurationProgram path = pathProgram(context, n);
    const ReconfigurationProgram temp = temporaryProgram(context, n);
    const bool valid = validateProgram(context, path).valid &&
                       validateProgram(context, temp).valid;
    table.addRow({std::to_string(n), std::to_string(path.length()),
                  std::to_string(temp.length()),
                  n == 4 ? "4 vs 3" : "-", valid ? "yes" : "NO"});
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\nThe temporary-transition program stays at 3 cycles while\n"
               "path following grows linearly with the ring (paper Sec. 4.3:\n"
               "4 cycles vs 3 cycles at n = 4).\n";
}

void decodePathProgram(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto [source, target] = ringInstance(n);
  const MigrationContext context(source, target);
  const ReconfigurationProgram z = pathProgram(context, n);
  for (auto _ : state)
    benchmark::DoNotOptimize(validateProgram(context, z).valid);
}
BENCHMARK(decodePathProgram)->Arg(4)->Arg(16)->Arg(64);

void decodeTemporaryProgram(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto [source, target] = ringInstance(n);
  const MigrationContext context(source, target);
  const ReconfigurationProgram z = temporaryProgram(context, n);
  for (auto _ : state)
    benchmark::DoNotOptimize(validateProgram(context, z).valid);
}
BENCHMARK(decodeTemporaryProgram)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
