// E1 — Fig. 3 / Example 2.1: the ones-detector Mealy machine and its
// implementation.  Prints the state-transition table and graph, checks the
// VHDL-specified behaviour, and times functional vs. RTL simulation.
#include "common.hpp"

#include "fsm/serialize.hpp"
#include "fsm/simulate.hpp"
#include "gen/families.hpp"
#include "rtl/datapath.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("E1", "Fig. 3 + Example 2.1 - ones detector and implementation");
  const Machine m = onesDetector();

  Table table({"cell (i, s)", "F(i, s)", "G(i, s)"});
  for (const Transition& t : m.transitions())
    table.addRow({"(" + m.inputs().name(t.input) + ", " +
                      m.states().name(t.from) + ")",
                  m.states().name(t.to), m.outputs().name(t.output)});
  std::cout << "\nstate-transition table of M:\n" << table.toMarkdown();

  std::cout << "\nstate-transition graph (Graphviz):\n" << toDot(m);

  // The VHDL behaviour from Example 2.1: "outputs o = 1 in case two or more
  // successive ones have been detected ... until a zero occurs".
  Table behaviour({"input word", "output word (measured)", "paper"});
  const auto show = [&](const std::vector<std::string>& word,
                        const std::string& paper) {
    std::string in, out;
    for (const auto& w : word) in += w;
    for (const auto& o : runOnNames(m, word)) out += o;
    behaviour.addRow({in, out, paper});
  };
  show({"1", "1", "1", "0", "1", "1"}, "011001");
  show({"0", "1", "0", "1", "0"}, "00000");
  show({"1", "1", "1", "1"}, "0111");
  std::cout << "\nbehaviour check:\n" << behaviour.toMarkdown();
}

void simulateModel(benchmark::State& state) {
  const Machine m = onesDetector();
  Simulator sim(m);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.step(static_cast<SymbolId>(rng.below(2))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(simulateModel);

void simulateRtl(benchmark::State& state) {
  const MigrationContext context(onesDetector(), zerosDetector());
  rtl::ReconfigurableFsmDatapath hw(context);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hw.clock(static_cast<SymbolId>(rng.below(2))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(simulateRtl);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
