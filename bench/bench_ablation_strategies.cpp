// A2 — Ablation: planning strategies.  Greedy vs EA vs exhaustive-exact vs
// the no-temporary-transition baseline on small instances where the exact
// optimum (within the decoder family) is computable, plus the optimality
// gap of each heuristic.
//
// Every planner column runs over the shared instance set through the batch
// front end planAll / planEvolutionaryBatch (jobs-way parallel, RFSM_JOBS
// to override); the programs are bit-identical for every job count.
#include "common.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/optimal.hpp"
#include "core/planners.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

constexpr int kTrials = 4;

double meanPlanned(const std::vector<MigrationContext>& instances, int jobs,
                   const BatchPlanFn& plan) {
  BatchOptions batch;
  batch.jobs = jobs;
  const std::vector<ReconfigurationProgram> programs =
      planAll(instances, plan, batch);
  double sum = 0;
  for (const ReconfigurationProgram& program : programs)
    sum += program.length();
  return sum / static_cast<double>(programs.size());
}

void printArtifact() {
  banner("A2", "Ablation - planner strategies vs exact optimum");
  const int jobs = artifactJobs();

  Table table({"|Td|", "JSR", "greedy", "EA", "no-temporary", "exact-order",
               "optimal", "EA gap to optimal"});
  for (const int deltas : {3, 5, 7}) {
    std::vector<MigrationContext> instances;
    instances.reserve(kTrials);
    for (int trial = 0; trial < kTrials; ++trial)
      instances.push_back(randomInstance(
          8, 2, deltas, static_cast<std::uint64_t>(deltas) * 31 + trial));

    const double jsr = meanPlanned(
        instances, jobs,
        [](const MigrationContext& c, Rng&) { return planJsr(c); });
    const double greedy = meanPlanned(
        instances, jobs,
        [](const MigrationContext& c, Rng&) { return planGreedy(c); });
    const double noTemp = meanPlanned(
        instances, jobs,
        [](const MigrationContext& c, Rng&) { return planNoTemporary(c); });
    // nullopt contributes an empty program (length 0) to the mean, as the
    // serial version of this bench did.
    const double exact = meanPlanned(
        instances, jobs, [](const MigrationContext& c, Rng&) {
          return planExact(c, 8).value_or(ReconfigurationProgram{});
        });
    const double optimal = meanPlanned(
        instances, jobs, [](const MigrationContext& c, Rng&) {
          return planOptimalSearch(c).value_or(ReconfigurationProgram{});
        });
    EvolutionConfig config;
    config.generations = 60;
    BatchOptions batch;
    batch.jobs = jobs;
    const std::vector<EvolutionaryPlan> eaPlans =
        planEvolutionaryBatch(instances, config, batch);
    const double ea =
        std::accumulate(eaPlans.begin(), eaPlans.end(), 0.0,
                        [](double acc, const EvolutionaryPlan& plan) {
                          return acc + plan.program.length();
                        }) /
        kTrials;

    table.addRow({std::to_string(deltas), formatFixed(jsr, 1),
                  formatFixed(greedy, 1), formatFixed(ea, 1),
                  formatFixed(noTemp, 1), formatFixed(exact, 1),
                  formatFixed(optimal, 1), formatFixed(ea - optimal, 2)});
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\n'exact-order' is optimal within the paper's order-decoder\n"
               "family (the TSP-like search of Sec. 4.6); 'optimal' is the\n"
               "state-space search over all one-cycle moves, which may\n"
               "interleave walks and jumps.  The no-temporary baseline\n"
               "shows what Sec. 4.3's temporary transitions buy.\n";
  printTelemetry(jobs);
}

void exactPlanning(benchmark::State& state) {
  const int deltas = static_cast<int>(state.range(0));
  const MigrationContext context = randomInstance(8, 2, deltas, 55);
  for (auto _ : state) {
    const auto plan = planExact(context, 8);
    benchmark::DoNotOptimize(plan.has_value());
  }
  state.SetLabel("|Td|=" + std::to_string(deltas));
}
BENCHMARK(exactPlanning)->Arg(3)->Arg(5)->Arg(7)
    ->Unit(benchmark::kMillisecond);

void greedyPlanning(benchmark::State& state) {
  const int deltas = static_cast<int>(state.range(0));
  const MigrationContext context = randomInstance(
      std::max(8, deltas), 2, deltas, 55);
  for (auto _ : state)
    benchmark::DoNotOptimize(planGreedy(context).length());
}
BENCHMARK(greedyPlanning)->Arg(5)->Arg(15)->Arg(30);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
