// A2 — Ablation: planning strategies.  Greedy vs EA vs exhaustive-exact vs
// the no-temporary-transition baseline on small instances where the exact
// optimum (within the decoder family) is computable, plus the optimality
// gap of each heuristic.
#include "common.hpp"

#include <algorithm>

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/optimal.hpp"
#include "core/planners.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm::bench {
namespace {

void printArtifact() {
  banner("A2", "Ablation - planner strategies vs exact optimum");

  Table table({"|Td|", "JSR", "greedy", "EA", "no-temporary", "exact-order",
               "optimal", "EA gap to optimal"});
  constexpr int kTrials = 4;
  for (const int deltas : {3, 5, 7}) {
    double jsr = 0, greedy = 0, ea = 0, noTemp = 0, exact = 0, optimal = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const MigrationContext context = randomInstance(
          8, 2, deltas, static_cast<std::uint64_t>(deltas) * 31 + trial);
      jsr += planJsr(context).length();
      greedy += planGreedy(context).length();
      EvolutionConfig config;
      config.generations = 60;
      Rng rng(trial);
      ea += planEvolutionary(context, config, rng).program.length();
      noTemp += planNoTemporary(context).length();
      const auto exactOrder = planExact(context, 8);
      exact += exactOrder ? exactOrder->length() : 0;
      const auto best = planOptimalSearch(context);
      optimal += best ? best->length() : 0;
    }
    table.addRow(
        {std::to_string(deltas), formatFixed(jsr / kTrials, 1),
         formatFixed(greedy / kTrials, 1), formatFixed(ea / kTrials, 1),
         formatFixed(noTemp / kTrials, 1), formatFixed(exact / kTrials, 1),
         formatFixed(optimal / kTrials, 1),
         formatFixed((ea - optimal) / kTrials, 2)});
  }
  std::cout << "\n" << table.toMarkdown();
  std::cout << "\n'exact-order' is optimal within the paper's order-decoder\n"
               "family (the TSP-like search of Sec. 4.6); 'optimal' is the\n"
               "state-space search over all one-cycle moves, which may\n"
               "interleave walks and jumps.  The no-temporary baseline\n"
               "shows what Sec. 4.3's temporary transitions buy.\n";
}

void exactPlanning(benchmark::State& state) {
  const int deltas = static_cast<int>(state.range(0));
  const MigrationContext context = randomInstance(8, 2, deltas, 55);
  for (auto _ : state) {
    const auto plan = planExact(context, 8);
    benchmark::DoNotOptimize(plan.has_value());
  }
  state.SetLabel("|Td|=" + std::to_string(deltas));
}
BENCHMARK(exactPlanning)->Arg(3)->Arg(5)->Arg(7)
    ->Unit(benchmark::kMillisecond);

void greedyPlanning(benchmark::State& state) {
  const int deltas = static_cast<int>(state.range(0));
  const MigrationContext context = randomInstance(
      std::max(8, deltas), 2, deltas, 55);
  for (auto _ : state)
    benchmark::DoNotOptimize(planGreedy(context).length());
}
BENCHMARK(greedyPlanning)->Arg(5)->Arg(15)->Arg(30);

}  // namespace
}  // namespace rfsm::bench

RFSM_BENCH_MAIN(rfsm::bench::printArtifact)
