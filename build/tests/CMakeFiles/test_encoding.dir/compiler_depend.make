# Empty compiler generated dependencies file for test_encoding.
# This may be replaced when dependencies are built.
