file(REMOVE_RECURSE
  "CMakeFiles/test_encoding.dir/test_encoding.cpp.o"
  "CMakeFiles/test_encoding.dir/test_encoding.cpp.o.d"
  "test_encoding"
  "test_encoding.pdb"
  "test_encoding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
