# Empty compiler generated dependencies file for test_netproto.
# This may be replaced when dependencies are built.
