file(REMOVE_RECURSE
  "CMakeFiles/test_netproto.dir/test_netproto.cpp.o"
  "CMakeFiles/test_netproto.dir/test_netproto.cpp.o.d"
  "test_netproto"
  "test_netproto.pdb"
  "test_netproto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
