file(REMOVE_RECURSE
  "CMakeFiles/test_core_planners.dir/test_core_planners.cpp.o"
  "CMakeFiles/test_core_planners.dir/test_core_planners.cpp.o.d"
  "test_core_planners"
  "test_core_planners.pdb"
  "test_core_planners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_planners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
