# Empty compiler generated dependencies file for test_core_planners.
# This may be replaced when dependencies are built.
