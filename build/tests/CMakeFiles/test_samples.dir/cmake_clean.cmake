file(REMOVE_RECURSE
  "CMakeFiles/test_samples.dir/test_samples.cpp.o"
  "CMakeFiles/test_samples.dir/test_samples.cpp.o.d"
  "test_samples"
  "test_samples.pdb"
  "test_samples[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
