# Empty dependencies file for test_samples.
# This may be replaced when dependencies are built.
