# Empty dependencies file for test_fsm_partial.
# This may be replaced when dependencies are built.
