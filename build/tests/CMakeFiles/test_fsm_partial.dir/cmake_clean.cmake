file(REMOVE_RECURSE
  "CMakeFiles/test_fsm_partial.dir/test_fsm_partial.cpp.o"
  "CMakeFiles/test_fsm_partial.dir/test_fsm_partial.cpp.o.d"
  "test_fsm_partial"
  "test_fsm_partial.pdb"
  "test_fsm_partial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsm_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
