# Empty dependencies file for test_peephole.
# This may be replaced when dependencies are built.
