file(REMOVE_RECURSE
  "CMakeFiles/test_peephole.dir/test_peephole.cpp.o"
  "CMakeFiles/test_peephole.dir/test_peephole.cpp.o.d"
  "test_peephole"
  "test_peephole.pdb"
  "test_peephole[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peephole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
