file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_parsers.dir/test_fuzz_parsers.cpp.o"
  "CMakeFiles/test_fuzz_parsers.dir/test_fuzz_parsers.cpp.o.d"
  "test_fuzz_parsers"
  "test_fuzz_parsers.pdb"
  "test_fuzz_parsers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_parsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
