# Empty dependencies file for test_core_migration.
# This may be replaced when dependencies are built.
