file(REMOVE_RECURSE
  "CMakeFiles/test_core_migration.dir/test_core_migration.cpp.o"
  "CMakeFiles/test_core_migration.dir/test_core_migration.cpp.o.d"
  "test_core_migration"
  "test_core_migration.pdb"
  "test_core_migration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
