
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_chain.cpp" "tests/CMakeFiles/test_core_chain.dir/test_core_chain.cpp.o" "gcc" "tests/CMakeFiles/test_core_chain.dir/test_core_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rfsm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rfsm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/rfsm_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/ea/CMakeFiles/rfsm_ea.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rfsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/rfsm_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/rfsm_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/rfsm_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/rfsm_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/netproto/CMakeFiles/rfsm_netproto.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/rfsm_cli.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
