# Empty compiler generated dependencies file for test_core_chain.
# This may be replaced when dependencies are built.
