file(REMOVE_RECURSE
  "CMakeFiles/test_core_chain.dir/test_core_chain.cpp.o"
  "CMakeFiles/test_core_chain.dir/test_core_chain.cpp.o.d"
  "test_core_chain"
  "test_core_chain.pdb"
  "test_core_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
