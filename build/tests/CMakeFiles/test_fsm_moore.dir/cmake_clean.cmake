file(REMOVE_RECURSE
  "CMakeFiles/test_fsm_moore.dir/test_fsm_moore.cpp.o"
  "CMakeFiles/test_fsm_moore.dir/test_fsm_moore.cpp.o.d"
  "test_fsm_moore"
  "test_fsm_moore.pdb"
  "test_fsm_moore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsm_moore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
