# Empty dependencies file for test_fsm_moore.
# This may be replaced when dependencies are built.
