# Empty compiler generated dependencies file for test_core_local_search.
# This may be replaced when dependencies are built.
