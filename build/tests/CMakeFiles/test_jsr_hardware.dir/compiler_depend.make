# Empty compiler generated dependencies file for test_jsr_hardware.
# This may be replaced when dependencies are built.
