file(REMOVE_RECURSE
  "CMakeFiles/test_jsr_hardware.dir/test_jsr_hardware.cpp.o"
  "CMakeFiles/test_jsr_hardware.dir/test_jsr_hardware.cpp.o.d"
  "test_jsr_hardware"
  "test_jsr_hardware.pdb"
  "test_jsr_hardware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jsr_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
