file(REMOVE_RECURSE
  "CMakeFiles/test_core_repair.dir/test_core_repair.cpp.o"
  "CMakeFiles/test_core_repair.dir/test_core_repair.cpp.o.d"
  "test_core_repair"
  "test_core_repair.pdb"
  "test_core_repair[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
