# Empty compiler generated dependencies file for test_core_repair.
# This may be replaced when dependencies are built.
