file(REMOVE_RECURSE
  "CMakeFiles/test_compose.dir/test_compose.cpp.o"
  "CMakeFiles/test_compose.dir/test_compose.cpp.o.d"
  "test_compose"
  "test_compose.pdb"
  "test_compose[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
