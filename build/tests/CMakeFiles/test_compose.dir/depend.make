# Empty dependencies file for test_compose.
# This may be replaced when dependencies are built.
