file(REMOVE_RECURSE
  "CMakeFiles/test_core_optimal.dir/test_core_optimal.cpp.o"
  "CMakeFiles/test_core_optimal.dir/test_core_optimal.cpp.o.d"
  "test_core_optimal"
  "test_core_optimal.pdb"
  "test_core_optimal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
