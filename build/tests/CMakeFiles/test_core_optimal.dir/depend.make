# Empty dependencies file for test_core_optimal.
# This may be replaced when dependencies are built.
