file(REMOVE_RECURSE
  "CMakeFiles/test_cross_planner.dir/test_cross_planner.cpp.o"
  "CMakeFiles/test_cross_planner.dir/test_cross_planner.cpp.o.d"
  "test_cross_planner"
  "test_cross_planner.pdb"
  "test_cross_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
