# Empty compiler generated dependencies file for test_cross_planner.
# This may be replaced when dependencies are built.
