# Empty compiler generated dependencies file for test_core_properties.
# This may be replaced when dependencies are built.
