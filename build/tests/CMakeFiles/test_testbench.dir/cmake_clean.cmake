file(REMOVE_RECURSE
  "CMakeFiles/test_testbench.dir/test_testbench.cpp.o"
  "CMakeFiles/test_testbench.dir/test_testbench.cpp.o.d"
  "test_testbench"
  "test_testbench.pdb"
  "test_testbench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
