# Empty compiler generated dependencies file for test_testbench.
# This may be replaced when dependencies are built.
