# Empty compiler generated dependencies file for test_core_dontcare.
# This may be replaced when dependencies are built.
