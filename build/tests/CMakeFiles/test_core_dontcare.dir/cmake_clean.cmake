file(REMOVE_RECURSE
  "CMakeFiles/test_core_dontcare.dir/test_core_dontcare.cpp.o"
  "CMakeFiles/test_core_dontcare.dir/test_core_dontcare.cpp.o.d"
  "test_core_dontcare"
  "test_core_dontcare.pdb"
  "test_core_dontcare[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_dontcare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
