# Empty compiler generated dependencies file for test_context_swap.
# This may be replaced when dependencies are built.
