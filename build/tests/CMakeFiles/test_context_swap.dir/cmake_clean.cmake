file(REMOVE_RECURSE
  "CMakeFiles/test_context_swap.dir/test_context_swap.cpp.o"
  "CMakeFiles/test_context_swap.dir/test_context_swap.cpp.o.d"
  "test_context_swap"
  "test_context_swap.pdb"
  "test_context_swap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_context_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
