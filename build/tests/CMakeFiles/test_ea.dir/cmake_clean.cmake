file(REMOVE_RECURSE
  "CMakeFiles/test_ea.dir/test_ea.cpp.o"
  "CMakeFiles/test_ea.dir/test_ea.cpp.o.d"
  "test_ea"
  "test_ea.pdb"
  "test_ea[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
