file(REMOVE_RECURSE
  "CMakeFiles/test_conformance.dir/test_conformance.cpp.o"
  "CMakeFiles/test_conformance.dir/test_conformance.cpp.o.d"
  "test_conformance"
  "test_conformance.pdb"
  "test_conformance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
