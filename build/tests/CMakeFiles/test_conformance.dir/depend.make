# Empty dependencies file for test_conformance.
# This may be replaced when dependencies are built.
