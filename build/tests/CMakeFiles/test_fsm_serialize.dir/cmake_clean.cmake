file(REMOVE_RECURSE
  "CMakeFiles/test_fsm_serialize.dir/test_fsm_serialize.cpp.o"
  "CMakeFiles/test_fsm_serialize.dir/test_fsm_serialize.cpp.o.d"
  "test_fsm_serialize"
  "test_fsm_serialize.pdb"
  "test_fsm_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsm_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
