# Empty dependencies file for test_fsm_serialize.
# This may be replaced when dependencies are built.
