# Empty dependencies file for test_difficulty.
# This may be replaced when dependencies are built.
