file(REMOVE_RECURSE
  "CMakeFiles/test_difficulty.dir/test_difficulty.cpp.o"
  "CMakeFiles/test_difficulty.dir/test_difficulty.cpp.o.d"
  "test_difficulty"
  "test_difficulty.pdb"
  "test_difficulty[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_difficulty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
