file(REMOVE_RECURSE
  "CMakeFiles/test_core_partial.dir/test_core_partial.cpp.o"
  "CMakeFiles/test_core_partial.dir/test_core_partial.cpp.o.d"
  "test_core_partial"
  "test_core_partial.pdb"
  "test_core_partial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
