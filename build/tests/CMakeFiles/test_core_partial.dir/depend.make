# Empty dependencies file for test_core_partial.
# This may be replaced when dependencies are built.
