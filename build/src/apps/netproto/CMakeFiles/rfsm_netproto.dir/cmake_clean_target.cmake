file(REMOVE_RECURSE
  "librfsm_netproto.a"
)
