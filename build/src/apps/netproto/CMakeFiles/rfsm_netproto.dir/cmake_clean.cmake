file(REMOVE_RECURSE
  "CMakeFiles/rfsm_netproto.dir/multiport.cpp.o"
  "CMakeFiles/rfsm_netproto.dir/multiport.cpp.o.d"
  "CMakeFiles/rfsm_netproto.dir/protocol.cpp.o"
  "CMakeFiles/rfsm_netproto.dir/protocol.cpp.o.d"
  "librfsm_netproto.a"
  "librfsm_netproto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfsm_netproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
