# Empty compiler generated dependencies file for rfsm_netproto.
# This may be replaced when dependencies are built.
