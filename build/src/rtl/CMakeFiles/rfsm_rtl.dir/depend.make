# Empty dependencies file for rfsm_rtl.
# This may be replaced when dependencies are built.
