file(REMOVE_RECURSE
  "CMakeFiles/rfsm_rtl.dir/components.cpp.o"
  "CMakeFiles/rfsm_rtl.dir/components.cpp.o.d"
  "CMakeFiles/rfsm_rtl.dir/context_swap.cpp.o"
  "CMakeFiles/rfsm_rtl.dir/context_swap.cpp.o.d"
  "CMakeFiles/rfsm_rtl.dir/datapath.cpp.o"
  "CMakeFiles/rfsm_rtl.dir/datapath.cpp.o.d"
  "CMakeFiles/rfsm_rtl.dir/encoding.cpp.o"
  "CMakeFiles/rfsm_rtl.dir/encoding.cpp.o.d"
  "CMakeFiles/rfsm_rtl.dir/jsr_datapath.cpp.o"
  "CMakeFiles/rfsm_rtl.dir/jsr_datapath.cpp.o.d"
  "CMakeFiles/rfsm_rtl.dir/jsr_sequencer.cpp.o"
  "CMakeFiles/rfsm_rtl.dir/jsr_sequencer.cpp.o.d"
  "CMakeFiles/rfsm_rtl.dir/kernel.cpp.o"
  "CMakeFiles/rfsm_rtl.dir/kernel.cpp.o.d"
  "CMakeFiles/rfsm_rtl.dir/resources.cpp.o"
  "CMakeFiles/rfsm_rtl.dir/resources.cpp.o.d"
  "CMakeFiles/rfsm_rtl.dir/testbench.cpp.o"
  "CMakeFiles/rfsm_rtl.dir/testbench.cpp.o.d"
  "CMakeFiles/rfsm_rtl.dir/vcd.cpp.o"
  "CMakeFiles/rfsm_rtl.dir/vcd.cpp.o.d"
  "CMakeFiles/rfsm_rtl.dir/vhdl.cpp.o"
  "CMakeFiles/rfsm_rtl.dir/vhdl.cpp.o.d"
  "librfsm_rtl.a"
  "librfsm_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfsm_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
