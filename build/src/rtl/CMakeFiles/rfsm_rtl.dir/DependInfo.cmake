
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/components.cpp" "src/rtl/CMakeFiles/rfsm_rtl.dir/components.cpp.o" "gcc" "src/rtl/CMakeFiles/rfsm_rtl.dir/components.cpp.o.d"
  "/root/repo/src/rtl/context_swap.cpp" "src/rtl/CMakeFiles/rfsm_rtl.dir/context_swap.cpp.o" "gcc" "src/rtl/CMakeFiles/rfsm_rtl.dir/context_swap.cpp.o.d"
  "/root/repo/src/rtl/datapath.cpp" "src/rtl/CMakeFiles/rfsm_rtl.dir/datapath.cpp.o" "gcc" "src/rtl/CMakeFiles/rfsm_rtl.dir/datapath.cpp.o.d"
  "/root/repo/src/rtl/encoding.cpp" "src/rtl/CMakeFiles/rfsm_rtl.dir/encoding.cpp.o" "gcc" "src/rtl/CMakeFiles/rfsm_rtl.dir/encoding.cpp.o.d"
  "/root/repo/src/rtl/jsr_datapath.cpp" "src/rtl/CMakeFiles/rfsm_rtl.dir/jsr_datapath.cpp.o" "gcc" "src/rtl/CMakeFiles/rfsm_rtl.dir/jsr_datapath.cpp.o.d"
  "/root/repo/src/rtl/jsr_sequencer.cpp" "src/rtl/CMakeFiles/rfsm_rtl.dir/jsr_sequencer.cpp.o" "gcc" "src/rtl/CMakeFiles/rfsm_rtl.dir/jsr_sequencer.cpp.o.d"
  "/root/repo/src/rtl/kernel.cpp" "src/rtl/CMakeFiles/rfsm_rtl.dir/kernel.cpp.o" "gcc" "src/rtl/CMakeFiles/rfsm_rtl.dir/kernel.cpp.o.d"
  "/root/repo/src/rtl/resources.cpp" "src/rtl/CMakeFiles/rfsm_rtl.dir/resources.cpp.o" "gcc" "src/rtl/CMakeFiles/rfsm_rtl.dir/resources.cpp.o.d"
  "/root/repo/src/rtl/testbench.cpp" "src/rtl/CMakeFiles/rfsm_rtl.dir/testbench.cpp.o" "gcc" "src/rtl/CMakeFiles/rfsm_rtl.dir/testbench.cpp.o.d"
  "/root/repo/src/rtl/vcd.cpp" "src/rtl/CMakeFiles/rfsm_rtl.dir/vcd.cpp.o" "gcc" "src/rtl/CMakeFiles/rfsm_rtl.dir/vcd.cpp.o.d"
  "/root/repo/src/rtl/vhdl.cpp" "src/rtl/CMakeFiles/rfsm_rtl.dir/vhdl.cpp.o" "gcc" "src/rtl/CMakeFiles/rfsm_rtl.dir/vhdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rfsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/rfsm_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rfsm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ea/CMakeFiles/rfsm_ea.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rfsm_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
