file(REMOVE_RECURSE
  "librfsm_rtl.a"
)
