file(REMOVE_RECURSE
  "CMakeFiles/rfsm_cli.dir/cli.cpp.o"
  "CMakeFiles/rfsm_cli.dir/cli.cpp.o.d"
  "CMakeFiles/rfsm_cli.dir/report.cpp.o"
  "CMakeFiles/rfsm_cli.dir/report.cpp.o.d"
  "librfsm_cli.a"
  "librfsm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfsm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
