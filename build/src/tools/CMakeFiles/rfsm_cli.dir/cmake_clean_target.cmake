file(REMOVE_RECURSE
  "librfsm_cli.a"
)
