# Empty dependencies file for rfsm_cli.
# This may be replaced when dependencies are built.
