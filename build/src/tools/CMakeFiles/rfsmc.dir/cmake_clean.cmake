file(REMOVE_RECURSE
  "CMakeFiles/rfsmc.dir/rfsmc.cpp.o"
  "CMakeFiles/rfsmc.dir/rfsmc.cpp.o.d"
  "rfsmc"
  "rfsmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfsmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
