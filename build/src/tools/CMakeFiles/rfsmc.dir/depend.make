# Empty dependencies file for rfsmc.
# This may be replaced when dependencies are built.
