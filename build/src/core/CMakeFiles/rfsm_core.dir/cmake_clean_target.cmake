file(REMOVE_RECURSE
  "librfsm_core.a"
)
