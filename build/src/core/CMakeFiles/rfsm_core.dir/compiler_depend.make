# Empty compiler generated dependencies file for rfsm_core.
# This may be replaced when dependencies are built.
