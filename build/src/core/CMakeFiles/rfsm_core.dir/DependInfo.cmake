
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apply.cpp" "src/core/CMakeFiles/rfsm_core.dir/apply.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/apply.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/rfsm_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/chain.cpp" "src/core/CMakeFiles/rfsm_core.dir/chain.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/chain.cpp.o.d"
  "/root/repo/src/core/difficulty.cpp" "src/core/CMakeFiles/rfsm_core.dir/difficulty.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/difficulty.cpp.o.d"
  "/root/repo/src/core/dontcare.cpp" "src/core/CMakeFiles/rfsm_core.dir/dontcare.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/dontcare.cpp.o.d"
  "/root/repo/src/core/jsr.cpp" "src/core/CMakeFiles/rfsm_core.dir/jsr.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/jsr.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/core/CMakeFiles/rfsm_core.dir/local_search.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/local_search.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/core/CMakeFiles/rfsm_core.dir/migration.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/migration.cpp.o.d"
  "/root/repo/src/core/mutable_machine.cpp" "src/core/CMakeFiles/rfsm_core.dir/mutable_machine.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/mutable_machine.cpp.o.d"
  "/root/repo/src/core/optimal.cpp" "src/core/CMakeFiles/rfsm_core.dir/optimal.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/optimal.cpp.o.d"
  "/root/repo/src/core/partial.cpp" "src/core/CMakeFiles/rfsm_core.dir/partial.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/partial.cpp.o.d"
  "/root/repo/src/core/peephole.cpp" "src/core/CMakeFiles/rfsm_core.dir/peephole.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/peephole.cpp.o.d"
  "/root/repo/src/core/planners.cpp" "src/core/CMakeFiles/rfsm_core.dir/planners.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/planners.cpp.o.d"
  "/root/repo/src/core/program.cpp" "src/core/CMakeFiles/rfsm_core.dir/program.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/program.cpp.o.d"
  "/root/repo/src/core/repair.cpp" "src/core/CMakeFiles/rfsm_core.dir/repair.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/repair.cpp.o.d"
  "/root/repo/src/core/self_reconfigurable.cpp" "src/core/CMakeFiles/rfsm_core.dir/self_reconfigurable.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/self_reconfigurable.cpp.o.d"
  "/root/repo/src/core/sequence.cpp" "src/core/CMakeFiles/rfsm_core.dir/sequence.cpp.o" "gcc" "src/core/CMakeFiles/rfsm_core.dir/sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/rfsm_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/ea/CMakeFiles/rfsm_ea.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rfsm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rfsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
