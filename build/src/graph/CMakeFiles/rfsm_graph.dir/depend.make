# Empty dependencies file for rfsm_graph.
# This may be replaced when dependencies are built.
