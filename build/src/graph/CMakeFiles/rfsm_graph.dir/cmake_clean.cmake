file(REMOVE_RECURSE
  "CMakeFiles/rfsm_graph.dir/digraph.cpp.o"
  "CMakeFiles/rfsm_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/rfsm_graph.dir/scc.cpp.o"
  "CMakeFiles/rfsm_graph.dir/scc.cpp.o.d"
  "CMakeFiles/rfsm_graph.dir/shortest_path.cpp.o"
  "CMakeFiles/rfsm_graph.dir/shortest_path.cpp.o.d"
  "librfsm_graph.a"
  "librfsm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfsm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
