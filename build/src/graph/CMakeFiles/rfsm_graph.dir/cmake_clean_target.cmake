file(REMOVE_RECURSE
  "librfsm_graph.a"
)
