
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/rfsm_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/rfsm_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/scc.cpp" "src/graph/CMakeFiles/rfsm_graph.dir/scc.cpp.o" "gcc" "src/graph/CMakeFiles/rfsm_graph.dir/scc.cpp.o.d"
  "/root/repo/src/graph/shortest_path.cpp" "src/graph/CMakeFiles/rfsm_graph.dir/shortest_path.cpp.o" "gcc" "src/graph/CMakeFiles/rfsm_graph.dir/shortest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rfsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
