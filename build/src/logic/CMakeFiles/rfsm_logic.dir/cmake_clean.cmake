file(REMOVE_RECURSE
  "CMakeFiles/rfsm_logic.dir/cover.cpp.o"
  "CMakeFiles/rfsm_logic.dir/cover.cpp.o.d"
  "CMakeFiles/rfsm_logic.dir/cube.cpp.o"
  "CMakeFiles/rfsm_logic.dir/cube.cpp.o.d"
  "CMakeFiles/rfsm_logic.dir/synthesize.cpp.o"
  "CMakeFiles/rfsm_logic.dir/synthesize.cpp.o.d"
  "librfsm_logic.a"
  "librfsm_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfsm_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
