file(REMOVE_RECURSE
  "librfsm_logic.a"
)
