# Empty compiler generated dependencies file for rfsm_logic.
# This may be replaced when dependencies are built.
