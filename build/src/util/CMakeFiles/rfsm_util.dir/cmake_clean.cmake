file(REMOVE_RECURSE
  "CMakeFiles/rfsm_util.dir/check.cpp.o"
  "CMakeFiles/rfsm_util.dir/check.cpp.o.d"
  "CMakeFiles/rfsm_util.dir/log.cpp.o"
  "CMakeFiles/rfsm_util.dir/log.cpp.o.d"
  "CMakeFiles/rfsm_util.dir/rng.cpp.o"
  "CMakeFiles/rfsm_util.dir/rng.cpp.o.d"
  "CMakeFiles/rfsm_util.dir/strings.cpp.o"
  "CMakeFiles/rfsm_util.dir/strings.cpp.o.d"
  "CMakeFiles/rfsm_util.dir/table.cpp.o"
  "CMakeFiles/rfsm_util.dir/table.cpp.o.d"
  "librfsm_util.a"
  "librfsm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfsm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
