# Empty dependencies file for rfsm_util.
# This may be replaced when dependencies are built.
