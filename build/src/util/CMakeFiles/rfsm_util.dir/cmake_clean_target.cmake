file(REMOVE_RECURSE
  "librfsm_util.a"
)
