# Empty compiler generated dependencies file for rfsm_bdd.
# This may be replaced when dependencies are built.
