file(REMOVE_RECURSE
  "CMakeFiles/rfsm_bdd.dir/bdd.cpp.o"
  "CMakeFiles/rfsm_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/rfsm_bdd.dir/symbolic_fsm.cpp.o"
  "CMakeFiles/rfsm_bdd.dir/symbolic_fsm.cpp.o.d"
  "librfsm_bdd.a"
  "librfsm_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfsm_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
