file(REMOVE_RECURSE
  "librfsm_bdd.a"
)
