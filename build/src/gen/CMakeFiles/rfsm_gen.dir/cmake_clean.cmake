file(REMOVE_RECURSE
  "CMakeFiles/rfsm_gen.dir/families.cpp.o"
  "CMakeFiles/rfsm_gen.dir/families.cpp.o.d"
  "CMakeFiles/rfsm_gen.dir/generator.cpp.o"
  "CMakeFiles/rfsm_gen.dir/generator.cpp.o.d"
  "CMakeFiles/rfsm_gen.dir/mutator.cpp.o"
  "CMakeFiles/rfsm_gen.dir/mutator.cpp.o.d"
  "CMakeFiles/rfsm_gen.dir/samples.cpp.o"
  "CMakeFiles/rfsm_gen.dir/samples.cpp.o.d"
  "librfsm_gen.a"
  "librfsm_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfsm_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
