
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/families.cpp" "src/gen/CMakeFiles/rfsm_gen.dir/families.cpp.o" "gcc" "src/gen/CMakeFiles/rfsm_gen.dir/families.cpp.o.d"
  "/root/repo/src/gen/generator.cpp" "src/gen/CMakeFiles/rfsm_gen.dir/generator.cpp.o" "gcc" "src/gen/CMakeFiles/rfsm_gen.dir/generator.cpp.o.d"
  "/root/repo/src/gen/mutator.cpp" "src/gen/CMakeFiles/rfsm_gen.dir/mutator.cpp.o" "gcc" "src/gen/CMakeFiles/rfsm_gen.dir/mutator.cpp.o.d"
  "/root/repo/src/gen/samples.cpp" "src/gen/CMakeFiles/rfsm_gen.dir/samples.cpp.o" "gcc" "src/gen/CMakeFiles/rfsm_gen.dir/samples.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/rfsm_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rfsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rfsm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rfsm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ea/CMakeFiles/rfsm_ea.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
