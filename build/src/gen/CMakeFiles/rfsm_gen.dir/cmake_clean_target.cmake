file(REMOVE_RECURSE
  "librfsm_gen.a"
)
