# Empty compiler generated dependencies file for rfsm_gen.
# This may be replaced when dependencies are built.
