# Empty dependencies file for rfsm_ea.
# This may be replaced when dependencies are built.
