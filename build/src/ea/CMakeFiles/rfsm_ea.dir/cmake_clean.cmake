file(REMOVE_RECURSE
  "CMakeFiles/rfsm_ea.dir/evolution.cpp.o"
  "CMakeFiles/rfsm_ea.dir/evolution.cpp.o.d"
  "CMakeFiles/rfsm_ea.dir/permutation.cpp.o"
  "CMakeFiles/rfsm_ea.dir/permutation.cpp.o.d"
  "librfsm_ea.a"
  "librfsm_ea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfsm_ea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
