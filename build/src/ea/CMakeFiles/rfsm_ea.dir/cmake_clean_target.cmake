file(REMOVE_RECURSE
  "librfsm_ea.a"
)
