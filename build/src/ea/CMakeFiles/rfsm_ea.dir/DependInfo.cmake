
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ea/evolution.cpp" "src/ea/CMakeFiles/rfsm_ea.dir/evolution.cpp.o" "gcc" "src/ea/CMakeFiles/rfsm_ea.dir/evolution.cpp.o.d"
  "/root/repo/src/ea/permutation.cpp" "src/ea/CMakeFiles/rfsm_ea.dir/permutation.cpp.o" "gcc" "src/ea/CMakeFiles/rfsm_ea.dir/permutation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rfsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
