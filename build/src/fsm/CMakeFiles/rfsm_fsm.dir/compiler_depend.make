# Empty compiler generated dependencies file for rfsm_fsm.
# This may be replaced when dependencies are built.
