file(REMOVE_RECURSE
  "CMakeFiles/rfsm_fsm.dir/analysis.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/analysis.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/builder.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/builder.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/compose.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/compose.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/conformance.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/conformance.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/equivalence.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/equivalence.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/kiss.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/kiss.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/machine.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/machine.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/minimize.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/minimize.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/moore.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/moore.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/partial_machine.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/partial_machine.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/reduce.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/reduce.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/serialize.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/serialize.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/simulate.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/simulate.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/statistics.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/statistics.cpp.o.d"
  "CMakeFiles/rfsm_fsm.dir/symbols.cpp.o"
  "CMakeFiles/rfsm_fsm.dir/symbols.cpp.o.d"
  "librfsm_fsm.a"
  "librfsm_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfsm_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
