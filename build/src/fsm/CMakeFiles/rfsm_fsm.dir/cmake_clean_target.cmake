file(REMOVE_RECURSE
  "librfsm_fsm.a"
)
