
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/analysis.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/analysis.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/analysis.cpp.o.d"
  "/root/repo/src/fsm/builder.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/builder.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/builder.cpp.o.d"
  "/root/repo/src/fsm/compose.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/compose.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/compose.cpp.o.d"
  "/root/repo/src/fsm/conformance.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/conformance.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/conformance.cpp.o.d"
  "/root/repo/src/fsm/equivalence.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/equivalence.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/equivalence.cpp.o.d"
  "/root/repo/src/fsm/kiss.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/kiss.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/kiss.cpp.o.d"
  "/root/repo/src/fsm/machine.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/machine.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/machine.cpp.o.d"
  "/root/repo/src/fsm/minimize.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/minimize.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/minimize.cpp.o.d"
  "/root/repo/src/fsm/moore.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/moore.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/moore.cpp.o.d"
  "/root/repo/src/fsm/partial_machine.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/partial_machine.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/partial_machine.cpp.o.d"
  "/root/repo/src/fsm/reduce.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/reduce.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/reduce.cpp.o.d"
  "/root/repo/src/fsm/serialize.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/serialize.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/serialize.cpp.o.d"
  "/root/repo/src/fsm/simulate.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/simulate.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/simulate.cpp.o.d"
  "/root/repo/src/fsm/statistics.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/statistics.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/statistics.cpp.o.d"
  "/root/repo/src/fsm/symbols.cpp" "src/fsm/CMakeFiles/rfsm_fsm.dir/symbols.cpp.o" "gcc" "src/fsm/CMakeFiles/rfsm_fsm.dir/symbols.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rfsm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rfsm_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
