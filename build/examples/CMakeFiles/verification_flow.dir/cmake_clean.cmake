file(REMOVE_RECURSE
  "CMakeFiles/verification_flow.dir/verification_flow.cpp.o"
  "CMakeFiles/verification_flow.dir/verification_flow.cpp.o.d"
  "verification_flow"
  "verification_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verification_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
