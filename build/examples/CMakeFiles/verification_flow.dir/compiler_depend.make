# Empty compiler generated dependencies file for verification_flow.
# This may be replaced when dependencies are built.
