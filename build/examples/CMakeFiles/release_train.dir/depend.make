# Empty dependencies file for release_train.
# This may be replaced when dependencies are built.
