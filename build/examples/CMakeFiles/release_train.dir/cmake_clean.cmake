file(REMOVE_RECURSE
  "CMakeFiles/release_train.dir/release_train.cpp.o"
  "CMakeFiles/release_train.dir/release_train.cpp.o.d"
  "release_train"
  "release_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
