file(REMOVE_RECURSE
  "CMakeFiles/hardware_cosim.dir/hardware_cosim.cpp.o"
  "CMakeFiles/hardware_cosim.dir/hardware_cosim.cpp.o.d"
  "hardware_cosim"
  "hardware_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
