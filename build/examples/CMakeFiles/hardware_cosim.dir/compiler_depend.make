# Empty compiler generated dependencies file for hardware_cosim.
# This may be replaced when dependencies are built.
