file(REMOVE_RECURSE
  "CMakeFiles/migration_planner.dir/migration_planner.cpp.o"
  "CMakeFiles/migration_planner.dir/migration_planner.cpp.o.d"
  "migration_planner"
  "migration_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
