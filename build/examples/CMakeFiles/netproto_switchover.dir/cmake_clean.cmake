file(REMOVE_RECURSE
  "CMakeFiles/netproto_switchover.dir/netproto_switchover.cpp.o"
  "CMakeFiles/netproto_switchover.dir/netproto_switchover.cpp.o.d"
  "netproto_switchover"
  "netproto_switchover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netproto_switchover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
