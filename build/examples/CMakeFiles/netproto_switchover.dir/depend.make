# Empty dependencies file for netproto_switchover.
# This may be replaced when dependencies are built.
