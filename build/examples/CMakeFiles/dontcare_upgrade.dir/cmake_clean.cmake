file(REMOVE_RECURSE
  "CMakeFiles/dontcare_upgrade.dir/dontcare_upgrade.cpp.o"
  "CMakeFiles/dontcare_upgrade.dir/dontcare_upgrade.cpp.o.d"
  "dontcare_upgrade"
  "dontcare_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dontcare_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
