# Empty dependencies file for dontcare_upgrade.
# This may be replaced when dependencies are built.
