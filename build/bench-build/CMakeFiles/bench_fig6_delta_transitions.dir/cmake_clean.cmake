file(REMOVE_RECURSE
  "../bench/bench_fig6_delta_transitions"
  "../bench/bench_fig6_delta_transitions.pdb"
  "CMakeFiles/bench_fig6_delta_transitions.dir/bench_fig6_delta_transitions.cpp.o"
  "CMakeFiles/bench_fig6_delta_transitions.dir/bench_fig6_delta_transitions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_delta_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
