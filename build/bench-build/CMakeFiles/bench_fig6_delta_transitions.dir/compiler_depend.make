# Empty compiler generated dependencies file for bench_fig6_delta_transitions.
# This may be replaced when dependencies are built.
