file(REMOVE_RECURSE
  "../bench/bench_fig3_example_machine"
  "../bench/bench_fig3_example_machine.pdb"
  "CMakeFiles/bench_fig3_example_machine.dir/bench_fig3_example_machine.cpp.o"
  "CMakeFiles/bench_fig3_example_machine.dir/bench_fig3_example_machine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_example_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
