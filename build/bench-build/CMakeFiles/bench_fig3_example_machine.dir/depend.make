# Empty dependencies file for bench_fig3_example_machine.
# This may be replaced when dependencies are built.
