# Empty dependencies file for bench_ablation_hardware_scaling.
# This may be replaced when dependencies are built.
