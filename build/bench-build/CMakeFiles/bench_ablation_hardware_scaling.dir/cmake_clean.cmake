file(REMOVE_RECURSE
  "../bench/bench_ablation_hardware_scaling"
  "../bench/bench_ablation_hardware_scaling.pdb"
  "CMakeFiles/bench_ablation_hardware_scaling.dir/bench_ablation_hardware_scaling.cpp.o"
  "CMakeFiles/bench_ablation_hardware_scaling.dir/bench_ablation_hardware_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hardware_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
