# Empty compiler generated dependencies file for bench_ablation_encoding.
# This may be replaced when dependencies are built.
