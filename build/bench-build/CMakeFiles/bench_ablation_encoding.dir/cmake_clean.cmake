file(REMOVE_RECURSE
  "../bench/bench_ablation_encoding"
  "../bench/bench_ablation_encoding.pdb"
  "CMakeFiles/bench_ablation_encoding.dir/bench_ablation_encoding.cpp.o"
  "CMakeFiles/bench_ablation_encoding.dir/bench_ablation_encoding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
