# Empty compiler generated dependencies file for bench_ablation_difficulty.
# This may be replaced when dependencies are built.
