file(REMOVE_RECURSE
  "../bench/bench_ablation_difficulty"
  "../bench/bench_ablation_difficulty.pdb"
  "CMakeFiles/bench_ablation_difficulty.dir/bench_ablation_difficulty.cpp.o"
  "CMakeFiles/bench_ablation_difficulty.dir/bench_ablation_difficulty.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_difficulty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
