# Empty dependencies file for bench_bounds.
# This may be replaced when dependencies are built.
