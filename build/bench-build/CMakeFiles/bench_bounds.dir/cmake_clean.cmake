file(REMOVE_RECURSE
  "../bench/bench_bounds"
  "../bench/bench_bounds.pdb"
  "CMakeFiles/bench_bounds.dir/bench_bounds.cpp.o"
  "CMakeFiles/bench_bounds.dir/bench_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
