file(REMOVE_RECURSE
  "../bench/bench_table1_reconfiguration_sequence"
  "../bench/bench_table1_reconfiguration_sequence.pdb"
  "CMakeFiles/bench_table1_reconfiguration_sequence.dir/bench_table1_reconfiguration_sequence.cpp.o"
  "CMakeFiles/bench_table1_reconfiguration_sequence.dir/bench_table1_reconfiguration_sequence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_reconfiguration_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
