# Empty compiler generated dependencies file for bench_table1_reconfiguration_sequence.
# This may be replaced when dependencies are built.
