file(REMOVE_RECURSE
  "../bench/bench_netproto"
  "../bench/bench_netproto.pdb"
  "CMakeFiles/bench_netproto.dir/bench_netproto.cpp.o"
  "CMakeFiles/bench_netproto.dir/bench_netproto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_netproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
