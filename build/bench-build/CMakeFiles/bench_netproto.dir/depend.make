# Empty dependencies file for bench_netproto.
# This may be replaced when dependencies are built.
