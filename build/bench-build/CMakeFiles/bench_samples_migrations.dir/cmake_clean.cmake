file(REMOVE_RECURSE
  "../bench/bench_samples_migrations"
  "../bench/bench_samples_migrations.pdb"
  "CMakeFiles/bench_samples_migrations.dir/bench_samples_migrations.cpp.o"
  "CMakeFiles/bench_samples_migrations.dir/bench_samples_migrations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_samples_migrations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
