# Empty compiler generated dependencies file for bench_samples_migrations.
# This may be replaced when dependencies are built.
