# Empty compiler generated dependencies file for bench_symbolic_equivalence.
# This may be replaced when dependencies are built.
