file(REMOVE_RECURSE
  "../bench/bench_symbolic_equivalence"
  "../bench/bench_symbolic_equivalence.pdb"
  "CMakeFiles/bench_symbolic_equivalence.dir/bench_symbolic_equivalence.cpp.o"
  "CMakeFiles/bench_symbolic_equivalence.dir/bench_symbolic_equivalence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_symbolic_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
