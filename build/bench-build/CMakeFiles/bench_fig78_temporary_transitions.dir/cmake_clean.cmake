file(REMOVE_RECURSE
  "../bench/bench_fig78_temporary_transitions"
  "../bench/bench_fig78_temporary_transitions.pdb"
  "CMakeFiles/bench_fig78_temporary_transitions.dir/bench_fig78_temporary_transitions.cpp.o"
  "CMakeFiles/bench_fig78_temporary_transitions.dir/bench_fig78_temporary_transitions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig78_temporary_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
