# Empty compiler generated dependencies file for bench_fig78_temporary_transitions.
# This may be replaced when dependencies are built.
