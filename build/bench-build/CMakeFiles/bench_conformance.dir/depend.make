# Empty dependencies file for bench_conformance.
# This may be replaced when dependencies are built.
