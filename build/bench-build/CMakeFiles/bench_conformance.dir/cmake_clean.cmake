file(REMOVE_RECURSE
  "../bench/bench_conformance"
  "../bench/bench_conformance.pdb"
  "CMakeFiles/bench_conformance.dir/bench_conformance.cpp.o"
  "CMakeFiles/bench_conformance.dir/bench_conformance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
