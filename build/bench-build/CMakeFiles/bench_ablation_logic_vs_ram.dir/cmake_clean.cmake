file(REMOVE_RECURSE
  "../bench/bench_ablation_logic_vs_ram"
  "../bench/bench_ablation_logic_vs_ram.pdb"
  "CMakeFiles/bench_ablation_logic_vs_ram.dir/bench_ablation_logic_vs_ram.cpp.o"
  "CMakeFiles/bench_ablation_logic_vs_ram.dir/bench_ablation_logic_vs_ram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_logic_vs_ram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
