# Empty compiler generated dependencies file for bench_ablation_logic_vs_ram.
# This may be replaced when dependencies are built.
