file(REMOVE_RECURSE
  "../bench/bench_fig5_hardware"
  "../bench/bench_fig5_hardware.pdb"
  "CMakeFiles/bench_fig5_hardware.dir/bench_fig5_hardware.cpp.o"
  "CMakeFiles/bench_fig5_hardware.dir/bench_fig5_hardware.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
