# Empty compiler generated dependencies file for bench_fig5_hardware.
# This may be replaced when dependencies are built.
