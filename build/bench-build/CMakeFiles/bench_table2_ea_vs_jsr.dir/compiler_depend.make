# Empty compiler generated dependencies file for bench_table2_ea_vs_jsr.
# This may be replaced when dependencies are built.
