file(REMOVE_RECURSE
  "../bench/bench_table2_ea_vs_jsr"
  "../bench/bench_table2_ea_vs_jsr.pdb"
  "CMakeFiles/bench_table2_ea_vs_jsr.dir/bench_table2_ea_vs_jsr.cpp.o"
  "CMakeFiles/bench_table2_ea_vs_jsr.dir/bench_table2_ea_vs_jsr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ea_vs_jsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
