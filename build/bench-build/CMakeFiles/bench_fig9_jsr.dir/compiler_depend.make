# Empty compiler generated dependencies file for bench_fig9_jsr.
# This may be replaced when dependencies are built.
