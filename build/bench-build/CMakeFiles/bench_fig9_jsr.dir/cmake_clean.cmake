file(REMOVE_RECURSE
  "../bench/bench_fig9_jsr"
  "../bench/bench_fig9_jsr.pdb"
  "CMakeFiles/bench_fig9_jsr.dir/bench_fig9_jsr.cpp.o"
  "CMakeFiles/bench_fig9_jsr.dir/bench_fig9_jsr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_jsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
