file(REMOVE_RECURSE
  "../bench/bench_ablation_ea"
  "../bench/bench_ablation_ea.pdb"
  "CMakeFiles/bench_ablation_ea.dir/bench_ablation_ea.cpp.o"
  "CMakeFiles/bench_ablation_ea.dir/bench_ablation_ea.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
