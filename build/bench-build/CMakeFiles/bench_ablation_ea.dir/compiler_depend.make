# Empty compiler generated dependencies file for bench_ablation_ea.
# This may be replaced when dependencies are built.
