# Empty compiler generated dependencies file for bench_ablation_context_swap.
# This may be replaced when dependencies are built.
