file(REMOVE_RECURSE
  "../bench/bench_ablation_context_swap"
  "../bench/bench_ablation_context_swap.pdb"
  "CMakeFiles/bench_ablation_context_swap.dir/bench_ablation_context_swap.cpp.o"
  "CMakeFiles/bench_ablation_context_swap.dir/bench_ablation_context_swap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_context_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
