// Cross-planner consistency: relationships that must hold between the
// planner families on the same instance.
//
//  * The state-space optimal search subsumes walks-only programs, so it is
//    never beaten by the output-only Held-Karp planner on output-only
//    instances.
//  * The peephole optimizer applied to any planner's output never breaks
//    the ordering relations.
//  * All planners agree on *what* machine results (the target), differing
//    only in the path taken.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "core/local_search.hpp"
#include "core/optimal.hpp"
#include "core/partial.hpp"
#include "core/peephole.hpp"
#include "core/planners.hpp"
#include "fsm/equivalence.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "gen/samples.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

/// Output-only random instance.
MigrationContext outputOnlyInstance(std::uint64_t seed, int flips) {
  Rng rng(seed);
  RandomMachineSpec spec;
  spec.stateCount = 6;
  spec.inputCount = 2;
  spec.outputCount = 3;
  const Machine source = randomMachine(spec, rng);
  // Flip outputs of `flips` distinct cells.
  std::vector<SymbolId> next, out;
  for (SymbolId s = 0; s < source.stateCount(); ++s)
    for (SymbolId i = 0; i < source.inputCount(); ++i) {
      next.push_back(source.next(i, s));
      out.push_back(source.output(i, s));
    }
  std::vector<std::size_t> cells(out.size());
  for (std::size_t k = 0; k < cells.size(); ++k) cells[k] = k;
  rng.shuffle(cells);
  for (int k = 0; k < flips; ++k) {
    auto& o = out[cells[static_cast<std::size_t>(k)]];
    o = (o + 1) % source.outputCount();
  }
  const Machine target(source.name() + "_recolor", source.inputs(),
                       source.outputs(), source.states(),
                       source.resetState(), std::move(next), std::move(out));
  return MigrationContext(source, target);
}

class CrossPlannerTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossPlannerTest, OptimalSearchSubsumesOutputOnlyOptimal) {
  const MigrationContext context = outputOnlyInstance(
      static_cast<std::uint64_t>(GetParam()) * 1423 + 5, 4);
  ASSERT_TRUE(isOutputOnlyMigration(context));
  const auto heldKarp = planOutputOnlyOptimal(context);
  const auto search = planOptimalSearch(context);
  ASSERT_TRUE(heldKarp.has_value());
  ASSERT_TRUE(search.has_value());
  EXPECT_TRUE(validateProgram(context, *heldKarp).valid);
  EXPECT_TRUE(validateProgram(context, *search).valid);
  // Walks-only programs are a subset of the search's move family.
  EXPECT_LE(search->length(), heldKarp->length());
}

TEST_P(CrossPlannerTest, PeepholePreservesOrderingRelations) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1511 + 3);
  RandomMachineSpec spec;
  spec.stateCount = 6;
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 4;
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);

  const ReconfigurationProgram jsr = planJsr(context);
  const ReconfigurationProgram jsrOpt = optimizeProgram(context, jsr).program;
  const auto optimal = planOptimalSearch(context);
  ASSERT_TRUE(optimal.has_value());
  // The optimizer shortens or preserves; the optimum still lower-bounds it.
  EXPECT_LE(jsrOpt.length(), jsr.length());
  EXPECT_LE(optimal->length(), jsrOpt.length());
  EXPECT_TRUE(validateProgram(context, jsrOpt).valid);
}

TEST_P(CrossPlannerTest, AllPlannersRealizeTheSameMachine) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1613 + 9);
  RandomMachineSpec spec;
  spec.stateCount = 5;
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 3;
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);

  EvolutionConfig config;
  config.generations = 20;
  Rng eaRng(1);
  const ReconfigurationProgram programs[] = {
      planJsr(context), planGreedy(context),
      planEvolutionary(context, config, eaRng).program,
      planTwoOpt(context).program};
  for (const ReconfigurationProgram& z : programs) {
    MutableMachine machine = replayProgram(context, z);
    ASSERT_TRUE(machine.matchesTarget());
    // The realized machine is behaviourally the target, whatever the path.
    EXPECT_TRUE(areEquivalent(machine.extractTarget(), target));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossPlannerTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace rfsm
