// Tests for the fixed-size thread pool: every index runs exactly once,
// serial fallbacks, exception propagation, re-entrancy, and a stress run
// (pair with -fsanitize=thread in the CI TSan job).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace rfsm {
namespace {

TEST(ThreadPool, JobsResolvesAsDocumented) {
  EXPECT_EQ(ThreadPool(1).jobs(), 1);
  EXPECT_EQ(ThreadPool(3).jobs(), 3);
  EXPECT_EQ(ThreadPool(0).jobs(), ThreadPool::hardwareJobs());
  EXPECT_EQ(ThreadPool(-5).jobs(), ThreadPool::hardwareJobs());
}

TEST(ThreadPool, HardwareJobsIsPositive) {
  EXPECT_GE(ThreadPool::hardwareJobs(), 1);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> runs(kCount);
  pool.parallelFor(kCount, [&](std::size_t k) { runs[k].fetch_add(1); });
  for (std::size_t k = 0; k < kCount; ++k) EXPECT_EQ(runs[k].load(), 1);
}

TEST(ThreadPool, CountZeroIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleJobRunsInlineOnTheCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallelFor(seen.size(),
                   [&](std::size_t k) { seen[k] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, SingleElementBatchRunsInline) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallelFor(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, FirstExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallelFor(100,
                                [](std::size_t k) {
                                  if (k == 37)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::atomic<int> total{0};
  pool.parallelFor(50, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, ReentrantCallRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner{0};
  pool.parallelFor(8, [&](std::size_t) {
    // Nested parallelFor from a body must not deadlock; it runs inline.
    pool.parallelFor(4, [&](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 8 * 4);
}

TEST(ThreadPool, ManySmallBatchesStress) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    const std::size_t count = static_cast<std::size_t>(round % 7);
    pool.parallelFor(count, [&](std::size_t k) {
      sum.fetch_add(k + 1, std::memory_order_relaxed);
    });
  }
  std::uint64_t expected = 0;
  for (int round = 0; round < 200; ++round)
    for (std::size_t k = 0; k < static_cast<std::size_t>(round % 7); ++k)
      expected += k + 1;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, FreeFunctionSerialWhenPoolIsNull) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  parallelFor(nullptr, seen.size(),
              [&](std::size_t k) { seen[k] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, FreeFunctionUsesPoolWhenGiven) {
  ThreadPool pool(4);
  std::vector<int> out(64, 0);
  parallelFor(&pool, out.size(),
              [&](std::size_t k) { out[k] = static_cast<int>(k) * 2; });
  for (std::size_t k = 0; k < out.size(); ++k)
    EXPECT_EQ(out[k], static_cast<int>(k) * 2);
}

}  // namespace
}  // namespace rfsm
