// Unit and property tests for src/graph: digraph bookkeeping, BFS shortest
// paths, SCC decomposition, reachability.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/digraph.hpp"
#include "graph/scc.hpp"
#include "graph/shortest_path.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

Digraph ringGraph(int n) {
  Digraph g(n);
  for (int v = 0; v < n; ++v) g.addEdge(v, (v + 1) % n);
  return g;
}

TEST(Digraph, NodeAndEdgeCounts) {
  Digraph g(3);
  EXPECT_EQ(g.nodeCount(), 3);
  g.addEdge(0, 1);
  g.addEdge(1, 2, 7);
  EXPECT_EQ(g.edgeCount(), 2);
  EXPECT_EQ(g.addNode(), 3);
  EXPECT_EQ(g.nodeCount(), 4);
}

TEST(Digraph, OutEdgesKeepInsertionOrderAndTags) {
  Digraph g(2);
  g.addEdge(0, 1, 5);
  g.addEdge(0, 0, 9);
  const auto& edges = g.outEdges(0);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].to, 1);
  EXPECT_EQ(edges[0].tag, 5u);
  EXPECT_EQ(edges[1].to, 0);
  EXPECT_EQ(edges[1].tag, 9u);
}

TEST(Digraph, RemoveEdgesByTag) {
  Digraph g(2);
  g.addEdge(0, 1, 5);
  g.addEdge(0, 1, 6);
  EXPECT_EQ(g.removeEdgesByTag(0, 5), 1);
  EXPECT_EQ(g.edgeCount(), 1);
  EXPECT_EQ(g.outEdges(0)[0].tag, 6u);
}

TEST(Digraph, RejectsOutOfRangeEdges) {
  Digraph g(2);
  EXPECT_THROW(g.addEdge(0, 2), ContractError);
  EXPECT_THROW(g.addEdge(-1, 0), ContractError);
}

TEST(Digraph, ClearEdges) {
  Digraph g = ringGraph(4);
  g.clearEdges();
  EXPECT_EQ(g.edgeCount(), 0);
  EXPECT_EQ(g.nodeCount(), 4);
}

TEST(Bfs, DistancesOnRing) {
  const Digraph g = ringGraph(5);
  const BfsResult bfs = bfsFrom(g, 0);
  EXPECT_EQ(bfs.distance[0], 0);
  EXPECT_EQ(bfs.distance[1], 1);
  EXPECT_EQ(bfs.distance[4], 4);
}

TEST(Bfs, UnreachableMarked) {
  Digraph g(3);
  g.addEdge(0, 1);
  const BfsResult bfs = bfsFrom(g, 0);
  EXPECT_EQ(bfs.distance[2], kUnreachable);
  EXPECT_EQ(bfs.predecessor[2], -1);
}

TEST(Bfs, PredecessorsReconstructPath) {
  Digraph g(4);
  g.addEdge(0, 1, 10);
  g.addEdge(1, 2, 11);
  g.addEdge(0, 3, 12);
  const auto path = shortestPath(g, 0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<int>{0, 1, 2}));
}

TEST(Bfs, SelfPathIsSingleton) {
  const Digraph g = ringGraph(3);
  const auto path = shortestPath(g, 1, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, std::vector<int>{1});
}

TEST(Bfs, NoPathReturnsNullopt) {
  Digraph g(2);
  g.addEdge(1, 0);
  EXPECT_FALSE(shortestPath(g, 0, 1).has_value());
}

TEST(Bfs, AllPairsMatchesSingleSource) {
  Rng rng(3);
  Digraph g(8);
  for (int e = 0; e < 16; ++e)
    g.addEdge(static_cast<int>(rng.below(8)), static_cast<int>(rng.below(8)));
  const auto matrix = allPairsDistances(g);
  for (int u = 0; u < 8; ++u)
    EXPECT_EQ(matrix[static_cast<std::size_t>(u)], bfsFrom(g, u).distance);
}

TEST(Scc, RingIsOneComponent) {
  const SccResult scc = stronglyConnectedComponents(ringGraph(6));
  EXPECT_EQ(scc.componentCount, 1);
}

TEST(Scc, ChainIsAllSingletons) {
  Digraph g(4);
  for (int v = 0; v + 1 < 4; ++v) g.addEdge(v, v + 1);
  const SccResult scc = stronglyConnectedComponents(g);
  EXPECT_EQ(scc.componentCount, 4);
}

TEST(Scc, TwoCyclesBridged) {
  // 0<->1 -> 2<->3 : two components; Tarjan ids are reverse topological.
  Digraph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  g.addEdge(3, 2);
  const SccResult scc = stronglyConnectedComponents(g);
  EXPECT_EQ(scc.componentCount, 2);
  EXPECT_EQ(scc.componentOf[0], scc.componentOf[1]);
  EXPECT_EQ(scc.componentOf[2], scc.componentOf[3]);
  EXPECT_GE(scc.componentOf[0], scc.componentOf[2]);
}

TEST(Scc, AllReachableFrom) {
  EXPECT_TRUE(allReachableFrom(ringGraph(4), 2));
  Digraph g(3);
  g.addEdge(0, 1);
  EXPECT_FALSE(allReachableFrom(g, 0));
}

/// Property sweep over random graphs.
class GraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphPropertyTest, SccAgreesWithMutualReachability) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 3 + static_cast<int>(rng.below(10));
  Digraph g(n);
  const int edges =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(3 * n))) + n / 2;
  for (int e = 0; e < edges; ++e)
    g.addEdge(static_cast<int>(rng.below(static_cast<std::uint64_t>(n))),
              static_cast<int>(rng.below(static_cast<std::uint64_t>(n))));

  const SccResult scc = stronglyConnectedComponents(g);
  const auto dist = allPairsDistances(g);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      const bool mutual =
          dist[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] !=
              kUnreachable &&
          dist[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] !=
              kUnreachable;
      const bool sameComponent =
          scc.componentOf[static_cast<std::size_t>(u)] ==
          scc.componentOf[static_cast<std::size_t>(v)];
      EXPECT_EQ(mutual, sameComponent) << "u=" << u << " v=" << v;
    }
  }
}

TEST_P(GraphPropertyTest, BfsDistancesAreEdgeConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const int n = 3 + static_cast<int>(rng.below(10));
  Digraph g(n);
  for (int e = 0; e < 2 * n; ++e)
    g.addEdge(static_cast<int>(rng.below(static_cast<std::uint64_t>(n))),
              static_cast<int>(rng.below(static_cast<std::uint64_t>(n))));
  const BfsResult bfs = bfsFrom(g, 0);
  for (int u = 0; u < n; ++u) {
    if (bfs.distance[static_cast<std::size_t>(u)] == kUnreachable) continue;
    for (const auto& edge : g.outEdges(u)) {
      ASSERT_NE(bfs.distance[static_cast<std::size_t>(edge.to)], kUnreachable);
      EXPECT_LE(bfs.distance[static_cast<std::size_t>(edge.to)],
                bfs.distance[static_cast<std::size_t>(u)] + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, GraphPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace rfsm
