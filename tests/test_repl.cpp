// The hot-standby replication plane, bottom to top: the SessionRepl* wire
// frames, the shared reconnect-backoff ladder, the repl-link chaos
// profiles, epoch fencing and warm replay inside SessionService
// (replAppend / replInstall / promotion), async-lag visibility in the
// Replicator, and — the headline contract — an in-process primary quorum-
// shipping to a real rfsmd standby, failing over, and producing a
// byte-identical transcript while the deposed primary is fenced.
//
// The rfsmd binary path comes from RFSM_RFSMD_BUILD_PATH (a CMake
// target-file definition) or the RFSM_RFSMD environment override.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/repl.hpp"
#include "service/session.hpp"
#include "util/chaos.hpp"
#include "util/check.hpp"
#include "util/fsio.hpp"
#include "util/ipc.hpp"
#include "util/metrics.hpp"

namespace rfsm {
namespace {

using namespace std::chrono_literals;
using service::MutationRecord;
using service::PlanOutcome;
using service::ReplAck;
using service::Replicator;
using service::ReplicatorOptions;
using service::SessionConfig;
using service::SessionEngine;
using service::SessionService;
using service::SessionServiceOptions;
using service::SessionStatus;

std::string rfsmdPath() {
  if (const char* env = std::getenv("RFSM_RFSMD")) return env;
#ifdef RFSM_RFSMD_BUILD_PATH
  return RFSM_RFSMD_BUILD_PATH;
#else
  return "rfsmd";
#endif
}

/// A throwaway directory, removed with its contents on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    char name[] = "/tmp/rfsm-repl-XXXXXX";
    path = mkdtemp(name);
  }
  ~TempDir() {
    for (const std::string& file : fsio::listDir(path))
      ::unlink((path + "/" + file).c_str());
    ::rmdir(path.c_str());
  }
};

SessionConfig smallConfig(const std::string& tenant = "t",
                          const std::string& name = "s") {
  SessionConfig config;
  config.tenant = tenant;
  config.name = name;
  config.stateCount = 6;
  config.inputCount = 2;
  config.outputCount = 2;
  config.seed = 7;
  config.planner = "jsr";
  return config;
}

MutationRecord mut(std::uint64_t seq, bool defer = false,
                   std::uint32_t deltas = 3) {
  MutationRecord rec;
  rec.seq = seq;
  rec.deltaCount = deltas;
  rec.mutationSeed = 500 + seq;
  rec.defer = defer;
  return rec;
}

service::SessionOpenRequest openRequestFor(const SessionConfig& config) {
  service::SessionOpenRequest request;
  request.tenant = config.tenant;
  request.name = config.name;
  request.priority = static_cast<std::uint32_t>(config.priority);
  request.weight = static_cast<std::uint32_t>(config.weight);
  request.planner = config.planner;
  request.stateCount = config.stateCount;
  request.inputCount = config.inputCount;
  request.outputCount = config.outputCount;
  request.seed = config.seed;
  return request;
}

service::SessionMutateRequest mutateRequestFor(const SessionConfig& config,
                                               const MutationRecord& rec) {
  service::SessionMutateRequest request;
  request.tenant = config.tenant;
  request.name = config.name;
  request.seq = rec.seq;
  request.deltaCount = rec.deltaCount;
  request.newStateCount = rec.newStateCount;
  request.mutationSeed = rec.mutationSeed;
  request.defer = rec.defer;
  return request;
}

/// What the primary's Replicator ships for one accepted record.
service::SessionReplAppendRequest replRequestFor(const SessionConfig& config,
                                                 std::uint64_t epoch,
                                                 const MutationRecord& rec) {
  service::SessionReplAppendRequest request;
  request.tenant = config.tenant;
  request.name = config.name;
  request.priority = static_cast<std::uint32_t>(config.priority);
  request.weight =
      static_cast<std::uint32_t>(std::max(1, static_cast<int>(config.weight)));
  request.planner = config.planner;
  request.stateCount = config.stateCount;
  request.inputCount = config.inputCount;
  request.outputCount = config.outputCount;
  request.seed = config.seed;
  request.epoch = epoch;
  request.seq = rec.seq;
  request.deltaCount = rec.deltaCount;
  request.newStateCount = rec.newStateCount;
  request.mutationSeed = rec.mutationSeed;
  request.defer = rec.defer;
  return request;
}

/// Polls `status` until the warm replay has caught its journal (applied ==
/// lastAccepted) or the deadline passes.
service::SessionStatusResponse awaitCaughtUp(SessionService& store,
                                             const SessionConfig& config) {
  service::SessionStatusRequest probe{config.tenant, config.name};
  service::SessionStatusResponse status;
  for (int spin = 0; spin < 400; ++spin) {
    status = store.status(probe);
    if (status.status == SessionStatus::kOk &&
        status.applied == status.lastAccepted)
      return status;
    std::this_thread::sleep_for(10ms);
  }
  return status;
}

// --- Wire frames ----------------------------------------------------------

TEST(ReplProtocol, AppendFramesRoundTrip) {
  service::SessionReplAppendRequest request;
  request.tenant = "acme";
  request.name = "press";
  request.priority = 2;
  request.weight = 3;
  request.planner = "astar";
  request.stateCount = 9;
  request.inputCount = 3;
  request.outputCount = 2;
  request.seed = 41;
  request.epoch = 6;
  request.seq = 17;
  request.deltaCount = 5;
  request.newStateCount = 11;
  request.mutationSeed = 999;
  request.defer = true;
  const auto back = service::decodeSessionReplAppendRequest(
      service::encodeSessionReplAppendRequest(request));
  EXPECT_EQ(back.tenant, "acme");
  EXPECT_EQ(back.name, "press");
  EXPECT_EQ(back.priority, 2u);
  EXPECT_EQ(back.weight, 3u);
  EXPECT_EQ(back.planner, "astar");
  EXPECT_EQ(back.stateCount, 9);
  EXPECT_EQ(back.inputCount, 3);
  EXPECT_EQ(back.outputCount, 2);
  EXPECT_EQ(back.seed, 41u);
  EXPECT_EQ(back.epoch, 6u);
  EXPECT_EQ(back.seq, 17u);
  EXPECT_EQ(back.deltaCount, 5u);
  EXPECT_EQ(back.newStateCount, 11u);
  EXPECT_EQ(back.mutationSeed, 999u);
  EXPECT_TRUE(back.defer);

  service::SessionReplAppendResponse response;
  response.status = SessionStatus::kStaleEpoch;
  response.error = "stale";
  response.epoch = 7;
  response.lastAccepted = 16;
  const auto responseBack = service::decodeSessionReplAppendResponse(
      service::encodeSessionReplAppendResponse(response));
  EXPECT_EQ(responseBack.status, SessionStatus::kStaleEpoch);
  EXPECT_EQ(responseBack.error, "stale");
  EXPECT_EQ(responseBack.epoch, 7u);
  EXPECT_EQ(responseBack.lastAccepted, 16u);
  EXPECT_STREQ(toString(SessionStatus::kStaleEpoch), "STALE_EPOCH");
}

TEST(ReplProtocol, SnapshotFramesRoundTrip) {
  service::SessionReplSnapshotRequest request;
  request.tenant = "acme";
  request.name = "press";
  request.epoch = 4;
  request.snapshot = std::string("rfsm-snap\x00\x01\xff"
                                 "bytes",
                                 16);
  const auto back = service::decodeSessionReplSnapshotRequest(
      service::encodeSessionReplSnapshotRequest(request));
  EXPECT_EQ(back.tenant, "acme");
  EXPECT_EQ(back.name, "press");
  EXPECT_EQ(back.epoch, 4u);
  EXPECT_EQ(back.snapshot, request.snapshot);  // binary-clean

  service::SessionReplSnapshotResponse response;
  response.status = SessionStatus::kOk;
  response.epoch = 4;
  response.lastAccepted = 12;
  const auto responseBack = service::decodeSessionReplSnapshotResponse(
      service::encodeSessionReplSnapshotResponse(response));
  EXPECT_EQ(responseBack.status, SessionStatus::kOk);
  EXPECT_EQ(responseBack.epoch, 4u);
  EXPECT_EQ(responseBack.lastAccepted, 12u);
}

TEST(ReplProtocol, StatusFramesRoundTrip) {
  service::SessionStatusRequest request;
  request.tenant = "acme";
  request.name = "press";
  const auto back = service::decodeSessionStatusRequest(
      service::encodeSessionStatusRequest(request));
  EXPECT_EQ(back.tenant, "acme");
  EXPECT_EQ(back.name, "press");

  service::SessionStatusResponse response;
  response.status = SessionStatus::kOk;
  response.role = "standby";
  response.epoch = 3;
  response.lastAccepted = 9;
  response.applied = 8;
  const auto responseBack = service::decodeSessionStatusResponse(
      service::encodeSessionStatusResponse(response));
  EXPECT_EQ(responseBack.status, SessionStatus::kOk);
  EXPECT_EQ(responseBack.role, "standby");
  EXPECT_EQ(responseBack.epoch, 3u);
  EXPECT_EQ(responseBack.lastAccepted, 9u);
  EXPECT_EQ(responseBack.applied, 8u);
}

TEST(ReplProtocol, PeekTypeIdentifiesReplFrames) {
  using service::MessageType;
  EXPECT_EQ(service::peekType(service::encodeSessionReplAppendRequest({})),
            MessageType::kSessionReplAppendRequest);
  EXPECT_EQ(service::peekType(service::encodeSessionReplAppendResponse({})),
            MessageType::kSessionReplAppendResponse);
  EXPECT_EQ(service::peekType(service::encodeSessionReplSnapshotRequest({})),
            MessageType::kSessionReplSnapshotRequest);
  EXPECT_EQ(service::peekType(service::encodeSessionReplSnapshotResponse({})),
            MessageType::kSessionReplSnapshotResponse);
  EXPECT_EQ(service::peekType(service::encodeSessionStatusRequest({})),
            MessageType::kSessionStatusRequest);
  EXPECT_EQ(service::peekType(service::encodeSessionStatusResponse({})),
            MessageType::kSessionStatusResponse);
}

// --- Backoff ladder and ack modes -----------------------------------------

TEST(ReplBackoff, DeterministicDoublingCappedWithBoundedJitter) {
  // Same (attempt, salt) always sleeps the same amount.
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt)
    EXPECT_EQ(service::backoffDelay(attempt, "client-a"),
              service::backoffDelay(attempt, "client-a"));
  // The ladder doubles from 20ms and the jitter stays within a quarter of
  // the pre-jitter delay: attempt k's base is min(20 << k, cap).
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    const auto base = std::min<std::int64_t>(
        20ll << attempt, service::kReconnectBackoffCap.count());
    const auto delay = service::backoffDelay(attempt, "client-a").count();
    EXPECT_GE(delay, base) << "attempt " << attempt;
    EXPECT_LE(delay, base + base / 4) << "attempt " << attempt;
  }
  // Different salts fan the fleet out: at least one of the first attempts
  // draws a different jitter for a different salt.
  bool spread = false;
  for (std::uint32_t attempt = 0; attempt < 8 && !spread; ++attempt)
    spread = service::backoffDelay(attempt, "client-a") !=
             service::backoffDelay(attempt, "client-b");
  EXPECT_TRUE(spread);
}

TEST(ReplAckMode, ParsesKnownModesAndRejectsUnknown) {
  EXPECT_EQ(service::replAckFromString("quorum"), ReplAck::kQuorum);
  EXPECT_EQ(service::replAckFromString("async"), ReplAck::kAsync);
  EXPECT_STREQ(service::toString(ReplAck::kQuorum), "quorum");
  EXPECT_STREQ(service::toString(ReplAck::kAsync), "async");
  EXPECT_THROW(service::replAckFromString("eventual"), Error);
}

// --- Chaos profiles for the replication link ------------------------------

TEST(ReplChaos, ProfilesTargetOnlyTheReplLink) {
  const auto light = chaos::profileByName("repl-light");
  ASSERT_TRUE(light.has_value());
  EXPECT_GT(light->replResetProbability, 0.0);
  EXPECT_GT(light->replConnectResetProbability, 0.0);
  // The client-facing wire and the disk stay quiet under repl-*.
  EXPECT_EQ(light->resetProbability, 0.0);
  EXPECT_EQ(light->connectResetProbability, 0.0);
  EXPECT_EQ(light->diskErrorProbability, 0.0);

  const auto storm = chaos::profileByName("repl-storm");
  ASSERT_TRUE(storm.has_value());
  EXPECT_GT(storm->replResetProbability, light->replResetProbability);

  // `full` exercises every plane at light rates, repl link included.
  const auto full = chaos::profileByName("full");
  ASSERT_TRUE(full.has_value());
  EXPECT_GT(full->replResetProbability, 0.0);
  EXPECT_GT(full->resetProbability, 0.0);
  EXPECT_GT(full->diskErrorProbability, 0.0);
}

TEST(ReplChaos, ScopedReplLinkTagsTheCallingThreadOnly) {
  EXPECT_FALSE(chaos::onReplLink());
  {
    chaos::ScopedReplLink outer;
    EXPECT_TRUE(chaos::onReplLink());
    {
      chaos::ScopedReplLink inner;  // nesting is fine
      EXPECT_TRUE(chaos::onReplLink());
    }
    EXPECT_TRUE(chaos::onReplLink());
    // Another thread is untagged even while this one is inside the scope.
    bool other = true;
    std::thread([&other] { other = chaos::onReplLink(); }).join();
    EXPECT_FALSE(other);
  }
  EXPECT_FALSE(chaos::onReplLink());
}

// --- Standby semantics (in-process SessionService) ------------------------

TEST(ReplStandby, WarmReplaysShippedRecordsAndReportsStatus) {
  SessionService standby(SessionServiceOptions{});
  const SessionConfig config = smallConfig();
  for (std::uint64_t k = 1; k <= 5; ++k) {
    const auto response = standby.replAppend(replRequestFor(config, 1, mut(k)));
    ASSERT_EQ(response.status, SessionStatus::kOk)
        << "seq " << k << ": " << response.error;
    EXPECT_EQ(response.lastAccepted, k);
    EXPECT_EQ(response.epoch, 1u);
  }
  const auto status = awaitCaughtUp(standby, config);
  ASSERT_EQ(status.status, SessionStatus::kOk);
  EXPECT_EQ(status.role, "standby");
  EXPECT_EQ(status.epoch, 1u);
  EXPECT_EQ(status.lastAccepted, 5u);
  EXPECT_EQ(status.applied, 5u);  // warm replay caught up, not just journaled
}

TEST(ReplStandby, PromotionOnClientResumeBumpsEpochAndMatchesReference) {
  SessionService standby(SessionServiceOptions{});
  const SessionConfig config = smallConfig();
  for (std::uint64_t k = 1; k <= 5; ++k)
    ASSERT_EQ(standby.replAppend(replRequestFor(config, 1, mut(k))).status,
              SessionStatus::kOk);
  awaitCaughtUp(standby, config);

  // Failover: the first client open(resume) promotes the standby.
  const std::uint64_t failoversBefore =
      metrics::counter(metrics::kServiceFailovers).value();
  const auto resumed = standby.open(openRequestFor(config));
  ASSERT_EQ(resumed.status, SessionStatus::kOk);
  EXPECT_EQ(resumed.lastApplied, 5u);
  EXPECT_EQ(metrics::counter(metrics::kServiceFailovers).value(),
            failoversBefore + 1);
  auto status = standby.status({config.tenant, config.name});
  EXPECT_EQ(status.role, "primary");
  EXPECT_EQ(status.epoch, 2u);

  // The promoted transcript continues exactly where an uninterrupted
  // engine would be.
  SessionEngine reference(config);
  for (std::uint64_t k = 1; k <= 5; ++k) reference.apply(mut(k));
  const PlanOutcome expected = reference.apply(mut(6));
  const auto response = standby.mutate(mutateRequestFor(config, mut(6)));
  ASSERT_EQ(response.status, SessionStatus::kOk) << response.error;
  EXPECT_EQ(response.program, expected.program);

  // A deposed primary still shipping epoch 1 is refused and counted.
  const std::uint64_t staleBefore =
      metrics::counter(metrics::kServiceStaleEpochRejected).value();
  const auto stale = standby.replAppend(replRequestFor(config, 1, mut(7)));
  EXPECT_EQ(stale.status, SessionStatus::kStaleEpoch);
  EXPECT_EQ(stale.epoch, 2u);  // tells the deposed primary how far behind
  EXPECT_EQ(metrics::counter(metrics::kServiceStaleEpochRejected).value(),
            staleBefore + 1);
}

TEST(ReplStandby, EqualEpochAgainstAPrimaryIsRefused) {
  // Two daemons both believing they are the epoch-1 primary must not
  // cross-replicate: an append at the receiver's own epoch is only valid
  // when the receiver is a standby.
  SessionService store(SessionServiceOptions{});
  const SessionConfig config = smallConfig();
  ASSERT_EQ(store.open(openRequestFor(config)).status, SessionStatus::kOk);
  ASSERT_EQ(store.mutate(mutateRequestFor(config, mut(1))).status,
            SessionStatus::kOk);
  const auto refused = store.replAppend(replRequestFor(config, 1, mut(2)));
  EXPECT_EQ(refused.status, SessionStatus::kStaleEpoch);
}

TEST(ReplStandby, HigherEpochDemotesAPrimaryAndForcesResync) {
  SessionService store(SessionServiceOptions{});
  const SessionConfig config = smallConfig();
  ASSERT_EQ(store.open(openRequestFor(config)).status, SessionStatus::kOk);
  for (std::uint64_t k = 1; k <= 2; ++k)
    ASSERT_EQ(store.mutate(mutateRequestFor(config, mut(k))).status,
              SessionStatus::kOk);
  // A newer primary (epoch 3) starts shipping: this replica adopts the
  // epoch and demotes itself to standby — and because its own accepted
  // suffix may contain records the new primary never saw (seq equality
  // proves nothing across epochs), it discards its replay state and
  // reports a gap so the new primary resyncs it from scratch.
  const auto shipped = store.replAppend(replRequestFor(config, 3, mut(3)));
  ASSERT_EQ(shipped.status, SessionStatus::kBadSequence) << shipped.error;
  EXPECT_EQ(shipped.epoch, 3u);        // the epoch was adopted...
  EXPECT_EQ(shipped.lastAccepted, 0u); // ...and the suffix discarded
  // The shipper heals the gap the usual way: snapshot (none here — the
  // primary never rotated, its whole history is the tail) + tail replay.
  for (std::uint64_t k = 1; k <= 3; ++k)
    ASSERT_EQ(store.replAppend(replRequestFor(config, 3, mut(k))).status,
              SessionStatus::kOk);
  const auto status = awaitCaughtUp(store, config);
  EXPECT_EQ(status.role, "standby");
  EXPECT_EQ(status.epoch, 3u);
  EXPECT_EQ(status.lastAccepted, 3u);
}

TEST(ReplStandby, EpochAdoptionDiscardsDivergentSuffix) {
  // The async-failover divergence leg: a deposed primary (or a standby it
  // reached that the promotion winner did not) holds records at seqs the
  // new primary assigned to *different* mutations.  Those phantoms must
  // not survive demotion as "duplicates" — after resync the transcript
  // must match the new primary's history, byte for byte.
  SessionService store(SessionServiceOptions{});
  const SessionConfig config = smallConfig();
  for (std::uint64_t k = 1; k <= 2; ++k)
    ASSERT_EQ(store.replAppend(replRequestFor(config, 1, mut(k))).status,
              SessionStatus::kOk);
  MutationRecord phantom = mut(3);
  phantom.mutationSeed = 424242;  // the record the new primary never saw
  ASSERT_EQ(store.replAppend(replRequestFor(config, 1, phantom)).status,
            SessionStatus::kOk);
  awaitCaughtUp(store, config);

  // The new primary (epoch 2) ships ITS seq-3 record: same seq, different
  // content.  Before the fix this answered kOk as an idempotent duplicate
  // and the phantom survived; now the standby discards and gap-reports.
  ASSERT_EQ(store.replAppend(replRequestFor(config, 2, mut(3))).status,
            SessionStatus::kBadSequence);
  for (std::uint64_t k = 1; k <= 3; ++k)
    ASSERT_EQ(store.replAppend(replRequestFor(config, 2, mut(k))).status,
              SessionStatus::kOk);
  awaitCaughtUp(store, config);

  // Promote and continue: the transcript must equal a reference that only
  // ever saw the new primary's records.
  ASSERT_EQ(store.open(openRequestFor(config)).status, SessionStatus::kOk);
  SessionEngine reference(config);
  for (std::uint64_t k = 1; k <= 3; ++k) reference.apply(mut(k));
  const PlanOutcome expected = reference.apply(mut(4));
  const auto response = store.mutate(mutateRequestFor(config, mut(4)));
  ASSERT_EQ(response.status, SessionStatus::kOk) << response.error;
  EXPECT_EQ(response.program, expected.program);
}

TEST(ReplStandby, StandbyGraceGatesPromotionWhilePrimaryIsLive) {
  // With --standby-grace set, a standby that heard from its primary inside
  // the window refuses client-triggered promotion: a transport blip
  // between client and primary must not depose a healthy primary.
  SessionServiceOptions gated;
  gated.standbyGrace = std::chrono::milliseconds(60000);
  SessionService standby(gated);
  const SessionConfig config = smallConfig();
  ASSERT_EQ(standby.replAppend(replRequestFor(config, 1, mut(1))).status,
            SessionStatus::kOk);
  awaitCaughtUp(standby, config);
  const auto refusedOpen = standby.open(openRequestFor(config));
  EXPECT_EQ(refusedOpen.status, SessionStatus::kFailed);
  EXPECT_NE(refusedOpen.error.find("standby"), std::string::npos)
      << refusedOpen.error;
  EXPECT_EQ(standby.mutate(mutateRequestFor(config, mut(2))).status,
            SessionStatus::kFailed);
  EXPECT_EQ(standby.status({config.tenant, config.name}).role, "standby");

  // Once the primary has been silent past the grace window, the same
  // client contact IS the failover signal and promotion proceeds.
  SessionServiceOptions brief;
  brief.standbyGrace = std::chrono::milliseconds(50);
  SessionService patient(brief);
  ASSERT_EQ(patient.replAppend(replRequestFor(config, 1, mut(1))).status,
            SessionStatus::kOk);
  awaitCaughtUp(patient, config);
  std::this_thread::sleep_for(150ms);
  ASSERT_EQ(patient.open(openRequestFor(config)).status, SessionStatus::kOk);
  EXPECT_EQ(patient.status({config.tenant, config.name}).role, "primary");
}

TEST(ReplStandby, DuplicatesAreIdempotentAndGapsRejected) {
  SessionService standby(SessionServiceOptions{});
  const SessionConfig config = smallConfig();
  ASSERT_EQ(standby.replAppend(replRequestFor(config, 1, mut(1))).status,
            SessionStatus::kOk);
  // A duplicate (retry after a lost reply) is acked without re-journaling.
  const auto duplicate = standby.replAppend(replRequestFor(config, 1, mut(1)));
  EXPECT_EQ(duplicate.status, SessionStatus::kOk);
  EXPECT_EQ(duplicate.lastAccepted, 1u);
  // A gap tells the primary to resync via snapshot install.
  const auto gap = standby.replAppend(replRequestFor(config, 1, mut(5)));
  EXPECT_EQ(gap.status, SessionStatus::kBadSequence);
  EXPECT_NE(gap.error.find("expected seq 2"), std::string::npos) << gap.error;
}

TEST(ReplStandby, SnapshotInstallSeedsAStandbyForTailReplay) {
  // A primary old enough to have rotated its journal resyncs a gapped
  // standby with its on-disk snapshot; the standby then replays only the
  // un-snapshotted tail — promotion cost is O(tail), not O(history).
  const SessionConfig config = smallConfig();
  TempDir primaryDir;
  std::string snapshotBytes;
  std::uint64_t snapshotCovers = 0;
  {
    SessionServiceOptions options;
    options.stateDir = primaryDir.path;
    options.snapshotEvery = 2;
    SessionService primary(options);
    ASSERT_EQ(primary.open(openRequestFor(config)).status, SessionStatus::kOk);
    for (std::uint64_t k = 1; k <= 4; ++k)
      ASSERT_EQ(primary.mutate(mutateRequestFor(config, mut(k))).status,
                SessionStatus::kOk);
    const auto bytes = fsio::readFileIfExists(primaryDir.path + "/" +
                                              config.tenant + "@" +
                                              config.name + ".snap");
    ASSERT_TRUE(bytes.has_value()) << "no snapshot after 4 mutations";
    snapshotBytes = *bytes;
  }

  TempDir standbyDir;
  SessionServiceOptions standbyOptions;
  standbyOptions.stateDir = standbyDir.path;
  SessionService standby(standbyOptions);
  service::SessionReplSnapshotRequest install;
  install.tenant = config.tenant;
  install.name = config.name;
  install.epoch = 2;
  install.snapshot = snapshotBytes;
  const auto installed = standby.replInstall(install);
  ASSERT_EQ(installed.status, SessionStatus::kOk) << installed.error;
  snapshotCovers = installed.lastAccepted;
  ASSERT_GE(snapshotCovers, 2u);
  ASSERT_LE(snapshotCovers, 4u);

  // Tail replay from the install point, then promote and continue; the
  // result must match an engine that lived through all of it.
  for (std::uint64_t k = snapshotCovers + 1; k <= 6; ++k)
    ASSERT_EQ(standby.replAppend(replRequestFor(config, 2, mut(k))).status,
              SessionStatus::kOk);
  awaitCaughtUp(standby, config);
  ASSERT_EQ(standby.open(openRequestFor(config)).status, SessionStatus::kOk);
  EXPECT_EQ(standby.status({config.tenant, config.name}).epoch, 3u);

  SessionEngine reference(config);
  for (std::uint64_t k = 1; k <= 6; ++k) reference.apply(mut(k));
  const PlanOutcome expected = reference.apply(mut(7));
  const auto response = standby.mutate(mutateRequestFor(config, mut(7)));
  ASSERT_EQ(response.status, SessionStatus::kOk) << response.error;
  EXPECT_EQ(response.program, expected.program);

  // A corrupted snapshot must never install.
  SessionService fresh(SessionServiceOptions{});
  install.snapshot[install.snapshot.size() / 2] ^= 0x40;
  install.tenant = "poisoned";
  EXPECT_NE(fresh.replInstall(install).status, SessionStatus::kOk);
}

// --- Replicator transport (no standby listening) --------------------------

ReplicatorOptions unreachableOptions(ReplAck ack) {
  ReplicatorOptions options;
  options.replicas.push_back(
      ipc::parseEndpoint("/tmp/rfsm-repl-nobody-home.sock"));
  options.ack = ack;
  options.retryFor = 200ms;
  options.readTimeout = 500ms;
  options.maxQueue = 2;
  return options;
}

TEST(ReplicatorTransport, SyncShipSurfacesAnUnreachableStandby) {
  Replicator replicator(
      unreachableOptions(ReplAck::kQuorum),
      [](const std::string&, const std::string&) {
        return std::optional<Replicator::ResyncBundle>{};
      },
      [](const std::string&, const std::string&, std::uint64_t) {});
  const auto result =
      replicator.shipSync(replRequestFor(smallConfig(), 1, mut(1)));
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.staleEpoch);
  EXPECT_NE(result.error.find("unreachable"), std::string::npos)
      << result.error;
}

TEST(ReplicatorTransport, AsyncLagIsVisibleAndQueuesAreBounded) {
  Replicator replicator(
      unreachableOptions(ReplAck::kAsync),
      [](const std::string&, const std::string&) {
        return std::optional<Replicator::ResyncBundle>{};
      },
      [](const std::string&, const std::string&, std::uint64_t) {});
  const SessionConfig config = smallConfig();
  int accepted = 0;
  int refused = 0;
  for (std::uint64_t k = 1; k <= 6; ++k) {
    if (replicator.shipAsync(replRequestFor(config, 1, mut(k))))
      ++accepted;
    else
      ++refused;
  }
  // maxQueue = 2 bounds the loss window: most of the burst is refused.
  EXPECT_GE(accepted, 1);
  EXPECT_GE(refused, 1);
  // The un-shipped backlog is visible as lag, and ages.
  EXPECT_GE(replicator.lagRecords(), 1u);
  std::this_thread::sleep_for(60ms);
  EXPECT_GT(replicator.lagMs(), 0);
  replicator.refreshGauges();
  EXPECT_GE(metrics::gauge(metrics::kServiceReplLagRecords).value(), 1);
}

TEST(ReplicatorTransport, ShutdownInterruptsTheRetryLadder) {
  // An async worker stuck in the retry ladder against a dead standby must
  // not hold ~Replicator for the whole retryFor budget: the stop flag
  // interrupts both the backoff sleep and the next loop iteration.
  ReplicatorOptions options = unreachableOptions(ReplAck::kAsync);
  options.retryFor = 5000ms;
  const auto started = std::chrono::steady_clock::now();
  {
    Replicator replicator(
        options,
        [](const std::string&, const std::string&) {
          return std::optional<Replicator::ResyncBundle>{};
        },
        [](const std::string&, const std::string&, std::uint64_t) {});
    ASSERT_TRUE(replicator.shipAsync(replRequestFor(smallConfig(), 1, mut(1))));
    std::this_thread::sleep_for(50ms);  // let the worker enter the ladder
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(elapsed, 2000ms)
      << "destructor stalled "
      << std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count()
      << "ms against a 5000ms retry budget";
}

// --- Failover against a real standby daemon -------------------------------

struct Daemon {
  pid_t pid = -1;

  void start(const std::string& socketPath, const std::string& stateDir) {
    pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      const std::string binary = rfsmdPath();
      ::execl(binary.c_str(), binary.c_str(), "--socket", socketPath.c_str(),
              "--state-dir", stateDir.c_str(), "--workers", "1",
              "--snapshot-every", "2", static_cast<char*>(nullptr));
      _exit(127);
    }
    for (int spin = 0; spin < 200; ++spin) {
      if (::access(socketPath.c_str(), F_OK) == 0) return;
      std::this_thread::sleep_for(25ms);
    }
    FAIL() << "rfsmd did not come up on " << socketPath;
  }

  ~Daemon() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

TEST(ReplFailover, QuorumShipsToADaemonStandbyWhichPromotesByteIdentical) {
  const SessionConfig config = smallConfig("ha", "stream");
  const std::string socketPath =
      "/tmp/rfsm-repl-" + std::to_string(getpid()) + "-standby.sock";
  TempDir standbyDir;
  Daemon standby;
  standby.start(socketPath, standbyDir.path);

  // An in-process primary quorum-replicating to the daemon.
  TempDir primaryDir;
  SessionServiceOptions primaryOptions;
  primaryOptions.stateDir = primaryDir.path;
  primaryOptions.replicas.push_back(ipc::parseEndpoint(socketPath));
  primaryOptions.replAck = ReplAck::kQuorum;
  SessionService primary(primaryOptions);
  ASSERT_EQ(primary.open(openRequestFor(config)).status, SessionStatus::kOk);

  SessionEngine reference(config);
  std::vector<std::pair<std::uint64_t, std::string>> expected, transcript;
  for (std::uint64_t k = 1; k <= 4; ++k) {
    const auto response = primary.mutate(mutateRequestFor(config, mut(k)));
    ASSERT_EQ(response.status, SessionStatus::kOk) << response.error;
    transcript.emplace_back(k, response.program);
  }

  // Quorum means the standby journaled every acked record *before* the
  // ack — its high-water mark cannot trail the primary's.
  service::SessionStream::Options streamOptions;
  streamOptions.endpoint = ipc::parseEndpoint(socketPath);
  streamOptions.retryFor = 10s;
  service::SessionStream stream(streamOptions);
  service::SessionStatusResponse status;
  for (int spin = 0; spin < 400; ++spin) {
    status = stream.status({config.tenant, config.name});
    if (status.status == SessionStatus::kOk && status.applied == 4u) break;
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_EQ(status.status, SessionStatus::kOk) << status.error;
  EXPECT_EQ(status.role, "standby");
  EXPECT_EQ(status.lastAccepted, 4u);
  EXPECT_EQ(status.applied, 4u);

  // Failover: the client re-opens against the standby, which promotes and
  // serves the rest of the stream.
  const auto resumed = stream.open(openRequestFor(config));
  ASSERT_EQ(resumed.status, SessionStatus::kOk);
  ASSERT_EQ(resumed.lastApplied, 4u);
  for (std::uint64_t k = 5; k <= 6; ++k) {
    const auto response = stream.mutate(mutateRequestFor(config, mut(k)));
    ASSERT_EQ(response.status, SessionStatus::kOk) << response.error;
    transcript.emplace_back(k, response.program);
  }
  const auto promoted = stream.status({config.tenant, config.name});
  EXPECT_EQ(promoted.role, "primary");
  EXPECT_EQ(promoted.epoch, 2u);

  // The failed-over transcript equals the uninterrupted reference.
  for (std::uint64_t k = 1; k <= 6; ++k) {
    const PlanOutcome outcome = reference.apply(mut(k));
    ASSERT_TRUE(outcome.planned);
    expected.emplace_back(k, outcome.program);
  }
  ASSERT_EQ(transcript.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k)
    EXPECT_EQ(transcript[k].second, expected[k].second)
        << "plan at seq " << expected[k].first << " diverged after failover";

  // The deposed primary's next quorum ship hits the promoted standby's
  // higher epoch: the client is refused (kStaleEpoch), nothing is acked,
  // and the session stays fenced.
  const auto fencedResponse = primary.mutate(mutateRequestFor(config, mut(5)));
  EXPECT_EQ(fencedResponse.status, SessionStatus::kStaleEpoch)
      << fencedResponse.error;
  EXPECT_EQ(primary.mutate(mutateRequestFor(config, mut(5))).status,
            SessionStatus::kStaleEpoch);  // fence is sticky
  ::unlink(socketPath.c_str());
}

}  // namespace
}  // namespace rfsm
