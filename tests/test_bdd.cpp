// Tests for the BDD package: canonicity, boolean algebra (verified
// exhaustively against truth tables), quantification, renaming, counting —
// and the symbolic equivalence checker cross-validated against the
// explicit one.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/symbolic_fsm.hpp"
#include "fsm/analysis.hpp"
#include "fsm/builder.hpp"
#include "fsm/equivalence.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "gen/samples.hpp"
#include "util/rng.hpp"

namespace rfsm::bdd {
namespace {

TEST(Bdd, TerminalsAndVariables) {
  BddManager m(3);
  EXPECT_EQ(m.variable(0), m.variable(0));  // hash-consed
  EXPECT_NE(m.variable(0), m.variable(1));
  EXPECT_TRUE(m.evaluate(BddManager::kTrue, {false, false, false}));
  EXPECT_FALSE(m.evaluate(BddManager::kFalse, {true, true, true}));
  EXPECT_TRUE(m.evaluate(m.variable(1), {false, true, false}));
  EXPECT_FALSE(m.evaluate(m.notVariable(1), {false, true, false}));
}

TEST(Bdd, CanonicityMakesEqualityStructural) {
  BddManager m(3);
  const Node a = m.variable(0);
  const Node b = m.variable(1);
  // (a & b) == !(!a | !b)  (De Morgan) as node handles.
  EXPECT_EQ(m.andOf(a, b), m.notOf(m.orOf(m.notOf(a), m.notOf(b))));
  // a ^ b == (a | b) & !(a & b).
  EXPECT_EQ(m.xorOf(a, b),
            m.andOf(m.orOf(a, b), m.notOf(m.andOf(a, b))));
}

TEST(Bdd, OperatorsMatchTruthTablesExhaustively) {
  constexpr int kVars = 4;
  BddManager m(kVars);
  Rng rng(7);
  // Build a few random functions as ORs of random cubes and verify every
  // operator pointwise over all 2^4 assignments.
  auto randomFunction = [&]() {
    Node f = BddManager::kFalse;
    for (int c = 0; c < 3; ++c) {
      std::vector<std::pair<int, bool>> literals;
      for (int v = 0; v < kVars; ++v)
        if (rng.chance(0.6)) literals.emplace_back(v, rng.chance(0.5));
      f = m.orOf(f, m.cube(literals));
    }
    return f;
  };
  for (int round = 0; round < 10; ++round) {
    const Node f = randomFunction();
    const Node g = randomFunction();
    for (int bits = 0; bits < (1 << kVars); ++bits) {
      std::vector<bool> assignment(kVars);
      for (int v = 0; v < kVars; ++v) assignment[v] = (bits >> v) & 1;
      const bool fv = m.evaluate(f, assignment);
      const bool gv = m.evaluate(g, assignment);
      ASSERT_EQ(m.evaluate(m.andOf(f, g), assignment), fv && gv);
      ASSERT_EQ(m.evaluate(m.orOf(f, g), assignment), fv || gv);
      ASSERT_EQ(m.evaluate(m.xorOf(f, g), assignment), fv != gv);
      ASSERT_EQ(m.evaluate(m.xnorOf(f, g), assignment), fv == gv);
      ASSERT_EQ(m.evaluate(m.notOf(f), assignment), !fv);
    }
  }
}

TEST(Bdd, SatCount) {
  BddManager m(4);
  EXPECT_EQ(m.satCount(BddManager::kTrue), 16u);
  EXPECT_EQ(m.satCount(BddManager::kFalse), 0u);
  EXPECT_EQ(m.satCount(m.variable(2)), 8u);
  EXPECT_EQ(m.satCount(m.andOf(m.variable(0), m.variable(3))), 4u);
  EXPECT_EQ(m.satCount(m.xorOf(m.variable(0), m.variable(1))), 8u);
}

TEST(Bdd, ExistsQuantifiesCorrectly) {
  BddManager m(3);
  const Node f = m.andOf(m.variable(0), m.variable(1));
  // Exists x1: x0 & x1  ==  x0.
  EXPECT_EQ(m.exists(f, {1}), m.variable(0));
  // Exists x0, x1: x0 & x1  ==  true.
  EXPECT_EQ(m.exists(f, {0, 1}), BddManager::kTrue);
  // Quantifying an absent variable is the identity.
  EXPECT_EQ(m.exists(f, {2}), f);
}

TEST(Bdd, RenameShiftsVariables) {
  BddManager m(4);
  const Node f = m.andOf(m.variable(1), m.variable(3));
  const Node g = m.rename(f, {{1, 0}, {3, 2}});
  EXPECT_EQ(g, m.andOf(m.variable(0), m.variable(2)));
  // Non-monotone maps are rejected.
  EXPECT_THROW(m.rename(f, {{1, 2}, {3, 0}}), ContractError);
}

TEST(Bdd, CubeBuildsConjunction) {
  BddManager m(3);
  const Node c = m.cube({{0, true}, {2, false}});
  EXPECT_TRUE(m.evaluate(c, {true, false, false}));
  EXPECT_TRUE(m.evaluate(c, {true, true, false}));
  EXPECT_FALSE(m.evaluate(c, {true, false, true}));
  EXPECT_FALSE(m.evaluate(c, {false, false, false}));
  EXPECT_THROW(m.cube({{0, true}, {0, false}}), ContractError);
  EXPECT_EQ(m.cube({}), BddManager::kTrue);
}

// ---------------------------------------------------------------------------
// Symbolic FSM analyses.
// ---------------------------------------------------------------------------

TEST(SymbolicFsm, PaperMachinesEquivalence) {
  const auto same =
      checkEquivalenceSymbolic(onesDetector(), onesDetector());
  EXPECT_TRUE(same.equivalent);
  EXPECT_GT(same.iterations, 0);
  const auto different =
      checkEquivalenceSymbolic(onesDetector(), zerosDetector());
  EXPECT_FALSE(different.equivalent);
}

TEST(SymbolicFsm, ReachablePairsOfSelfProductIsReachableSet) {
  const Machine m = counterMachine(5);
  EXPECT_EQ(symbolicReachableStates(m), reachableStates(m).size());
  const Machine hdlc = sampleMachine("hdlc_v1");
  EXPECT_EQ(symbolicReachableStates(hdlc), reachableStates(hdlc).size());
}

TEST(SymbolicFsm, MismatchedAlphabetsRejected) {
  EXPECT_THROW(checkEquivalenceSymbolic(onesDetector(), counterMachine(2)),
               FsmError);
}

/// Cross-validation sweep: the symbolic checker and the explicit product
/// BFS agree on random machine pairs (equivalent and mutated).
class SymbolicPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicPropertyTest, AgreesWithExplicitChecker) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 607 + 13);
  RandomMachineSpec spec;
  spec.stateCount = 2 + static_cast<int>(rng.below(8));
  spec.inputCount = 1 + static_cast<int>(rng.below(3));
  spec.outputCount = 2;
  const Machine a = randomMachine(spec, rng);

  // Identical copy: must be equivalent.
  EXPECT_TRUE(checkEquivalenceSymbolic(a, a.withName("copy")).equivalent);

  // Mutants: verdicts must agree with the explicit checker.
  for (int round = 0; round < 4; ++round) {
    MutationSpec mutation;
    mutation.deltaCount = 1 + static_cast<int>(rng.below(3));
    const Machine b = mutateMachine(a, mutation, rng);
    const bool explicitVerdict = areEquivalent(a, b);
    const auto symbolic = checkEquivalenceSymbolic(a, b);
    EXPECT_EQ(symbolic.equivalent, explicitVerdict) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SymbolicPropertyTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace rfsm::bdd
