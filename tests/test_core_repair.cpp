// Tests for repair planning: interrupted migrations, fault injection, and
// the property that repair converges from any intermediate state.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "core/repair.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

/// Applies `program` to a copy of `machine` and checks it completes the
/// migration (realizes M', terminates in S0').
bool repairWorks(const MutableMachine& machine,
                 const ReconfigurationProgram& program) {
  MutableMachine copy = machine;
  copy.applyProgram(program);
  return copy.matchesTarget() && copy.state() == machine.context().targetReset();
}

TEST(Repair, FreshMachineRepairEqualsFullMigration) {
  const MigrationContext context(example41Source(), example41Target());
  const MutableMachine machine(context);
  const auto remaining = remainingDeltas(machine);
  // Before any step, the remaining set is exactly the delta set.
  EXPECT_EQ(static_cast<int>(remaining.size()), context.deltaCount());
  const ReconfigurationProgram repair = planRepair(machine);
  EXPECT_TRUE(repairWorks(machine, repair));
}

TEST(Repair, CompletedMachineNeedsNoSteps) {
  const MigrationContext context(example41Source(), example41Target());
  MutableMachine machine(context);
  machine.applyProgram(planJsr(context));
  ASSERT_TRUE(machine.matchesTarget());
  EXPECT_TRUE(remainingDeltas(machine).empty());
  const ReconfigurationProgram repair = planRepair(machine);
  EXPECT_EQ(repair.length(), 0);
}

TEST(Repair, InterruptedMigrationIsCompleted) {
  const MigrationContext context(example41Source(), example41Target());
  const ReconfigurationProgram z = planJsr(context);
  // Cut the program at every prefix and repair from there.
  for (int cut = 0; cut <= z.length(); ++cut) {
    MutableMachine machine(context);
    for (int k = 0; k < cut; ++k)
      machine.applyStep(z.steps[static_cast<std::size_t>(k)]);
    const ReconfigurationProgram repair = planRepair(machine);
    EXPECT_TRUE(repairWorks(machine, repair)) << "cut at " << cut;
    EXPECT_LE(repair.length(),
              3 * (static_cast<int>(remainingDeltas(machine).size()) + 1));
  }
}

TEST(Repair, FaultInjectionIsDetectedAndRepaired) {
  const MigrationContext context(onesDetector(), zerosDetector());
  MutableMachine machine(context);
  machine.applyProgram(planJsr(context));
  ASSERT_TRUE(machine.matchesTarget());

  // A radiation-style upset flips the (1, S1) cell.
  const Transition before = injectFault(
      machine, context.inputs().at("1"), context.states().at("S1"),
      context.states().at("S0"), context.outputs().at("1"));
  EXPECT_EQ(before.to, context.states().at("S1"));  // previous contents
  EXPECT_FALSE(machine.matchesTarget());
  EXPECT_EQ(remainingDeltas(machine).size(), 1u);

  const ReconfigurationProgram repair = planRepair(machine);
  EXPECT_LE(repair.length(), 3 * 2);
  EXPECT_TRUE(repairWorks(machine, repair));
}

TEST(Repair, FaultOnUnspecifiedCellReportsNoSymbol) {
  const MigrationContext context(example41Source(), example41Target());
  MutableMachine machine(context);
  const Transition before = injectFault(
      machine, context.inputs().at("0"), context.states().at("S3"),
      context.states().at("S0"), context.outputs().at("0"));
  EXPECT_EQ(before.to, kNoSymbol);
  EXPECT_EQ(before.output, kNoSymbol);
  EXPECT_TRUE(machine.isSpecified(context.inputs().at("0"),
                                  context.states().at("S3")));
}

/// Property sweep: random interruption points and random faults always
/// repair to a valid M'.
class RepairPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RepairPropertyTest, RandomInterruptionsRepair) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 13);
  RandomMachineSpec spec;
  spec.stateCount = 4 + static_cast<int>(rng.below(8));
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 3 + static_cast<int>(rng.below(6));
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);

  const ReconfigurationProgram z = planGreedy(context);
  const int cut = static_cast<int>(rng.below(
      static_cast<std::uint64_t>(z.length()) + 1));
  MutableMachine machine(context);
  for (int k = 0; k < cut; ++k)
    machine.applyStep(z.steps[static_cast<std::size_t>(k)]);
  EXPECT_TRUE(repairWorks(machine, planRepair(machine)));
}

TEST_P(RepairPropertyTest, RandomFaultsRepair) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 3);
  RandomMachineSpec spec;
  spec.stateCount = 4 + static_cast<int>(rng.below(8));
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 4;
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);

  MutableMachine machine(context);
  machine.applyProgram(planJsr(context));
  ASSERT_TRUE(machine.matchesTarget());
  // Three random upsets.
  for (int f = 0; f < 3; ++f) {
    injectFault(machine,
                static_cast<SymbolId>(rng.below(
                    static_cast<std::uint64_t>(context.inputs().size()))),
                static_cast<SymbolId>(rng.below(
                    static_cast<std::uint64_t>(context.states().size()))),
                static_cast<SymbolId>(rng.below(
                    static_cast<std::uint64_t>(context.states().size()))),
                static_cast<SymbolId>(rng.below(
                    static_cast<std::uint64_t>(context.outputs().size()))));
  }
  EXPECT_TRUE(repairWorks(machine, planRepair(machine)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RepairPropertyTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace rfsm
