// Tests for W-method conformance testing, including the mutation-detection
// guarantee (every mutant with the same state budget is caught iff it is
// behaviourally different).
#include <gtest/gtest.h>

#include <algorithm>

#include "fsm/builder.hpp"
#include "fsm/conformance.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/minimize.hpp"
#include "fsm/simulate.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(Conformance, CharacterizingSetSeparatesAllStatePairs) {
  const Machine m = onesDetector();
  const auto w = characterizingSet(m);
  ASSERT_FALSE(w.empty());
  // Every pair (here just S0/S1) must differ on some word of W.
  bool separated = false;
  for (const Word& word : w) {
    Simulator a(m), b(m);
    // Start b in S1 by pushing a '1' first (S0 -1-> S1)... instead compare
    // output sequences from both states directly.
    SymbolId sa = m.states().at("S0");
    SymbolId sb = m.states().at("S1");
    for (const SymbolId i : word) {
      if (m.output(i, sa) != m.output(i, sb)) {
        separated = true;
        break;
      }
      sa = m.next(i, sa);
      sb = m.next(i, sb);
    }
    if (separated) break;
  }
  EXPECT_TRUE(separated);
}

TEST(Conformance, NonMinimalMachineRejected) {
  MachineBuilder b("dup");
  b.addInput("0");
  b.addOutput("x");
  b.addState("A");
  b.addState("B");
  b.setResetState("A");
  b.addTransition("0", "A", "B", "x");
  b.addTransition("0", "B", "A", "x");  // A and B indistinguishable
  EXPECT_THROW(characterizingSet(b.build()), FsmError);
  EXPECT_THROW(wMethodSuite(b.build()), FsmError);
}

TEST(Conformance, TransitionCoverTouchesEveryTransition) {
  const Machine m = counterMachine(4);
  const auto p = transitionCover(m);
  // |P| = 1 (empty) + |S| * |I| access words (deduplicated).
  EXPECT_GE(static_cast<int>(p.size()), m.stateCount());
  // The empty word is present.
  EXPECT_TRUE(std::any_of(p.begin(), p.end(),
                          [](const Word& w) { return w.empty(); }));
}

TEST(Conformance, EquivalentImplementationPasses) {
  const Machine spec = minimize(sequenceDetector("1011")).machine;
  const ConformanceSuite suite = wMethodSuite(spec);
  EXPECT_GT(suite.testCount(), 0);
  EXPECT_GT(suite.totalInputs(), 0);
  const ConformanceResult result =
      runConformanceSuite(spec, spec.withName("copy"), suite);
  EXPECT_TRUE(result.pass);
  EXPECT_FALSE(result.failingTest.has_value());
}

TEST(Conformance, OutputMutantCaught) {
  const Machine spec = minimize(onesDetector()).machine;
  const ConformanceSuite suite = wMethodSuite(spec);
  // Flip the output of (1, S1).
  MachineBuilder b("mutant");
  b.addInput("0");
  b.addInput("1");
  b.addOutput("0");
  b.addOutput("1");
  b.setResetState("S0");
  b.addTransition("1", "S0", "S1", "0");
  b.addTransition("1", "S1", "S1", "0");  // was 1
  b.addTransition("0", "S0", "S0", "0");
  b.addTransition("0", "S1", "S0", "0");
  const ConformanceResult result =
      runConformanceSuite(spec, b.build(), suite);
  EXPECT_FALSE(result.pass);
  ASSERT_TRUE(result.failingTest.has_value());
  EXPECT_GE(result.mismatchPosition, 0);
}

TEST(Conformance, MissingInputRejected) {
  const Machine spec = minimize(onesDetector()).machine;
  const ConformanceSuite suite = wMethodSuite(spec);
  EXPECT_THROW(runConformanceSuite(spec, counterMachine(2), suite), FsmError);
}

/// The W-method guarantee, exercised with the workload mutator: a mutant
/// with the same state count passes iff it is behaviourally equivalent.
class WMethodPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WMethodPropertyTest, SuiteVerdictMatchesEquivalence) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 523 + 31);
  RandomMachineSpec genSpec;
  genSpec.stateCount = 3 + static_cast<int>(rng.below(5));
  genSpec.inputCount = 2;
  genSpec.outputCount = 2;
  const Machine raw = randomMachine(genSpec, rng);
  const Machine spec = minimize(raw).machine;

  const ConformanceSuite suite = wMethodSuite(spec);

  // The spec itself passes.
  EXPECT_TRUE(runConformanceSuite(spec, raw, suite).pass);

  // Mutants with the same state budget: verdict must equal equivalence.
  const int cells = spec.stateCount() * spec.inputCount();
  for (int round = 0; round < 5; ++round) {
    MutationSpec mutation;
    mutation.deltaCount = 1 + static_cast<int>(rng.below(
        static_cast<std::uint64_t>(std::min(3, cells))));
    const Machine mutant = mutateMachine(spec, mutation, rng);
    const bool equivalent = areEquivalent(spec, mutant);
    const ConformanceResult result =
        runConformanceSuite(spec, mutant, suite);
    EXPECT_EQ(result.pass, equivalent) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WMethodPropertyTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace rfsm
