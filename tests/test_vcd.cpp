// Tests for the VCD waveform recorder.
#include <gtest/gtest.h>

#include "core/jsr.hpp"
#include "core/sequence.hpp"
#include "gen/families.hpp"
#include "rtl/components.hpp"
#include "rtl/datapath.hpp"
#include "rtl/vcd.hpp"

namespace rfsm::rtl {
namespace {

TEST(Vcd, IdentifierEncoding) {
  EXPECT_EQ(vcdIdentifier(0), "!");
  EXPECT_EQ(vcdIdentifier(1), "\"");
  EXPECT_EQ(vcdIdentifier(93), "~");
  EXPECT_EQ(vcdIdentifier(94), "!\"");  // two-character rollover
}

TEST(Vcd, BinaryLiteral) {
  EXPECT_EQ(vcdBinary(5, 3), "b101");
  EXPECT_EQ(vcdBinary(0, 2), "b00");
  EXPECT_EQ(vcdBinary(1, 1), "b1");
}

TEST(Vcd, RecordsOnlyChanges) {
  Circuit c;
  const WireId a = c.addWire(1, "a");
  const WireId b = c.addWire(4, "bus");
  VcdRecorder recorder(c, {a, b});
  c.poke(a, 0);
  c.poke(b, 3);
  recorder.sample(0);
  recorder.sample(1);  // nothing changed: no new change records
  c.poke(a, 1);
  recorder.sample(2);
  EXPECT_EQ(recorder.sampleCount(), 3);

  const std::string vcd = recorder.toString();
  EXPECT_NE(vcd.find("$var wire 1 ! a $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 4 \" bus $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#2"), std::string::npos);
  // Time 1 produced no changes, so no "#1" section.
  EXPECT_EQ(vcd.find("#1\n"), std::string::npos);
  // Scalar change uses the short form "1!".
  EXPECT_NE(vcd.find("\n1!"), std::string::npos);
  // Vector change uses the b-form with a space.
  EXPECT_NE(vcd.find("b0011 \""), std::string::npos);
}

TEST(Vcd, DefaultRecordsAllWires) {
  Circuit c;
  c.addWire(1, "x");
  c.addWire(2, "y");
  VcdRecorder recorder(c, {});
  recorder.sample(0);
  const std::string vcd = recorder.toString();
  EXPECT_NE(vcd.find(" x $end"), std::string::npos);
  EXPECT_NE(vcd.find(" y $end"), std::string::npos);
}

TEST(Vcd, RejectsTimeTravel) {
  Circuit c;
  c.addWire(1, "x");
  VcdRecorder recorder(c, {});
  recorder.sample(5);
  EXPECT_THROW(recorder.sample(4), ContractError);
}

TEST(Vcd, CapturesDatapathReconfiguration) {
  const MigrationContext context(onesDetector(), zerosDetector());
  const ReconfigurationProgram z = planJsr(context);
  ReconfigurableFsmDatapath hw(context);
  hw.loadSequence(sequenceFromProgram(z));
  VcdRecorder recorder(hw.circuit(), {});

  hw.startReconfiguration();
  std::uint64_t time = 0;
  hw.clock(0);
  recorder.sample(time++);
  while (hw.reconfiguring()) {
    hw.clock(0);
    recorder.sample(time++);
  }
  const std::string vcd = recorder.toString();
  // The named Fig. 5 signals appear in the header and toggle in the body.
  EXPECT_NE(vcd.find(" rec_active $end"), std::string::npos);
  EXPECT_NE(vcd.find(" s $end"), std::string::npos);
  EXPECT_NE(vcd.find(" we $end"), std::string::npos);
  EXPECT_NE(vcd.find("#1"), std::string::npos);
  EXPECT_EQ(recorder.sampleCount(), z.length() + 1);
}

}  // namespace
}  // namespace rfsm::rtl
