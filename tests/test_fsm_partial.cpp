// Tests for incompletely specified machines: specification bookkeeping,
// completion, the containment relation, and state reduction with closure.
#include <gtest/gtest.h>

#include "fsm/builder.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/minimize.hpp"
#include "fsm/partial_machine.hpp"
#include "fsm/reduce.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

/// A small 4-state ISFSM that reduces: states B and C are compatible (their
/// specifications never conflict), A and D are not.
PartialMachine sampleSpec() {
  SymbolTable inputs({"0", "1"});
  SymbolTable outputs({"x", "y"});
  SymbolTable states({"A", "B", "C", "D"});
  PartialMachine spec("spec", inputs, outputs, states, states.at("A"));
  const SymbolId i0 = 0, i1 = 1, x = 0, y = 1;
  const SymbolId A = 0, B = 1, C = 2, D = 3;
  spec.specify(i0, A, B, x);
  spec.specify(i1, A, C, x);
  spec.specify(i0, B, D, y);
  // (i1, B) fully unspecified.
  spec.specify(i0, C, D, kNoSymbol);  // next specified, output don't care
  spec.specify(i1, C, kNoSymbol, y);  // output specified, next don't care
  spec.specify(i0, D, A, x);
  spec.specify(i1, D, A, y);
  return spec;
}

TEST(PartialMachine, SpecifyAndQuery) {
  const PartialMachine spec = sampleSpec();
  EXPECT_EQ(spec.next(0, 0), 1);                 // (0, A) -> B
  EXPECT_EQ(spec.output(0, 2), kNoSymbol);       // (0, C) output open
  EXPECT_EQ(spec.next(1, 2), kNoSymbol);         // (1, C) next open
  EXPECT_FALSE(spec.isComplete());
  EXPECT_GT(spec.unspecifiedCount(), 0);
}

TEST(PartialMachine, ConflictingSpecifyThrows) {
  PartialMachine spec = sampleSpec();
  EXPECT_THROW(spec.specify(0, 0, 2, kNoSymbol), FsmError);  // B vs C
  EXPECT_THROW(spec.specify(0, 1, kNoSymbol, 0), FsmError);  // y vs x
  // Respecifying identical values is fine.
  EXPECT_NO_THROW(spec.specify(0, 0, 1, 0));
}

TEST(PartialMachine, FromCompleteMachineIsComplete) {
  const PartialMachine spec(onesDetector());
  EXPECT_TRUE(spec.isComplete());
  EXPECT_EQ(spec.unspecifiedCount(), 0);
}

TEST(PartialMachine, CompletionsAreCompleteAndHonourSpec) {
  const PartialMachine spec = sampleSpec();
  const Machine selfLoops = spec.completeWithSelfLoops(0);
  EXPECT_TRUE(implementsSpecification(selfLoops, spec));
  Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    const Machine random = spec.completeRandomly(rng);
    EXPECT_TRUE(implementsSpecification(random, spec)) << round;
  }
}

TEST(PartialMachine, ContainmentDetectsViolations) {
  const PartialMachine spec = sampleSpec();
  // A machine that emits the wrong output at (0, A).
  MachineBuilder b("bad");
  b.addInput("0");
  b.addInput("1");
  b.addOutput("x");
  b.addOutput("y");
  b.addState("Z");
  b.setResetState("Z");
  b.addTransition("0", "Z", "Z", "y");  // spec wants x at the reset state
  b.addTransition("1", "Z", "Z", "x");
  EXPECT_FALSE(implementsSpecification(b.build(), spec));
}

TEST(Compatibility, MatrixSeparatesConflicts) {
  const PartialMachine spec = sampleSpec();
  const auto compatible = compatibilityMatrix(spec);
  // B emits y at input 0, A emits x there -> incompatible.
  EXPECT_FALSE(compatible[0][1]);
  // B and C never conflict.
  EXPECT_TRUE(compatible[1][2]);
  // Diagonal is compatible, matrix symmetric.
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(compatible[s][s]);
    for (std::size_t t = 0; t < 4; ++t)
      EXPECT_EQ(compatible[s][t], compatible[t][s]);
  }
}

TEST(Compatibility, SuccessorConflictPropagates) {
  // P -0-> A, Q -0-> B where A/B have an output conflict; P/Q have none
  // directly but become incompatible through their successors.
  SymbolTable inputs({"0"});
  SymbolTable outputs({"x", "y"});
  SymbolTable states({"P", "Q", "A", "B"});
  PartialMachine spec("prop", inputs, outputs, states, 0);
  spec.specify(0, 0, 2, kNoSymbol);  // P -> A
  spec.specify(0, 1, 3, kNoSymbol);  // Q -> B
  spec.specify(0, 2, 2, 0);          // A emits x
  spec.specify(0, 3, 3, 1);          // B emits y
  const auto compatible = compatibilityMatrix(spec);
  EXPECT_FALSE(compatible[2][3]);
  EXPECT_FALSE(compatible[0][1]);
}

TEST(Reduce, MergesCompatibleStates) {
  const PartialMachine spec = sampleSpec();
  const ReductionResult result = reducePartialMachine(spec);
  EXPECT_LT(result.machine.states().size(), spec.states().size());
  // B and C fall into one class.
  EXPECT_EQ(result.classOf[1], result.classOf[2]);
  // Every completion of the reduced machine implements the original spec.
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    const Machine impl = result.machine.completeRandomly(rng);
    EXPECT_TRUE(implementsSpecification(impl, spec)) << round;
  }
}

TEST(Reduce, CompleteMachineReductionMatchesMinimization) {
  // On completely specified machines, compatibility = equivalence, so the
  // greedy closure reduction finds exactly the minimization classes.
  MachineBuilder b("dup");
  b.addInput("0");
  b.addInput("1");
  b.setResetState("S0");
  b.addTransition("1", "S0", "S1a", "0");
  b.addTransition("1", "S1a", "S1b", "1");
  b.addTransition("1", "S1b", "S1a", "1");
  b.addTransition("0", "S0", "S0", "0");
  b.addTransition("0", "S1a", "S0", "0");
  b.addTransition("0", "S1b", "S0", "0");
  const Machine machine = b.build();
  const ReductionResult reduced = reducePartialMachine(PartialMachine(machine));
  const MinimizationResult minimized = minimize(machine);
  EXPECT_EQ(reduced.machine.states().size(),
            minimized.machine.stateCount());
}

/// Property sweep: reduction of complete random machines matches Hopcroft
/// minimization, and reductions of sparsified machines stay containment-
/// correct.
class ReducePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReducePropertyTest, CompleteMachinesMatchMinimize) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 137 + 19);
  RandomMachineSpec spec;
  spec.stateCount = 2 + static_cast<int>(rng.below(8));
  spec.inputCount = 1 + static_cast<int>(rng.below(3));
  spec.outputCount = 1 + static_cast<int>(rng.below(3));
  const Machine machine = randomMachine(spec, rng);
  const ReductionResult reduced =
      reducePartialMachine(PartialMachine(machine));
  const MinimizationResult minimized = minimize(machine);
  EXPECT_EQ(reduced.machine.states().size(), minimized.machine.stateCount());
  // And the reduced machine (complete by construction from a complete
  // input) is equivalent to the original.
  ASSERT_TRUE(reduced.machine.isComplete());
  const Machine lifted = reduced.machine.completeWithSelfLoops(0);
  EXPECT_TRUE(areEquivalent(lifted, machine));
}

TEST_P(ReducePropertyTest, SparsifiedMachinesReduceSoundly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 149 + 23);
  RandomMachineSpec genSpec;
  genSpec.stateCount = 3 + static_cast<int>(rng.below(7));
  genSpec.inputCount = 2;
  genSpec.outputCount = 2;
  const Machine machine = randomMachine(genSpec, rng);
  // Sparsify: drop ~40% of cells from the specification.
  PartialMachine spec("sparse", machine.inputs(), machine.outputs(),
                      machine.states(), machine.resetState());
  for (const Transition& t : machine.transitions()) {
    if (rng.chance(0.6))
      spec.specify(t.input, t.from, t.to, t.output);
    else if (rng.chance(0.5))
      spec.specify(t.input, t.from, t.to, kNoSymbol);
  }
  const ReductionResult reduced = reducePartialMachine(spec);
  EXPECT_LE(reduced.machine.states().size(), spec.states().size());
  Rng completeRng(static_cast<std::uint64_t>(GetParam()));
  const Machine impl = reduced.machine.completeRandomly(completeRng);
  EXPECT_TRUE(implementsSpecification(impl, spec));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReducePropertyTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace rfsm
