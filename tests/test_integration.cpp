// Cross-module integration tests: full pipelines from machine construction
// (builder / KISS2 / generator) through planning, validation, hardware
// replay and behavioural equivalence.
#include <gtest/gtest.h>

#include "apps/netproto/protocol.hpp"
#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "core/self_reconfigurable.hpp"
#include "core/sequence.hpp"
#include "fsm/builder.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/kiss.hpp"
#include "fsm/minimize.hpp"
#include "fsm/serialize.hpp"
#include "fsm/simulate.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "rtl/datapath.hpp"
#include "rtl/resources.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(Integration, Kiss2MachinesCanMigrate) {
  // Two revisions of a controller exchanged as KISS2 text.
  const std::string v1 =
      ".i 1\n.o 1\n.r A\n"
      "1 A B 0\n1 B B 1\n0 A A 0\n0 B A 0\n.e\n";
  const std::string v2 =
      ".i 1\n.o 1\n.r A\n"
      "1 A B 0\n1 B C 0\n1 C C 1\n0 A A 0\n0 B A 0\n0 C A 0\n.e\n";
  const Machine source = machineFromKiss2(parseKiss2(v1), "v1");
  const Machine target = machineFromKiss2(parseKiss2(v2), "v2");
  const MigrationContext context(source, target);
  EXPECT_GT(context.deltaCount(), 0);
  const ReconfigurationProgram z = planGreedy(context);
  const ValidationResult result = validateProgram(context, z);
  EXPECT_TRUE(result.valid) << result.reason;
}

TEST(Integration, MinimizeBeforeMigrationReducesDeltas) {
  // A bloated source with duplicated states costs more deltas than its
  // minimized form when migrating to the same target.
  MachineBuilder b("bloated");
  b.addInput("0");
  b.addInput("1");
  b.setResetState("S0");
  b.addTransition("1", "S0", "S1a", "0");
  b.addTransition("1", "S1a", "S1b", "1");
  b.addTransition("1", "S1b", "S1a", "1");
  b.addTransition("0", "S0", "S0", "0");
  b.addTransition("0", "S1a", "S0", "0");
  b.addTransition("0", "S1b", "S0", "0");
  const Machine bloated = b.build();
  const Machine slim = minimize(bloated).machine;
  ASSERT_TRUE(areEquivalent(bloated, slim));

  const Machine target = zerosDetector();
  // The minimized machine has the states of the target (S0 + one more), so
  // fewer superset cells need rewriting.
  const MigrationContext fat(bloated, target);
  const MigrationContext thin(slim, target);
  EXPECT_LE(thin.deltaCount(), fat.deltaCount());
}

TEST(Integration, JsonRoundTripThenMigrationPipeline) {
  Rng rng(21);
  RandomMachineSpec spec;
  spec.stateCount = 6;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 5;
  const Machine target = mutateMachine(source, mutation, rng);

  // Serialize both, re-load, and migrate the re-loaded pair.
  const Machine source2 = machineFromJson(toJson(source));
  const Machine target2 = machineFromJson(toJson(target));
  const MigrationContext context(source2, target2);
  EXPECT_EQ(context.deltaCount(), 5);
  const ReconfigurationProgram z = planJsr(context);
  EXPECT_TRUE(validateProgram(context, z).valid);
}

TEST(Integration, SelfReconfigurableMachineTriggersOnCondition) {
  const MigrationContext context(onesDetector(), zerosDetector());
  const ReconfigurationProgram z = planJsr(context);
  SelfReconfigurableMachine machine(context);

  // Trigger: when the machine reports two successive ones (state S1 under
  // input 1), migrate to the zeros detector.
  bool fired = false;
  machine.setTrigger([&](SymbolId state, SymbolId input)
                         -> std::optional<ReconfigurationProgram> {
    if (fired) return std::nullopt;
    if (state == context.states().at("S1") &&
        input == context.inputs().at("1")) {
      fired = true;
      return z;
    }
    return std::nullopt;
  });

  const SymbolId in1 = context.inputs().at("1");
  machine.clock(in1);  // S0 -> S1, no trigger (state was S0)
  EXPECT_FALSE(machine.reconfiguring());
  machine.clock(in1);  // trigger fires; first program step plays
  EXPECT_TRUE(fired);
  EXPECT_TRUE(machine.reconfiguring());
  for (int k = 1; k < z.length(); ++k) machine.clock(in1);
  EXPECT_FALSE(machine.reconfiguring());
  EXPECT_EQ(machine.reconfigurationCycles(), z.length());
  EXPECT_TRUE(machine.machine().matchesTarget());
  EXPECT_EQ(machine.state(), context.targetReset());
}

TEST(Integration, ChainedMigrationsAcrossThreeMachines) {
  // ones -> zeros -> ones: migrate, extract, migrate again.
  const MigrationContext first(onesDetector(), zerosDetector());
  MutableMachine m1 = replayProgram(first, planJsr(first));
  ASSERT_TRUE(m1.matchesTarget());
  const Machine intermediate = m1.extractTarget();
  EXPECT_TRUE(areEquivalent(intermediate, zerosDetector()));

  const MigrationContext second(intermediate, onesDetector());
  MutableMachine m2 = replayProgram(second, planJsr(second));
  ASSERT_TRUE(m2.matchesTarget());
  EXPECT_TRUE(areEquivalent(m2.extractTarget(), onesDetector()));
}

TEST(Integration, FullPipelineModelAndHardwareAgree) {
  Rng rng(33);
  RandomMachineSpec spec;
  spec.stateCount = 5;
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 6;
  mutation.newStateCount = 1;
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);

  EvolutionConfig config;
  config.generations = 25;
  Rng eaRng(44);
  const EvolutionaryPlan plan = planEvolutionary(context, config, eaRng);
  ASSERT_TRUE(validateProgram(context, plan.program).valid);
  EXPECT_GE(plan.program.length(), programLowerBound(context));
  EXPECT_LE(plan.program.length(), jsrUpperBound(context));

  rtl::ReconfigurableFsmDatapath hw(context);
  hw.loadSequence(sequenceFromProgram(plan.program));
  hw.startReconfiguration();
  hw.clock(0);
  while (hw.reconfiguring()) hw.clock(0);

  // Hardware now implements M': check behaviour over random words against
  // a golden simulator of the target machine.
  hw.clock(0, /*externalReset=*/true);
  Simulator golden(target);
  for (int cycle = 0; cycle < 300; ++cycle) {
    const SymbolId i =
        static_cast<SymbolId>(rng.below(static_cast<std::uint64_t>(
            target.inputCount())));
    const SymbolId superInput = context.liftTargetInput(i);
    const std::uint64_t out = hw.clock(superInput);
    const SymbolId ref = golden.step(i);
    EXPECT_EQ(context.outputs().name(hw.outputSymbol(out)),
              target.outputs().name(ref));
    EXPECT_EQ(hw.currentState(), context.liftTargetState(golden.state()));
  }
}

TEST(Integration, NetprotoUpgradeOnHardwareSizedMachines) {
  // The netproto example parsers also fit the XCV300 resource model.
  netproto::ProtocolProcessor processor("1011", "11010",
                                        netproto::UpgradePlanner::kJsr);
  const auto sequence = sequenceFromProgram(processor.program());
  const auto estimate =
      rtl::estimateResources(processor.context(), sequence);
  EXPECT_TRUE(estimate.fitsXcv300);
}

}  // namespace
}  // namespace rfsm
