// Counter-naming drift regression: every metric name a sink emits must be
// in metrics::canonicalNames() (the table in DESIGN.md §12), and the
// stderr summary tokens the CLI prints are the same constants, so the
// vocabulary cannot fork between CSV, JSON, markdown, and grep targets.
//
// Each test binary owns a fresh registry (entries are never erased but
// this binary only registers canonical names), so the sink outputs here
// are exactly the canonical vocabulary under test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/metrics.hpp"

namespace rfsm {
namespace {

/// Second CSV column of every data row (kind,name,...).  Canonical names
/// never need RFC 4180 quoting, so a plain split is exact here.
std::vector<std::string> csvNames(const std::string& csv) {
  std::vector<std::string> names;
  std::istringstream lines(csv);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t first = line.find(',');
    if (first == std::string::npos) continue;
    const std::size_t second = line.find(',', first + 1);
    if (second == std::string::npos) continue;
    const std::string name = line.substr(first + 1, second - first - 1);
    if (name != "name") names.push_back(name);  // skip the header row
  }
  return names;
}

TEST(TelemetryNames, CanonicalSetIsWellFormed) {
  const std::vector<std::string> names = metrics::canonicalNames();
  ASSERT_FALSE(names.empty());
  std::set<std::string> unique;
  for (const std::string& name : names) {
    EXPECT_TRUE(unique.insert(name).second) << "duplicate: " << name;
    // subsystem.snake_case_name — one dot, lowercase, no spaces.
    const std::size_t dot = name.find('.');
    ASSERT_NE(dot, std::string::npos) << name;
    EXPECT_EQ(name.find('.', dot + 1), std::string::npos) << name;
    EXPECT_GT(dot, 0u) << name;
    EXPECT_LT(dot + 1, name.size()) << name;
    for (const char c : name)
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
                  c == '_')
          << name << " contains '" << c << "'";
  }
}

TEST(TelemetryNames, KnownVocabularyIsPresent) {
  const std::vector<std::string> names = metrics::canonicalNames();
  const std::set<std::string> set(names.begin(), names.end());
  // The grep targets CI's smoke jobs assert on (cli.cpp summary lines) and
  // the live-plane additions of the telemetry PR.
  for (const char* required :
       {metrics::kServiceShardRetries, metrics::kServiceWorkerCrashes,
        metrics::kServicePlanCacheHits, metrics::kFabricRerouted,
        metrics::kFabricHedged, metrics::kFabricQuorumMismatch,
        metrics::kServiceStatsRequests, metrics::kServiceTraceDumps,
        metrics::kServiceWorkersAlive, metrics::kServiceQueueDepth,
        metrics::kServicePlanCacheSize, metrics::kSessionsOpenGauge,
        metrics::kSessionSchedulerDepth, metrics::kServiceRequestWindow,
        metrics::kSessionMutateWindow, metrics::kTraceDropped,
        metrics::kServiceChaosDiskFaults, metrics::kServiceChaosNetFaults,
        metrics::kServiceFramesRejected, metrics::kServiceReplRecordsShipped,
        metrics::kServiceReplSnapshotsShipped, metrics::kServiceReplShipErrors,
        metrics::kServiceReplLagRecords, metrics::kServiceReplLagMs,
        metrics::kServiceFailovers, metrics::kServiceStaleEpochRejected})
    EXPECT_TRUE(set.count(required)) << required;
}

TEST(TelemetryNames, SinksEmitOnlyCanonicalNames) {
  metrics::resetAll();
  const std::set<std::string> canonical = [] {
    const std::vector<std::string> names = metrics::canonicalNames();
    return std::set<std::string>(names.begin(), names.end());
  }();
  // One representative of every kind, all from the canonical vocabulary.
  metrics::counter(metrics::kServiceRequests).add(3);
  metrics::counter(metrics::kFabricHedged).add(1);
  metrics::gauge(metrics::kServiceWorkersAlive).set(2);
  metrics::gauge(metrics::kSessionsOpenGauge).set(0);  // touched, still emits
  metrics::timer(metrics::kDecodeLatency)
      .record(std::chrono::nanoseconds(1000));
  metrics::histogram(metrics::kServiceRequestLatency).record(2000u);
  metrics::rolling(metrics::kServiceRequestWindow).record(3000u);

  const metrics::Snapshot snap = metrics::snapshot();
  ASSERT_FALSE(snap.empty());

  const std::vector<std::string> emitted = csvNames(metrics::toCsv(snap));
  ASSERT_GE(emitted.size(), 7u);
  for (const std::string& name : emitted)
    EXPECT_TRUE(canonical.count(name)) << "sink drift: " << name;

  // The same names appear verbatim in the JSON and markdown sinks.
  const std::string json = metrics::toJson(snap);
  const std::string md = metrics::toMarkdown(snap);
  for (const std::string& name : emitted) {
    EXPECT_NE(json.find("\"" + name + "\""), std::string::npos) << name;
    EXPECT_NE(md.find(name), std::string::npos) << name;
  }
  metrics::resetAll();
}

TEST(TelemetryNames, SnapshotNamesRoundTripThroughEverySink) {
  metrics::resetAll();
  metrics::counter(metrics::kSessionPlans).add(1);
  metrics::rolling(metrics::kSessionMutateWindow)
      .record(std::chrono::milliseconds(2));
  const metrics::Snapshot snap = metrics::snapshot();
  const std::vector<std::string> emitted = csvNames(metrics::toCsv(snap));
  const std::set<std::string> emittedSet(emitted.begin(), emitted.end());
  std::set<std::string> expected = {metrics::kSessionPlans,
                                    metrics::kSessionMutateWindow};
  EXPECT_EQ(emittedSet, expected);
  metrics::resetAll();
}

}  // namespace
}  // namespace rfsm
