// The multi-tenant session layer, bottom to top: RecordLog framing, the
// durable-IO helpers, admission/fairness primitives, the session wire
// frames, SessionEngine determinism and snapshots, SessionService
// journaling + recovery (including torn tails and corrupt snapshots), and
// — the headline contract — a real rfsmd SIGKILLed at *every* kill point
// between mutations, restarted, and resumed, with the stitched transcript
// byte-identical to an uninterrupted reference run.
//
// The rfsmd binary path comes from RFSM_RFSMD_BUILD_PATH (a CMake
// target-file definition) or the RFSM_RFSMD environment override.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/journal.hpp"
#include "fsm/serialize.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "util/fair.hpp"
#include "util/fsio.hpp"
#include "util/ipc.hpp"

namespace rfsm {
namespace {

using namespace std::chrono_literals;
using service::MutationRecord;
using service::PlanOutcome;
using service::SessionConfig;
using service::SessionEngine;
using service::SessionService;
using service::SessionServiceOptions;
using service::SessionStatus;

std::string rfsmdPath() {
  if (const char* env = std::getenv("RFSM_RFSMD")) return env;
#ifdef RFSM_RFSMD_BUILD_PATH
  return RFSM_RFSMD_BUILD_PATH;
#else
  return "rfsmd";
#endif
}

/// A throwaway directory, removed with its contents on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    char name[] = "/tmp/rfsm-session-XXXXXX";
    path = mkdtemp(name);
  }
  ~TempDir() {
    for (const std::string& file : fsio::listDir(path))
      ::unlink((path + "/" + file).c_str());
    ::rmdir(path.c_str());
  }
};

SessionConfig smallConfig(const std::string& tenant = "t",
                          const std::string& name = "s") {
  SessionConfig config;
  config.tenant = tenant;
  config.name = name;
  config.stateCount = 6;
  config.inputCount = 2;
  config.outputCount = 2;
  config.seed = 7;
  config.planner = "jsr";
  return config;
}

MutationRecord mut(std::uint64_t seq, bool defer = false,
                   std::uint32_t deltas = 3) {
  MutationRecord rec;
  rec.seq = seq;
  rec.deltaCount = deltas;
  rec.mutationSeed = 500 + seq;
  rec.defer = defer;
  return rec;
}

// --- RecordLog ------------------------------------------------------------

TEST(RecordLog, RoundTripsRecords) {
  RecordLog log("test-log v1");
  std::string text = log.headerLine();
  text += log.appendLine("alpha 1");
  text += log.appendLine("beta 2");
  text += log.appendLine("gamma 3");
  const RecordLog::Parsed parsed = RecordLog::parse("test-log v1", text);
  EXPECT_FALSE(parsed.truncated);
  ASSERT_EQ(parsed.records.size(), 3u);
  EXPECT_EQ(parsed.records[0], "alpha 1");
  EXPECT_EQ(parsed.records[2], "gamma 3");
}

TEST(RecordLog, ToleratesTornFinalRecord) {
  RecordLog log("test-log v1");
  std::string text = log.headerLine();
  text += log.appendLine("alpha 1");
  std::string torn = log.appendLine("beta 2");
  torn.resize(torn.size() / 2);  // the power cut hit mid-write
  const RecordLog::Parsed parsed =
      RecordLog::parse("test-log v1", text + torn);
  EXPECT_TRUE(parsed.truncated);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0], "alpha 1");
}

TEST(RecordLog, RejectsMidLogDamage) {
  RecordLog log("test-log v1");
  std::string first = log.appendLine("alpha 1");
  const std::string rest = log.appendLine("beta 2");
  first[0] = 'X';  // damage a non-final record
  EXPECT_THROW(
      RecordLog::parse("test-log v1", log.headerLine() + first + rest),
      JournalError);
}

TEST(RecordLog, RejectsReorderedRecords) {
  RecordLog log("test-log v1");
  const std::string header = log.headerLine();
  const std::string a = log.appendLine("alpha 1");
  const std::string b = log.appendLine("beta 2");
  const std::string c = log.appendLine("gamma 3");
  // Chained checksums are order-sensitive: swapping intact records breaks
  // the chain even though each line's own bytes are untouched.
  EXPECT_THROW(RecordLog::parse("test-log v1", header + b + a + c),
               JournalError);
}

TEST(RecordLog, RejectsWrongHeader) {
  RecordLog log("test-log v1");
  EXPECT_THROW(RecordLog::parse("other-log v1",
                                log.headerLine() + log.appendLine("a 1")),
               JournalError);
}

// --- fsio -----------------------------------------------------------------

TEST(Fsio, WriteFileDurableReplacesAtomically) {
  TempDir dir;
  const std::string path = dir.path + "/file";
  fsio::writeFileDurable(path, "first");
  fsio::writeFileDurable(path, "second");
  const auto read = fsio::readFileIfExists(path);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, "second");
  // No temp files left behind.
  EXPECT_EQ(fsio::listDir(dir.path).size(), 1u);
}

TEST(Fsio, ReadFileIfExistsReturnsNulloptWhenAbsent) {
  TempDir dir;
  EXPECT_FALSE(fsio::readFileIfExists(dir.path + "/missing").has_value());
}

TEST(Fsio, AppendDurableAccumulates) {
  TempDir dir;
  const std::string path = dir.path + "/wal";
  {
    ipc::Fd fd = fsio::openAppend(path);
    fsio::appendDurable(fd.get(), path, "one\n");
    fsio::appendDurable(fd.get(), path, "two\n");
  }
  {
    ipc::Fd fd = fsio::openAppend(path);  // reopen appends, not truncates
    fsio::appendDurable(fd.get(), path, "three\n");
  }
  EXPECT_EQ(fsio::readFileIfExists(path).value_or(""), "one\ntwo\nthree\n");
}

TEST(Fsio, RemoveAndRenameDurable) {
  TempDir dir;
  const std::string path = dir.path + "/file";
  fsio::writeFileDurable(path, "x");
  fsio::renameDurable(path, path + ".corrupt");
  EXPECT_FALSE(fsio::readFileIfExists(path).has_value());
  EXPECT_TRUE(fsio::readFileIfExists(path + ".corrupt").has_value());
  fsio::removeFileDurable(path + ".corrupt");
  fsio::removeFileDurable(path + ".corrupt");  // idempotent when absent
  EXPECT_TRUE(fsio::listDir(dir.path).empty());
}

// --- TokenBucket / FairScheduler -----------------------------------------

TEST(TokenBucket, UnlimitedRateAlwaysAdmits) {
  TokenBucket bucket(0.0, 1.0);
  const auto now = TokenBucket::Clock::now();
  for (int k = 0; k < 100; ++k) EXPECT_TRUE(bucket.tryTake(1.0, now));
  EXPECT_EQ(bucket.msUntil(1.0, now), 0);
}

TEST(TokenBucket, RejectsBeyondBurstAndHintsRetry) {
  TokenBucket bucket(10.0, 2.0);  // 10/s, burst 2
  const auto now = TokenBucket::Clock::now();
  EXPECT_TRUE(bucket.tryTake(1.0, now));
  EXPECT_TRUE(bucket.tryTake(1.0, now));
  EXPECT_FALSE(bucket.tryTake(1.0, now));
  // One token refills in 100 ms at 10/s.
  const std::int64_t hint = bucket.msUntil(1.0, now);
  EXPECT_GT(hint, 0);
  EXPECT_LE(hint, 100);
  // After the hinted wait the take succeeds.
  EXPECT_TRUE(bucket.tryTake(1.0, now + std::chrono::milliseconds(hint)));
}

TEST(FairScheduler, StrictPriorityClassesFirst) {
  FairScheduler scheduler;
  std::vector<std::string> order;
  const auto item = [&order](const std::string& tag) {
    return FairScheduler::Item{[&order, tag] { order.push_back(tag); }, 1.0};
  };
  scheduler.enqueue("batch", 2, 1.0, item("batch1"));
  scheduler.enqueue("interactive", 0, 1.0, item("int1"));
  while (auto next = scheduler.next()) {
    next->item.run();
    scheduler.done(next->flow);
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "int1");
  EXPECT_EQ(order[1], "batch1");
}

TEST(FairScheduler, WeightsShareProportionally) {
  FairScheduler scheduler;
  std::vector<std::string> order;
  const auto item = [&order](const std::string& tag) {
    return FairScheduler::Item{[&order, tag] { order.push_back(tag); }, 1.0};
  };
  for (int k = 0; k < 8; ++k) {
    scheduler.enqueue("heavy", 1, 3.0, item("heavy"));
    scheduler.enqueue("light", 1, 1.0, item("light"));
  }
  // Drain serially; a 3:1 weight ratio must give "heavy" three slots per
  // "light" slot in every window once both are backlogged.
  while (auto next = scheduler.next()) {
    next->item.run();
    scheduler.done(next->flow);
  }
  ASSERT_EQ(order.size(), 16u);
  int heavyInFirst8 = 0;
  for (int k = 0; k < 8; ++k) heavyInFirst8 += order[k] == "heavy" ? 1 : 0;
  EXPECT_EQ(heavyInFirst8, 6);  // 3:1 split of the first two windows
}

TEST(FairScheduler, OneInFlightPerFlowAndFifoWithin) {
  FairScheduler scheduler;
  std::vector<int> ran;
  for (int k = 0; k < 3; ++k)
    scheduler.enqueue("flow", 1, 1.0,
                      {[&ran, k] { ran.push_back(k); }, 1.0});
  auto first = scheduler.next();
  ASSERT_TRUE(first.has_value());
  // The flow is in flight: nothing else is runnable until done().
  EXPECT_FALSE(scheduler.next().has_value());
  first->item.run();
  scheduler.done("flow");
  auto second = scheduler.next();
  ASSERT_TRUE(second.has_value());
  second->item.run();
  scheduler.done("flow");
  ASSERT_EQ(ran.size(), 2u);
  EXPECT_EQ(ran[0], 0);
  EXPECT_EQ(ran[1], 1);
  EXPECT_FALSE(scheduler.idle());
}

TEST(FairScheduler, IdleFlowBanksNoCredit) {
  FairScheduler scheduler;
  const auto item = [] { return FairScheduler::Item{[] {}, 1.0}; };
  // "worker" accumulates virtual time alone while "sleeper" idles.
  scheduler.enqueue("worker", 1, 1.0, item());
  for (int k = 0; k < 6; ++k) {
    auto next = scheduler.next();
    ASSERT_TRUE(next.has_value());
    scheduler.done(next->flow);
    scheduler.enqueue("worker", 1, 1.0, item());
  }
  // Drain the loose worker item so both flows start backlogged together.
  scheduler.done(scheduler.next()->flow);
  for (int k = 0; k < 4; ++k) {
    scheduler.enqueue("sleeper", 1, 1.0, item());
    scheduler.enqueue("worker", 1, 1.0, item());
  }
  // The sleeper's vtime is bumped to the scheduler's current virtual time
  // on re-arrival.  With banked credit it would owe ~7 units of catch-up
  // and monopolize the first 4 slots; bumped, the worker appears early.
  std::vector<std::string> head;
  for (int k = 0; k < 4; ++k) {
    auto next = scheduler.next();
    ASSERT_TRUE(next.has_value());
    head.push_back(next->flow);
    scheduler.done(next->flow);
  }
  EXPECT_NE(std::count(head.begin(), head.end(), std::string("worker")), 0);
}

// --- Session wire frames --------------------------------------------------

TEST(SessionProtocol, MutateRoundTrip) {
  service::SessionMutateRequest request;
  request.tenant = "acme";
  request.name = "pipeline";
  request.seq = 42;
  request.deltaCount = 7;
  request.newStateCount = 1;
  request.mutationSeed = 987654321;
  request.defer = true;
  request.ackSeq = 40;
  const auto decoded = service::decodeSessionMutateRequest(
      service::encodeSessionMutateRequest(request));
  EXPECT_EQ(decoded.tenant, "acme");
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.deltaCount, 7u);
  EXPECT_EQ(decoded.newStateCount, 1u);
  EXPECT_EQ(decoded.mutationSeed, 987654321u);
  EXPECT_TRUE(decoded.defer);
  EXPECT_EQ(decoded.ackSeq, 40u);

  service::SessionMutateResponse response;
  response.status = SessionStatus::kResourceExhausted;
  response.error = "over rate";
  response.seq = 42;
  response.retryAfterMs = 125;
  const auto back = service::decodeSessionMutateResponse(
      service::encodeSessionMutateResponse(response));
  EXPECT_EQ(back.status, SessionStatus::kResourceExhausted);
  EXPECT_EQ(back.error, "over rate");
  EXPECT_EQ(back.retryAfterMs, 125);
}

TEST(SessionProtocol, OpenReplayCloseRoundTrip) {
  service::SessionOpenRequest open;
  open.tenant = "acme";
  open.name = "pipeline";
  open.priority = 0;
  open.weight = 3;
  open.planner = "greedy";
  open.stateCount = 5;
  open.seed = 99;
  open.resume = false;
  const auto openBack = service::decodeSessionOpenRequest(
      service::encodeSessionOpenRequest(open));
  EXPECT_EQ(openBack.planner, "greedy");
  EXPECT_EQ(openBack.priority, 0u);
  EXPECT_EQ(openBack.weight, 3u);
  EXPECT_FALSE(openBack.resume);

  service::SessionReplayResponse replay;
  replay.status = SessionStatus::kOk;
  replay.entries.push_back({3, "prog-three"});
  replay.entries.push_back({5, "prog-five"});
  const auto replayBack = service::decodeSessionReplayResponse(
      service::encodeSessionReplayResponse(replay));
  ASSERT_EQ(replayBack.entries.size(), 2u);
  EXPECT_EQ(replayBack.entries[1].seq, 5u);
  EXPECT_EQ(replayBack.entries[1].program, "prog-five");

  service::SessionCloseResponse close;
  close.status = SessionStatus::kOk;
  close.mutationsApplied = 17;
  close.plans = 9;
  const auto closeBack = service::decodeSessionCloseResponse(
      service::encodeSessionCloseResponse(close));
  EXPECT_EQ(closeBack.mutationsApplied, 17u);
  EXPECT_EQ(closeBack.plans, 9u);
}

TEST(SessionProtocol, ValidatesNames) {
  EXPECT_TRUE(service::validSessionName("tenant-1.main_A"));
  EXPECT_FALSE(service::validSessionName(""));
  EXPECT_FALSE(service::validSessionName("has space"));
  EXPECT_FALSE(service::validSessionName("at@sign"));
  EXPECT_FALSE(service::validSessionName(std::string(65, 'a')));
}

// --- SessionEngine --------------------------------------------------------

TEST(SessionEngine, TranscriptIsDeterministic) {
  SessionEngine a(smallConfig());
  SessionEngine b(smallConfig());
  for (std::uint64_t k = 1; k <= 6; ++k) {
    const PlanOutcome oa = a.apply(mut(k, k % 3 != 0));
    const PlanOutcome ob = b.apply(mut(k, k % 3 != 0));
    EXPECT_EQ(oa.planned, ob.planned);
    EXPECT_EQ(oa.program, ob.program) << "seq " << k;
  }
  EXPECT_EQ(toJson(a.machine()), toJson(b.machine()));
}

TEST(SessionEngine, CompactsDeferredRuns) {
  SessionEngine engine(smallConfig());
  EXPECT_FALSE(engine.apply(mut(1, true)).planned);
  EXPECT_FALSE(engine.apply(mut(2, true)).planned);
  EXPECT_EQ(engine.pendingCount(), 2u);
  const PlanOutcome flushed = engine.apply(mut(3, false));
  ASSERT_TRUE(flushed.planned);
  EXPECT_EQ(flushed.compactedFrom, 3u);
  EXPECT_EQ(flushed.deltasRaw, 9);  // 3 mutations x 3 requested deltas
  // The net delta set can only shrink under composition.
  EXPECT_LE(flushed.deltasPlanned, flushed.deltasRaw);
  EXPECT_EQ(engine.pendingCount(), 0u);
}

TEST(SessionEngine, FailedMutationConsumesSeqButKeepsState) {
  SessionConfig config = smallConfig();
  SessionEngine engine(config);
  ASSERT_TRUE(engine.apply(mut(1)).planned);
  const std::string machineAfter1 = toJson(engine.machine());
  // An infeasible spec: more new states than deltas can wire up.
  MutationRecord bad = mut(2);
  bad.newStateCount = 50;
  bad.deltaCount = 1;
  const PlanOutcome outcome = engine.apply(bad);
  EXPECT_TRUE(outcome.failed);
  EXPECT_FALSE(outcome.planned);
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_EQ(engine.lastApplied(), 2u);
  EXPECT_EQ(toJson(engine.machine()), machineAfter1);
  // And the session continues past it.
  EXPECT_TRUE(engine.apply(mut(3)).planned);
}

TEST(SessionEngine, SnapshotRestoreContinuesIdentically) {
  SessionEngine reference(smallConfig());
  SessionEngine live(smallConfig());
  for (std::uint64_t k = 1; k <= 3; ++k) {
    reference.apply(mut(k, k == 2));
    live.apply(mut(k, k == 2));
  }
  ipc::MessageWriter writer;
  live.encodeSnapshot(writer);
  const std::string bytes = writer.take();
  ipc::MessageReader reader(bytes);
  SessionEngine restored = SessionEngine::decodeSnapshot(reader);
  EXPECT_EQ(restored.lastApplied(), 3u);
  EXPECT_EQ(restored.config(), reference.config());
  for (std::uint64_t k = 4; k <= 7; ++k) {
    const PlanOutcome a = reference.apply(mut(k, k == 5));
    const PlanOutcome b = restored.apply(mut(k, k == 5));
    EXPECT_EQ(a.program, b.program) << "seq " << k;
  }
}

TEST(SessionEngine, RejectsOutOfOrderSeq) {
  SessionEngine engine(smallConfig());
  engine.apply(mut(1));
  EXPECT_THROW(engine.apply(mut(3)), Error);
}

// --- SessionService (in-process) -----------------------------------------

service::SessionOpenRequest openRequestFor(const SessionConfig& config) {
  service::SessionOpenRequest request;
  request.tenant = config.tenant;
  request.name = config.name;
  request.priority = static_cast<std::uint32_t>(config.priority);
  request.weight = static_cast<std::uint32_t>(config.weight);
  request.planner = config.planner;
  request.stateCount = config.stateCount;
  request.inputCount = config.inputCount;
  request.outputCount = config.outputCount;
  request.seed = config.seed;
  return request;
}

service::SessionMutateRequest mutateRequestFor(const SessionConfig& config,
                                               const MutationRecord& rec) {
  service::SessionMutateRequest request;
  request.tenant = config.tenant;
  request.name = config.name;
  request.seq = rec.seq;
  request.deltaCount = rec.deltaCount;
  request.newStateCount = rec.newStateCount;
  request.mutationSeed = rec.mutationSeed;
  request.defer = rec.defer;
  return request;
}

TEST(SessionService, StreamsMatchTheEngineReference) {
  SessionServiceOptions options;  // volatile: no stateDir
  SessionService serviceStore(options);
  const SessionConfig config = smallConfig();
  ASSERT_EQ(serviceStore.open(openRequestFor(config)).status,
            SessionStatus::kOk);
  SessionEngine reference(config);
  for (std::uint64_t k = 1; k <= 5; ++k) {
    const MutationRecord rec = mut(k, k == 2);
    const auto response =
        serviceStore.mutate(mutateRequestFor(config, rec));
    const PlanOutcome expected = reference.apply(rec);
    if (expected.planned) {
      EXPECT_EQ(response.status, SessionStatus::kOk);
      EXPECT_EQ(response.program, expected.program) << "seq " << k;
    } else {
      EXPECT_EQ(response.status, SessionStatus::kAccepted);
    }
  }
  const auto closed = serviceStore.close({config.tenant, config.name});
  EXPECT_EQ(closed.status, SessionStatus::kOk);
  EXPECT_EQ(closed.mutationsApplied, 5u);
}

TEST(SessionService, DuplicateSeqIsAnsweredFromTranscript) {
  SessionService serviceStore(SessionServiceOptions{});
  const SessionConfig config = smallConfig();
  ASSERT_EQ(serviceStore.open(openRequestFor(config)).status,
            SessionStatus::kOk);
  const MutationRecord rec = mut(1);
  const auto first = serviceStore.mutate(mutateRequestFor(config, rec));
  ASSERT_EQ(first.status, SessionStatus::kOk);
  // A client that lost the reply resends the same seq: identical answer,
  // no re-planning (the plan counter is unchanged).
  const auto again = serviceStore.mutate(mutateRequestFor(config, rec));
  EXPECT_EQ(again.status, SessionStatus::kOk);
  EXPECT_EQ(again.program, first.program);
  const auto closed = serviceStore.close({config.tenant, config.name});
  EXPECT_EQ(closed.plans, 1u);
}

TEST(SessionService, RejectsGapsAndUnknownSessions) {
  SessionService serviceStore(SessionServiceOptions{});
  const SessionConfig config = smallConfig();
  EXPECT_EQ(serviceStore.mutate(mutateRequestFor(config, mut(1))).status,
            SessionStatus::kNotFound);
  ASSERT_EQ(serviceStore.open(openRequestFor(config)).status,
            SessionStatus::kOk);
  const auto gap = serviceStore.mutate(mutateRequestFor(config, mut(3)));
  EXPECT_EQ(gap.status, SessionStatus::kBadSequence);
}

TEST(SessionService, AdmissionControlRejectsWithRetryHint) {
  SessionServiceOptions options;
  options.tenantRate = 0.5;  // one mutation per 2 s...
  options.tenantBurst = 2.0;  // ...after a burst of 2
  SessionService serviceStore(options);
  const SessionConfig aggressor = smallConfig("aggr", "s");
  const SessionConfig victim = smallConfig("victim", "s");
  ASSERT_EQ(serviceStore.open(openRequestFor(aggressor)).status,
            SessionStatus::kOk);
  ASSERT_EQ(serviceStore.open(openRequestFor(victim)).status,
            SessionStatus::kOk);
  int rejected = 0;
  std::int64_t hint = 0;
  for (std::uint64_t k = 1; k <= 6; ++k) {
    const auto response =
        serviceStore.mutate(mutateRequestFor(aggressor, mut(k)));
    if (response.status == SessionStatus::kResourceExhausted) {
      ++rejected;
      hint = response.retryAfterMs;
      break;  // seq was not accepted; further seqs would be kBadSequence
    }
  }
  EXPECT_GE(rejected, 1);
  EXPECT_GT(hint, 0);
  // The aggressor's exhaustion is per-tenant: the victim is untouched.
  EXPECT_EQ(serviceStore.mutate(mutateRequestFor(victim, mut(1))).status,
            SessionStatus::kOk);
}

TEST(SessionService, DrainingRejectsNewWorkButAnswersDuplicates) {
  SessionService serviceStore(SessionServiceOptions{});
  const SessionConfig config = smallConfig();
  ASSERT_EQ(serviceStore.open(openRequestFor(config)).status,
            SessionStatus::kOk);
  const auto first = serviceStore.mutate(mutateRequestFor(config, mut(1)));
  ASSERT_EQ(first.status, SessionStatus::kOk);
  serviceStore.beginDrain();
  EXPECT_EQ(serviceStore.mutate(mutateRequestFor(config, mut(2))).status,
            SessionStatus::kDraining);
  EXPECT_EQ(serviceStore.open(openRequestFor(smallConfig("t2", "s2"))).status,
            SessionStatus::kDraining);
  // Duplicates still answer — a drain must not strand a client that lost
  // its reply.
  EXPECT_EQ(serviceStore.mutate(mutateRequestFor(config, mut(1))).program,
            first.program);
}

TEST(SessionService, RecoversFromJournalAfterUncleanStop) {
  TempDir dir;
  const SessionConfig config = smallConfig();
  SessionEngine reference(config);
  std::vector<std::string> firstHalf;
  {
    SessionServiceOptions options;
    options.stateDir = dir.path;
    options.snapshotEvery = 2;
    SessionService first(options);
    ASSERT_EQ(first.open(openRequestFor(config)).status, SessionStatus::kOk);
    for (std::uint64_t k = 1; k <= 3; ++k) {
      const auto response = first.mutate(
          mutateRequestFor(config, mut(k, k == 2)));
      firstHalf.push_back(response.program);
      reference.apply(mut(k, k == 2));
    }
    // No drain(): the destructor stops executors without persisting a
    // final snapshot — recovery must come from the journal.
  }
  SessionServiceOptions options;
  options.stateDir = dir.path;
  SessionService second(options);
  EXPECT_EQ(second.recoveredSessions(), 1u);
  EXPECT_EQ(second.quarantined(), 0u);
  const auto resumed = second.open(openRequestFor(config));
  EXPECT_EQ(resumed.status, SessionStatus::kOk);
  EXPECT_EQ(resumed.lastApplied, 3u);
  // The recovered session continues exactly where the reference is.
  for (std::uint64_t k = 4; k <= 6; ++k) {
    const auto response =
        second.mutate(mutateRequestFor(config, mut(k, k == 5)));
    const PlanOutcome expected = reference.apply(mut(k, k == 5));
    EXPECT_EQ(response.program, expected.program) << "seq " << k;
  }
  // And the recovered transcript prefix is intact for replay.
  service::SessionReplayRequest replayRequest;
  replayRequest.tenant = config.tenant;
  replayRequest.name = config.name;
  const auto replayed = second.replay(replayRequest);
  ASSERT_EQ(replayed.status, SessionStatus::kOk);
  // Planned entries only — 1 and 3 from before the crash (2 deferred into
  // 3's flush), 4 and 6 from after (5 deferred into 6's flush).
  ASSERT_EQ(replayed.entries.size(), 4u);
  EXPECT_EQ(replayed.entries[0].seq, 1u);
  EXPECT_EQ(replayed.entries[0].program, firstHalf[0]);
  EXPECT_EQ(replayed.entries[1].seq, 3u);
  EXPECT_EQ(replayed.entries[1].program, firstHalf[2]);
}

TEST(SessionService, TornJournalTailRecoversThePrefix) {
  TempDir dir;
  const SessionConfig config = smallConfig();
  {
    SessionServiceOptions options;
    options.stateDir = dir.path;
    options.snapshotEvery = 0;  // journal only
    SessionService first(options);
    ASSERT_EQ(first.open(openRequestFor(config)).status, SessionStatus::kOk);
    for (std::uint64_t k = 1; k <= 3; ++k)
      first.mutate(mutateRequestFor(config, mut(k)));
  }
  // Tear the final record, as a power cut mid-append would.
  const std::string wal = dir.path + "/t@s.wal";
  auto bytes = fsio::readFileIfExists(wal);
  ASSERT_TRUE(bytes.has_value());
  bytes->resize(bytes->size() - 5);
  fsio::writeFileDurable(wal, *bytes);

  SessionServiceOptions options;
  options.stateDir = dir.path;
  SessionService second(options);
  EXPECT_EQ(second.recoveredSessions(), 1u);
  const auto resumed = second.open(openRequestFor(config));
  EXPECT_EQ(resumed.status, SessionStatus::kOk);
  EXPECT_EQ(resumed.lastApplied, 2u);  // the torn seq-3 record dropped
}

TEST(SessionService, CorruptSnapshotIsQuarantinedAndJournalWins) {
  TempDir dir;
  const SessionConfig config = smallConfig();
  SessionEngine reference(config);
  {
    SessionServiceOptions options;
    options.stateDir = dir.path;
    options.snapshotEvery = 2;
    SessionService first(options);
    ASSERT_EQ(first.open(openRequestFor(config)).status, SessionStatus::kOk);
    for (std::uint64_t k = 1; k <= 2; ++k) {
      first.mutate(mutateRequestFor(config, mut(k)));
      reference.apply(mut(k));
    }
  }
  // Flip a byte in the snapshot body: the checksum must catch it.
  const std::string snap = dir.path + "/t@s.snap";
  auto bytes = fsio::readFileIfExists(snap);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[bytes->size() / 2] ^= 0x40;
  fsio::writeFileDurable(snap, *bytes);

  SessionServiceOptions options;
  options.stateDir = dir.path;
  SessionService second(options);
  EXPECT_EQ(second.quarantined(), 1u);
  EXPECT_TRUE(
      fsio::readFileIfExists(snap + ".corrupt").has_value());  // evidence
  // The journal alone still rebuilds the session (it was rotated at the
  // snapshot, but the snapshot covered seqs survive in... the rotated
  // journal only holds post-snapshot records, so recovery here must
  // rebuild from the open record) — lastApplied depends on what the
  // journal retains; the invariant is: no crash, and the session exists.
  const auto resumed = second.open(openRequestFor(config));
  EXPECT_EQ(resumed.status, SessionStatus::kOk);
}

TEST(SessionService, DrainPersistsEverySession) {
  TempDir dir;
  const SessionConfig config = smallConfig();
  {
    SessionServiceOptions options;
    options.stateDir = dir.path;
    options.snapshotEvery = 0;
    SessionService store(options);
    ASSERT_EQ(store.open(openRequestFor(config)).status, SessionStatus::kOk);
    for (std::uint64_t k = 1; k <= 3; ++k)
      store.mutate(mutateRequestFor(config, mut(k)));
    EXPECT_EQ(store.drain(), 1u);
  }
  // The drained state restarts cleanly (snapshot + rotated journal).
  SessionServiceOptions options;
  options.stateDir = dir.path;
  SessionService second(options);
  EXPECT_EQ(second.recoveredSessions(), 1u);
  const auto resumed = second.open(openRequestFor(config));
  EXPECT_EQ(resumed.lastApplied, 3u);
}

// --- Kill points against a real daemon ------------------------------------

struct Daemon {
  pid_t pid = -1;

  void start(const std::string& socketPath, const std::string& stateDir) {
    pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      const std::string binary = rfsmdPath();
      ::execl(binary.c_str(), binary.c_str(), "--socket", socketPath.c_str(),
              "--state-dir", stateDir.c_str(), "--workers", "1",
              "--snapshot-every", "2", static_cast<char*>(nullptr));
      _exit(127);
    }
    for (int spin = 0; spin < 200; ++spin) {
      if (::access(socketPath.c_str(), F_OK) == 0) return;
      std::this_thread::sleep_for(25ms);
    }
    FAIL() << "rfsmd did not come up on " << socketPath;
  }

  void sigkill() {
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    pid = -1;
  }

  int sigtermAndWait() {
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    return status;
  }

  ~Daemon() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

std::string freshSocketPath(const char* tag) {
  return "/tmp/rfsm-session-" + std::to_string(getpid()) + "-" + tag +
         ".sock";
}

/// The global mutation schedule shared by daemon runs and the local
/// reference engine: odd seqs defer (and compact into the next even
/// flush), except the final mutation, which always flushes.  The flag
/// depends only on (k, total) — never on where a kill split the stream —
/// so every resumed segment replays the same schedule.
MutationRecord scheduledMut(std::uint64_t k, std::uint64_t total) {
  return mut(k, k % 2 == 1 && k != total);
}

/// Streams mutations [from, to] of the `total`-long schedule into the
/// daemon and appends each planned program to `transcript` (resends after
/// reconnects are handled by SessionStream + the server's duplicate
/// answering).
void streamRange(service::SessionStream& stream, const SessionConfig& config,
                 std::uint64_t from, std::uint64_t to, std::uint64_t total,
                 std::vector<std::pair<std::uint64_t, std::string>>*
                     transcript) {
  for (std::uint64_t k = from; k <= to; ++k) {
    const MutationRecord rec = scheduledMut(k, total);
    service::SessionMutateRequest request;
    request.tenant = config.tenant;
    request.name = config.name;
    request.seq = rec.seq;
    request.deltaCount = rec.deltaCount;
    request.newStateCount = rec.newStateCount;
    request.mutationSeed = rec.mutationSeed;
    request.defer = rec.defer;
    const auto response = stream.mutate(request);
    ASSERT_TRUE(response.status == SessionStatus::kOk ||
                response.status == SessionStatus::kAccepted)
        << "seq " << k << ": " << toString(response.status) << " "
        << response.error;
    if (response.status == SessionStatus::kOk)
      transcript->emplace_back(k, response.program);
  }
}

TEST(SessionKillPoints, EveryKillPointResumesByteIdentical) {
  const std::uint64_t kMutations = 4;
  // The uninterrupted reference: the same engine the daemon runs.
  const SessionConfig config = smallConfig("kp", "stream");
  std::vector<std::pair<std::uint64_t, std::string>> reference;
  {
    SessionEngine engine(config);
    for (std::uint64_t k = 1; k <= kMutations; ++k) {
      const PlanOutcome outcome = engine.apply(scheduledMut(k, kMutations));
      if (outcome.planned) reference.emplace_back(k, outcome.program);
    }
  }

  // Kill after k mutations for every k in [0, kMutations), restart,
  // resume, finish — the stitched transcript must equal the reference.
  for (std::uint64_t killAfter = 0; killAfter < kMutations; ++killAfter) {
    SCOPED_TRACE("kill point " + std::to_string(killAfter));
    TempDir dir;
    const std::string socketPath =
        freshSocketPath(("kp" + std::to_string(killAfter)).c_str());
    std::vector<std::pair<std::uint64_t, std::string>> transcript;

    Daemon daemon;
    daemon.start(socketPath, dir.path);
    service::SessionStream::Options streamOptions;
    streamOptions.endpoint = ipc::parseEndpoint(socketPath);
    streamOptions.retryFor = 10s;
    {
      service::SessionStream stream(streamOptions);
      service::SessionOpenRequest open = openRequestFor(config);
      ASSERT_EQ(stream.open(open).status, SessionStatus::kOk);
      streamRange(stream, config, 1, killAfter, kMutations, &transcript);
    }
    daemon.sigkill();

    Daemon restarted;
    restarted.start(socketPath, dir.path);
    service::SessionStream stream(streamOptions);
    const auto resumed = stream.open(openRequestFor(config));
    ASSERT_EQ(resumed.status, SessionStatus::kOk);
    ASSERT_EQ(resumed.lastApplied, killAfter);
    streamRange(stream, config, killAfter + 1, kMutations, kMutations,
                &transcript);

    ASSERT_EQ(transcript.size(), reference.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
      EXPECT_EQ(transcript[k].first, reference[k].first);
      EXPECT_EQ(transcript[k].second, reference[k].second)
          << "plan at seq " << reference[k].first << " diverged";
    }
    const int status = restarted.sigtermAndWait();
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    ::unlink(socketPath.c_str());
  }
}

TEST(SessionKillPoints, KillMidStreamThenClientRetriesThroughRestart) {
  // The client keeps one SessionStream across the kill: the resend after
  // reconnect is answered from the recovered transcript.
  const SessionConfig config = smallConfig("kp2", "retry");
  TempDir dir;
  const std::string socketPath = freshSocketPath("retry");
  Daemon daemon;
  daemon.start(socketPath, dir.path);

  service::SessionStream::Options streamOptions;
  streamOptions.endpoint = ipc::parseEndpoint(socketPath);
  streamOptions.retryFor = 15s;
  service::SessionStream stream(streamOptions);
  ASSERT_EQ(stream.open(openRequestFor(config)).status, SessionStatus::kOk);
  std::vector<std::pair<std::uint64_t, std::string>> transcript;
  streamRange(stream, config, 1, 2, 4, &transcript);

  daemon.sigkill();
  // Restart concurrently with the client's next mutate: the client's
  // reconnect loop rides over the gap.
  std::thread restarter([&] {
    std::this_thread::sleep_for(300ms);
    daemon.start(socketPath, dir.path);
  });
  streamRange(stream, config, 3, 4, 4, &transcript);
  restarter.join();
  EXPECT_GE(stream.reconnects(), 1u);

  SessionEngine engine(config);
  std::vector<std::pair<std::uint64_t, std::string>> reference;
  for (std::uint64_t k = 1; k <= 4; ++k) {
    const PlanOutcome outcome = engine.apply(scheduledMut(k, 4));
    if (outcome.planned) reference.emplace_back(k, outcome.program);
  }
  ASSERT_EQ(transcript.size(), reference.size());
  for (std::size_t k = 0; k < reference.size(); ++k)
    EXPECT_EQ(transcript[k].second, reference[k].second);
  ::unlink(socketPath.c_str());
}

// --- Fairness under an aggressive tenant ---------------------------------

TEST(SessionFairness, StarvedTenantStillMakesBoundedProgress) {
  // One executor, an aggressor with a deep backlog of expensive items, a
  // victim streaming sequentially: weighted-fair scheduling must bound the
  // victim's completion to the same order of wall time as the aggressor's,
  // instead of letting the backlog starve it out.
  SessionServiceOptions options;
  options.executors = 1;
  SessionService store(options);
  const int kAggressorSessions = 3;
  std::vector<SessionConfig> aggressors;
  for (int a = 0; a < kAggressorSessions; ++a) {
    SessionConfig config =
        smallConfig("aggr", "s" + std::to_string(a));
    config.priority = 1;
    aggressors.push_back(config);
    ASSERT_EQ(store.open(openRequestFor(config)).status, SessionStatus::kOk);
  }
  SessionConfig victim = smallConfig("victim", "v");
  victim.priority = 1;
  ASSERT_EQ(store.open(openRequestFor(victim)).status, SessionStatus::kOk);

  const std::uint64_t kPerAggressor = 10;  // 10x the victim's rate
  std::vector<std::thread> threads;
  threads.reserve(aggressors.size());
  for (const SessionConfig& config : aggressors)
    threads.emplace_back([&store, config, kPerAggressor] {
      for (std::uint64_t k = 1; k <= kPerAggressor; ++k)
        store.mutate(mutateRequestFor(config, mut(k)));
    });

  // The victim streams 3 mutations while the aggressors flood.
  const auto victimStart = std::chrono::steady_clock::now();
  for (std::uint64_t k = 1; k <= 3; ++k) {
    const auto response = store.mutate(mutateRequestFor(victim, mut(k)));
    EXPECT_EQ(response.status, SessionStatus::kOk);
  }
  const auto victimTotal = std::chrono::steady_clock::now() - victimStart;
  for (std::thread& t : threads) t.join();

  // Bound: with fair scheduling the victim waits for at most a handful of
  // aggressor items per slot, never the whole 30-item backlog.  The bound
  // is deliberately loose (10x one victim stream) to stay robust on slow
  // CI machines while still failing a strict-FIFO regression, which would
  // cost the full backlog (~10x more).
  SessionEngine probe(victim);
  const auto probeStart = std::chrono::steady_clock::now();
  for (std::uint64_t k = 1; k <= 3; ++k) probe.apply(mut(k));
  const auto probeCost = std::chrono::steady_clock::now() - probeStart;
  EXPECT_LT(victimTotal, probeCost * 40 + std::chrono::seconds(2))
      << "victim total " << victimTotal.count() << "ns vs probe "
      << probeCost.count() << "ns";
}

}  // namespace
}  // namespace rfsm
