// Fault-tolerance subsystem tests: seeded injection, guaranteed detection,
// journaled resume, patch-based repair and checkpoint rollback — the
// zero-silent-corruption contract of runGuardedMigration.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/apply.hpp"
#include "core/journal.hpp"
#include "core/jsr.hpp"
#include "core/recovery.hpp"
#include "core/repair.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "rtl/components.hpp"
#include "rtl/datapath.hpp"
#include "rtl/kernel.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

#include "apps/netproto/protocol.hpp"

namespace rfsm {
namespace {

MigrationContext randomContext(int states, int inputs, int deltas,
                               std::uint64_t seed, int newStates = 0) {
  Rng rng(seed);
  RandomMachineSpec spec;
  spec.stateCount = states;
  spec.inputCount = inputs;
  spec.outputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = deltas;
  mutation.newStateCount = newStates;
  return MigrationContext(source, mutateMachine(source, mutation, rng));
}

// ---------------------------------------------------------------------------
// FaultInjector: seeded, bounded, reproducible.

TEST(FaultInjector, SameSeedReproducesScenarioExactly) {
  fault::FaultModel model;
  fault::FaultGeometry geometry;
  geometry.cellCount = 24;
  geometry.bitsPerCell = 5;
  geometry.programLength = 9;
  fault::FaultInjector a(77), b(77);
  for (int draw = 0; draw < 20; ++draw) {
    const fault::FaultScenario sa = a.draw(model, geometry);
    const fault::FaultScenario sb = b.draw(model, geometry);
    EXPECT_EQ(sa.abortAtStep, sb.abortAtStep);
    EXPECT_EQ(sa.flips, sb.flips);
  }
}

TEST(FaultInjector, DrawsStayInsideGeometry) {
  fault::FaultModel model;
  model.abortProbability = 1.0;
  model.flipProbability = 1.0;
  model.maxFlips = 4;
  fault::FaultGeometry geometry;
  geometry.cellCount = 12;
  geometry.bitsPerCell = 3;
  geometry.programLength = 7;
  fault::FaultInjector injector(5);
  for (int draw = 0; draw < 50; ++draw) {
    const fault::FaultScenario s = injector.draw(model, geometry);
    ASSERT_TRUE(s.abortAtStep.has_value());
    EXPECT_GE(*s.abortAtStep, 0);
    EXPECT_LE(*s.abortAtStep, geometry.programLength);
    for (const fault::CellFault& f : s.flips) {
      EXPECT_LT(f.cell, geometry.cellCount);
      EXPECT_LT(f.bit, geometry.bitsPerCell);
      EXPECT_GE(f.bit, 0);
      // Nothing "happens" after the power is gone.
      EXPECT_LE(f.atStep, *s.abortAtStep);
      EXPECT_FALSE(f.sticky);  // no sticky-eligible cells supplied
    }
  }
}

TEST(FaultInjector, StickyFlipsOnlyTargetEligibleCells) {
  fault::FaultModel model;
  model.abortProbability = 0.0;
  model.flipProbability = 1.0;
  model.maxFlips = 3;
  model.stickyProbability = 1.0;
  fault::FaultGeometry geometry;
  geometry.cellCount = 20;
  geometry.bitsPerCell = 4;
  geometry.programLength = 6;
  geometry.stickyCells = {3, 17};
  fault::FaultInjector injector(9);
  bool sawSticky = false;
  for (int draw = 0; draw < 30; ++draw) {
    for (const fault::CellFault& f : injector.draw(model, geometry).flips) {
      if (!f.sticky) continue;
      sawSticky = true;
      EXPECT_TRUE(f.cell == 3 || f.cell == 17) << f.cell;
    }
  }
  EXPECT_TRUE(sawSticky);
}

// ---------------------------------------------------------------------------
// Detection property: every single-bit flip on a specified cell is caught
// by the integrity scan; flips on unspecified cells are provably harmless
// (the cell is never read, and the scan skips it by design).

class DetectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DetectionPropertyTest, EverySpecifiedCellFlipIsDetected) {
  const MigrationContext context =
      randomContext(4 + GetParam() % 5, 2 + GetParam() % 2, 3,
                    static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  MutableMachine machine(context);
  for (SymbolId s = 0; s < context.states().size(); ++s) {
    for (SymbolId i = 0; i < context.inputs().size(); ++i) {
      for (int bit = 0; bit < machine.faultBitsPerCell(); ++bit) {
        MutableMachine victim = machine;
        const bool specified = victim.isSpecified(i, s);
        victim.corruptBit(i, s, bit);
        const std::vector<TotalState> scan = victim.integrityScan();
        if (specified) {
          ASSERT_EQ(scan.size(), 1u)
              << "flip at (" << int{i} << ", " << int{s} << ") bit " << bit;
          EXPECT_EQ(scan[0].input, i);
          EXPECT_EQ(scan[0].state, s);
        } else {
          // Harmless: the damaged word backs no specified transition, so
          // neither the scan nor the table check can (or need to) see it.
          EXPECT_TRUE(scan.empty());
          EXPECT_TRUE(victim.matchesSource());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DetectionPropertyTest, ::testing::Range(0, 6));

TEST(Detection, CheckpointRestoreErasesDamage) {
  const MigrationContext context(example41Source(), example41Target());
  MutableMachine machine(context);
  const MutableMachine::TableImage golden = machine.checkpoint();
  machine.corruptBit(0, 0, 0);
  machine.corruptBit(1, 1, 1);
  EXPECT_FALSE(machine.integrityScan().empty());
  machine.restore(golden);
  EXPECT_TRUE(machine.integrityScan().empty());
  EXPECT_TRUE(machine.matchesSource());
}

// ---------------------------------------------------------------------------
// OnlineVerifier: layered checks, cached by (tableVersion, state).

TEST(OnlineVerifier, AcceptsCompletedMigrationAndCachesVerdict) {
  const MigrationContext context(example41Source(), example41Target());
  MutableMachine machine(context);
  machine.applyProgram(planJsr(context));
  OnlineVerifier verifier;
  EXPECT_TRUE(verifier.verify(machine).ok);
  const std::uint64_t hitsBefore =
      metrics::counter(metrics::kVerifierCacheHits).value();
  EXPECT_TRUE(verifier.verify(machine).ok);  // nothing changed: cache hit
  EXPECT_EQ(metrics::counter(metrics::kVerifierCacheHits).value(),
            hitsBefore + 1);
}

TEST(OnlineVerifier, ReportsCorruptionAndRecomputesAfterVersionBump) {
  const MigrationContext context(example41Source(), example41Target());
  MutableMachine machine(context);
  machine.applyProgram(planJsr(context));
  OnlineVerifier verifier;
  ASSERT_TRUE(verifier.verify(machine).ok);
  machine.corruptBit(0, 0, 0);  // version bump invalidates the cache
  const OnlineVerifier::Outcome& verdict = verifier.verify(machine);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.reason.find("integrity scan"), std::string::npos);
}

TEST(OnlineVerifier, RejectsHalfFinishedMigration) {
  const MigrationContext context(example41Source(), example41Target());
  MutableMachine machine(context);
  OnlineVerifier verifier;
  const OnlineVerifier::Outcome& verdict = verifier.verify(machine);
  EXPECT_FALSE(verdict.ok);  // still the source machine, not M'
}

// ---------------------------------------------------------------------------
// Journal: WAL roundtrip, torn-tail tolerance, resume work list.

TEST(Journal, SerializeParseRoundtrip) {
  const MigrationContext context(example41Source(), example41Target());
  const ReconfigurationProgram program = planJsr(context);
  ProgramJournal journal;
  journal.begin(program);
  journal.commit(0);
  journal.commit(1);
  const std::string text = journal.serialize(context);
  const ProgramJournal parsed = ProgramJournal::parse(context, text);
  EXPECT_TRUE(parsed.active());
  EXPECT_FALSE(parsed.truncated());
  EXPECT_EQ(parsed.committedSteps(), 2);
  EXPECT_EQ(parsed.program().steps, program.steps);
  EXPECT_EQ(parsed.remainingProgram().length(), program.length() - 2);
}

TEST(Journal, TornTrailingRecordIsDroppedNotFatal) {
  const MigrationContext context(example41Source(), example41Target());
  ProgramJournal journal;
  journal.begin(planJsr(context));
  journal.commit(0);
  journal.commit(1);
  std::string text = journal.serialize(context);
  // Tear the last commit record mid-write (the power-loss failure mode).
  text.resize(text.size() - 4);
  const ProgramJournal parsed = ProgramJournal::parse(context, text);
  EXPECT_TRUE(parsed.truncated());
  EXPECT_EQ(parsed.committedSteps(), 1);  // the torn record does not count
}

TEST(Journal, CorruptChecksumThrowsJournalError) {
  const MigrationContext context(example41Source(), example41Target());
  ProgramJournal journal;
  journal.begin(planJsr(context));
  journal.commit(0);
  journal.commit(1);
  std::string text = journal.serialize(context);
  const std::size_t at = text.find("commit 0");
  ASSERT_NE(at, std::string::npos);
  text[at + std::string("commit 0 ").size()] ^= 1;  // damage checksum hex
  // Damage before the final record is a hard error, never silently eaten.
  EXPECT_THROW(ProgramJournal::parse(context, text), JournalError);
}

TEST(Journal, CompleteJournalRoundtripsWithDoneMarker) {
  const MigrationContext context(example41Source(), example41Target());
  const ReconfigurationProgram program = planJsr(context);
  ProgramJournal journal;
  journal.begin(program);
  for (int k = 0; k < program.length(); ++k) journal.commit(k);
  ASSERT_TRUE(journal.complete());
  const std::string text = journal.serialize(context);
  EXPECT_NE(text.find("done"), std::string::npos);
  EXPECT_TRUE(ProgramJournal::parse(context, text).complete());
}

// ---------------------------------------------------------------------------
// Guarded migration: the zero-silent-corruption contract.

TEST(GuardedMigration, CleanRunVerifies) {
  const MigrationContext context(example41Source(), example41Target());
  MutableMachine machine(context);
  const GuardedMigrationReport report =
      runGuardedMigration(machine, planJsr(context), fault::FaultScenario{});
  EXPECT_EQ(report.outcome, MigrationOutcome::kVerified);
  EXPECT_FALSE(report.faultDetected);
  EXPECT_FALSE(report.silentCorruption());
  EXPECT_TRUE(machine.matchesTarget());
}

TEST(GuardedMigration, PowerLossResumesFromJournal) {
  const MigrationContext context(example41Source(), example41Target());
  const ReconfigurationProgram program = planJsr(context);
  for (int cut = 0; cut < program.length(); ++cut) {
    MutableMachine machine(context);
    fault::FaultScenario scenario;
    scenario.abortAtStep = cut;
    ProgramJournal journal;
    const GuardedMigrationReport report = runGuardedMigration(
        machine, program, scenario, RecoveryOptions{}, &journal);
    EXPECT_EQ(report.outcome, MigrationOutcome::kVerified) << "cut " << cut;
    EXPECT_TRUE(report.faultDetected) << "cut " << cut;
    EXPECT_TRUE(report.resumed) << "cut " << cut;
    EXPECT_TRUE(journal.complete()) << "cut " << cut;
    EXPECT_TRUE(machine.matchesTarget()) << "cut " << cut;
  }
}

TEST(GuardedMigration, PowerLossWithoutJournalIsPatched) {
  const MigrationContext context(example41Source(), example41Target());
  const ReconfigurationProgram program = planJsr(context);
  MutableMachine machine(context);
  fault::FaultScenario scenario;
  scenario.abortAtStep = program.length() / 2;
  const GuardedMigrationReport report =
      runGuardedMigration(machine, program, scenario);
  // planRepair completes the migration from the half-written table.
  EXPECT_EQ(report.outcome, MigrationOutcome::kVerified);
  EXPECT_GE(report.patchAttempts, 1);
  EXPECT_TRUE(machine.matchesTarget());
}

TEST(GuardedMigration, TransientFlipIsDetectedAndPatched) {
  const MigrationContext context(example41Source(), example41Target());
  const ReconfigurationProgram program = planJsr(context);
  MutableMachine machine(context);
  fault::FaultScenario scenario;
  // Flip bit 0 of cell (input 0, state 0) after the program completed.
  scenario.flips.push_back({0, 0, program.length(), false});
  const GuardedMigrationReport report =
      runGuardedMigration(machine, program, scenario);
  EXPECT_EQ(report.outcome, MigrationOutcome::kVerified);
  EXPECT_TRUE(report.faultDetected);
  EXPECT_GE(report.patchAttempts, 1);
  EXPECT_GT(report.backoffCycles, 0);
  EXPECT_TRUE(machine.matchesTarget());
}

TEST(GuardedMigration, StuckAtCellDegradesToCleanRollback) {
  // Expansion-region stuck-at: the damaged RAM row backs a freshly
  // allocated state, so patching is futile but the source image escapes.
  const MigrationContext context = randomContext(6, 2, 5, 11, 1);
  SymbolId newState = kNoSymbol;
  for (SymbolId s = 0; s < context.states().size(); ++s)
    if (!context.inSourceStates(s)) newState = s;
  ASSERT_NE(newState, kNoSymbol);

  const ReconfigurationProgram program = planJsr(context);
  MutableMachine machine(context);
  fault::FaultScenario scenario;
  const std::size_t cell =
      static_cast<std::size_t>(newState) * context.inputs().size();
  scenario.flips.push_back({cell, 0, 0, /*sticky=*/true});
  const GuardedMigrationReport report =
      runGuardedMigration(machine, program, scenario);
  EXPECT_EQ(report.outcome, MigrationOutcome::kRolledBack);
  EXPECT_TRUE(report.faultDetected);
  EXPECT_FALSE(report.silentCorruption());
  EXPECT_TRUE(machine.matchesSource());
  EXPECT_TRUE(machine.integrityScan().empty());
}

TEST(GuardedMigration, SameScenarioReproducesReportExactly) {
  const MigrationContext context = randomContext(8, 3, 10, 202, 2);
  const ReconfigurationProgram program = planJsr(context);
  fault::FaultGeometry geometry;
  geometry.cellCount =
      context.states().size() * static_cast<std::size_t>(
                                    context.inputs().size());
  geometry.bitsPerCell = MutableMachine(context).faultBitsPerCell();
  geometry.programLength = program.length();
  const fault::FaultScenario scenario =
      fault::FaultInjector(0x5eed0001).draw(fault::FaultModel{}, geometry);

  auto once = [&] {
    MutableMachine machine(context);
    return runGuardedMigration(machine, program, scenario);
  };
  const GuardedMigrationReport a = once();
  const GuardedMigrationReport b = once();
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.faultDetected, b.faultDetected);
  EXPECT_EQ(a.patchAttempts, b.patchAttempts);
  EXPECT_EQ(a.cellsPatched, b.cellsPatched);
  EXPECT_EQ(a.backoffCycles, b.backoffCycles);
  EXPECT_EQ(a.executedCycles, b.executedCycles);
  EXPECT_EQ(a.detail, b.detail);
}

/// Property sweep mirroring bench_fault_sweep's default rates: no seed may
/// ever produce a kFailed (silently corrupted) outcome.
class GuardedSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(GuardedSweepTest, NoScenarioEndsInSilentCorruption) {
  const MigrationContext context = randomContext(6, 2, 4, 101);
  const ReconfigurationProgram program = planJsr(context);
  fault::FaultGeometry geometry;
  geometry.cellCount =
      context.states().size() * static_cast<std::size_t>(
                                    context.inputs().size());
  geometry.bitsPerCell = MutableMachine(context).faultBitsPerCell();
  geometry.programLength = program.length();
  fault::FaultInjector injector(
      0x5eed0000 + static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 10; ++round) {
    const fault::FaultScenario scenario =
        injector.draw(fault::FaultModel{}, geometry);
    MutableMachine machine(context);
    ProgramJournal journal;
    const GuardedMigrationReport report = runGuardedMigration(
        machine, program, scenario, RecoveryOptions{}, &journal);
    EXPECT_FALSE(report.silentCorruption()) << report.detail;
    if (report.outcome == MigrationOutcome::kVerified)
      EXPECT_TRUE(machine.matchesTarget());
    else
      EXPECT_TRUE(machine.matchesSource());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuardedSweepTest, ::testing::Range(0, 8));

TEST(RepairToTarget, CompletesAVerifiedOrDamagedMachine) {
  const MigrationContext context(example41Source(), example41Target());
  MutableMachine machine(context);
  machine.applyProgram(planJsr(context));
  EXPECT_EQ(repairToTarget(machine).outcome, MigrationOutcome::kVerified);
  machine.corruptBit(0, 0, 0);
  const GuardedMigrationReport report = repairToTarget(machine);
  EXPECT_EQ(report.outcome, MigrationOutcome::kVerified);
  EXPECT_TRUE(report.faultDetected);
  EXPECT_TRUE(machine.matchesTarget());
}

// ---------------------------------------------------------------------------
// RTL layer: per-row parity on the RAM models, fault port on the datapath.

TEST(RtlParity, RamDetectsEverySingleBitFlip) {
  const MigrationContext context(example41Source(), example41Target());
  rtl::ReconfigurableFsmDatapath hw(context);
  for (SymbolId s = 0; s < context.states().size(); ++s) {
    for (SymbolId i = 0; i < context.inputs().size(); ++i) {
      for (int bit = 0; bit < hw.faultBitsPerCell(); ++bit) {
        rtl::ReconfigurableFsmDatapath victim(context);
        ASSERT_TRUE(victim.integrityScan().empty());
        victim.injectFault(i, s, bit);
        const std::vector<TotalState> scan = victim.integrityScan();
        ASSERT_EQ(scan.size(), 1u)
            << "(" << int{i} << ", " << int{s} << ") bit " << bit;
        EXPECT_EQ(scan[0].input, i);
        EXPECT_EQ(scan[0].state, s);
      }
    }
  }
}

TEST(RtlParity, AuthorizedWritesRefreshParity) {
  rtl::Circuit c;
  const rtl::WireId addr = c.addWire(3, "addr");
  const rtl::WireId we = c.addWire(1, "we");
  const rtl::WireId wdata = c.addWire(8, "wdata");
  const rtl::WireId rdata = c.addWire(8, "rdata");
  rtl::Ram* ram = c.add<rtl::Ram>(3, addr, we, wdata, rdata);
  ram->load(5, 42);
  EXPECT_TRUE(ram->parityOk(5));
  ram->corrupt(5, 3);
  EXPECT_FALSE(ram->parityOk(5));
  EXPECT_EQ(ram->parityScan(), std::vector<std::size_t>{5});
  // Both write paths reseal: the configuration back door ...
  ram->load(5, 42);
  EXPECT_TRUE(ram->parityOk(5));
  // ... and a clocked write through the port.
  ram->corrupt(5, 0);
  c.poke(addr, 5);
  c.poke(we, 1);
  c.poke(wdata, 7);
  c.settle();
  c.step();
  EXPECT_TRUE(ram->parityOk(5));
  EXPECT_TRUE(ram->parityScan().empty());
}

// ---------------------------------------------------------------------------
// Application layer: in-band switchover under fault injection.

TEST(NetprotoFaults, CleanScenarioMatchesPlainSwitchover) {
  Rng rng(1);
  netproto::ProtocolProcessor processor("101", "1101", netproto::UpgradePlanner::kJsr);
  const auto report =
      processor.runFaultySwitchover(3, 3, 6, rng, fault::FaultScenario{});
  EXPECT_FALSE(report.faultDetected);
  EXPECT_FALSE(report.rolledBack);
  EXPECT_GT(report.base.postUpgradeMatches, 0);
}

TEST(NetprotoFaults, FlipDuringUpgradeIsRepairedInBand) {
  Rng rng(2);
  netproto::ProtocolProcessor processor("101", "1101", netproto::UpgradePlanner::kJsr);
  fault::FaultScenario scenario;
  // A late flip (step index past |Z|) lands after the last rewrite, so the
  // migration cannot heal it by overwriting — detection is forced.
  scenario.flips.push_back({0, 0, 1000, false});
  const auto report = processor.runFaultySwitchover(3, 3, 6, rng, scenario);
  EXPECT_TRUE(report.faultDetected);
  EXPECT_TRUE(report.repaired);
  EXPECT_FALSE(report.rolledBack);
  EXPECT_GT(report.base.postUpgradeMatches, 0);
}

TEST(NetprotoFaults, PowerLossAbortsAndRecovers) {
  Rng rng(3);
  netproto::ProtocolProcessor processor("101", "1101", netproto::UpgradePlanner::kJsr);
  fault::FaultScenario scenario;
  scenario.abortAtStep = 1;
  const auto report = processor.runFaultySwitchover(3, 3, 6, rng, scenario);
  EXPECT_TRUE(report.faultDetected);
  // Either the patch programs finish the upgrade or the parser rolls back
  // to the old protocol — both keep the stream flowing.
  EXPECT_TRUE(report.repaired || report.rolledBack);
  EXPECT_GT(report.base.postUpgradeMatches, 0);
}

}  // namespace
}  // namespace rfsm
