// Tests for the two-level logic substrate: cube algebra, cover
// simplification exactness, and FSM synthesis correctness.
#include <gtest/gtest.h>

#include "fsm/builder.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "logic/cover.hpp"
#include "logic/cube.hpp"
#include "logic/synthesize.hpp"
#include "util/rng.hpp"

namespace rfsm::logic {
namespace {

TEST(Cube, PatternRoundTrip) {
  const Cube cube = Cube::fromPattern("1-0");
  EXPECT_EQ(cube.toPattern(), "1-0");
  EXPECT_EQ(cube.width(), 3);
  EXPECT_EQ(cube.literalCount(), 2);
  EXPECT_EQ(cube.at(2), '1');  // leftmost char = most significant variable
  EXPECT_EQ(cube.at(1), '-');
  EXPECT_EQ(cube.at(0), '0');
}

TEST(Cube, MintermMembership) {
  const Cube cube = Cube::fromPattern("1-0");
  EXPECT_TRUE(cube.containsMinterm(0b100));
  EXPECT_TRUE(cube.containsMinterm(0b110));
  EXPECT_FALSE(cube.containsMinterm(0b101));
  EXPECT_FALSE(cube.containsMinterm(0b000));
}

TEST(Cube, UniversalCubeCoversEverything) {
  const Cube all(4);
  for (std::uint64_t m = 0; m < 16; ++m)
    EXPECT_TRUE(all.containsMinterm(m));
  EXPECT_EQ(all.literalCount(), 0);
}

TEST(Cube, CoversAndIntersects) {
  const Cube broad = Cube::fromPattern("1--");
  const Cube narrow = Cube::fromPattern("1-0");
  const Cube disjoint = Cube::fromPattern("0--");
  EXPECT_TRUE(broad.covers(narrow));
  EXPECT_FALSE(narrow.covers(broad));
  EXPECT_TRUE(broad.intersects(narrow));
  EXPECT_FALSE(broad.intersects(disjoint));
  EXPECT_EQ(broad.conflictCount(disjoint), 1);
}

TEST(Cube, AdjacentMerge) {
  const Cube a = Cube::fromPattern("10-");
  const Cube b = Cube::fromPattern("11-");
  const auto merged = a.mergedWith(b);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->toPattern(), "1--");
}

TEST(Cube, ContainmentMerge) {
  const Cube broad = Cube::fromPattern("1--");
  const Cube narrow = Cube::fromPattern("110");
  const auto merged = broad.mergedWith(narrow);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->toPattern(), "1--");
}

TEST(Cube, NonAdjacentDoNotMerge) {
  EXPECT_FALSE(Cube::fromPattern("10-")
                   .mergedWith(Cube::fromPattern("01-"))
                   .has_value());
  EXPECT_FALSE(Cube::fromPattern("1-0")
                   .mergedWith(Cube::fromPattern("11-"))
                   .has_value());
}

TEST(Cube, SetRejectsBadLiterals) {
  Cube cube(2);
  EXPECT_THROW(cube.set(0, 'x'), ContractError);
  EXPECT_THROW(cube.set(5, '1'), ContractError);
}

TEST(Cover, FullSquareCollapsesToUniversalCube) {
  std::vector<std::uint64_t> all;
  for (std::uint64_t m = 0; m < 8; ++m) all.push_back(m);
  Cover cover = Cover::fromMinterms(all, 3);
  cover.simplify();
  EXPECT_EQ(cover.cubeCount(), 1);
  EXPECT_EQ(cover.cubes()[0].literalCount(), 0);
}

TEST(Cover, XorDoesNotSimplify) {
  // x ^ y has no 2-minterm cube cover: stays at 2 cubes, 4 literals.
  Cover cover = Cover::fromMinterms({0b01, 0b10}, 2);
  cover.simplify();
  EXPECT_EQ(cover.cubeCount(), 2);
  EXPECT_EQ(cover.literalCount(), 4);
}

TEST(Cover, SimplifyPreservesFunctionExhaustively) {
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    const int width = 3 + static_cast<int>(rng.below(6));
    std::vector<std::uint64_t> on;
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << width); ++m)
      if (rng.chance(0.4)) on.push_back(m);
    Cover cover = Cover::fromMinterms(on, width);
    const Cover original = cover;
    cover.simplify();
    EXPECT_LE(cover.cubeCount(), original.cubeCount());
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << width); ++m)
      ASSERT_EQ(cover.evaluate(m), original.evaluate(m))
          << "round " << round << " minterm " << m;
  }
}

TEST(Cover, ToStringListsPatterns) {
  Cover cover(2);
  cover.addCube(Cube::fromPattern("1-"));
  EXPECT_EQ(cover.toString(), "1-\n");
}

/// Evaluates a synthesis against the machine's truth tables.
void expectSynthesisExact(const Machine& machine) {
  const TwoLevelSynthesis synthesis = synthesizeTwoLevel(machine);
  const int wi = synthesis.encoding.inputWidth;
  for (SymbolId s = 0; s < machine.stateCount(); ++s) {
    for (SymbolId i = 0; i < machine.inputCount(); ++i) {
      const std::uint64_t m = (static_cast<std::uint64_t>(s) << wi) |
                              static_cast<std::uint64_t>(i);
      const auto next = static_cast<std::uint64_t>(machine.next(i, s));
      const auto out = static_cast<std::uint64_t>(machine.output(i, s));
      for (std::size_t b = 0; b < synthesis.nextStateBits.size(); ++b)
        ASSERT_EQ(synthesis.nextStateBits[b].evaluate(m),
                  ((next >> b) & 1) != 0)
            << "next bit " << b << " at (" << i << "," << s << ")";
      for (std::size_t b = 0; b < synthesis.outputBits.size(); ++b)
        ASSERT_EQ(synthesis.outputBits[b].evaluate(m), ((out >> b) & 1) != 0)
            << "out bit " << b << " at (" << i << "," << s << ")";
    }
  }
}

TEST(Synthesize, ExactOnPaperMachines) {
  expectSynthesisExact(onesDetector());
  expectSynthesisExact(zerosDetector());
  expectSynthesisExact(example41Target());
  expectSynthesisExact(counterMachine(5));
}

TEST(Synthesize, DescribeAndLutEstimate) {
  const TwoLevelSynthesis synthesis = synthesizeTwoLevel(counterMachine(8));
  EXPECT_GT(synthesis.totalCubes(), 0);
  EXPECT_GT(synthesis.totalLiterals(), 0);
  EXPECT_GT(synthesis.estimatedLuts(), 0);
  EXPECT_NE(synthesis.describe().find("4-LUTs"), std::string::npos);
}

/// Property sweep: synthesis is exact on random machines.
class SynthesisPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SynthesisPropertyTest, ExactOnRandomMachines) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 173 + 41);
  RandomMachineSpec spec;
  spec.stateCount = 2 + static_cast<int>(rng.below(12));
  spec.inputCount = 1 + static_cast<int>(rng.below(4));
  spec.outputCount = 1 + static_cast<int>(rng.below(4));
  expectSynthesisExact(randomMachine(spec, rng));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SynthesisPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace rfsm::logic
