// Tests for machine statistics and migration reports.
#include <gtest/gtest.h>

#include "core/migration.hpp"
#include "fsm/builder.hpp"
#include "fsm/statistics.hpp"
#include "gen/families.hpp"
#include "gen/samples.hpp"
#include "tools/report.hpp"

namespace rfsm {
namespace {

TEST(Statistics, CounterMetrics) {
  const MachineStatistics s = computeStatistics(counterMachine(6));
  EXPECT_EQ(s.states, 6);
  EXPECT_EQ(s.reachableStates, 6);
  EXPECT_EQ(s.stronglyConnectedComponents, 1);
  EXPECT_TRUE(s.mooreForm);
  // Modulo-6 ring with up/down: farthest state is 3 steps away.
  EXPECT_EQ(s.eccentricityFromReset, 3);
  EXPECT_EQ(s.diameter, 3);
  EXPECT_EQ(s.sourcesOnly, 0);
  EXPECT_DOUBLE_EQ(s.meanDistinctSuccessors, 2.0);
  EXPECT_EQ(s.stableTotalStates, 0);
}

TEST(Statistics, OnesDetectorMetrics) {
  const MachineStatistics s = computeStatistics(onesDetector());
  EXPECT_EQ(s.states, 2);
  EXPECT_FALSE(s.mooreForm);
  EXPECT_EQ(s.stableTotalStates, 2);
  EXPECT_EQ(s.eccentricityFromReset, 1);
}

TEST(Statistics, UnreachableStateShowsAsInfiniteEccentricity) {
  MachineBuilder b("island");
  b.addInput("0");
  b.addTransition("0", "A", "A", "x");
  b.addTransition("0", "B", "A", "x");
  b.setResetState("A");
  const MachineStatistics s = computeStatistics(b.build());
  EXPECT_EQ(s.reachableStates, 1);
  EXPECT_EQ(s.eccentricityFromReset, -1);
  EXPECT_EQ(s.sourcesOnly, 1);  // B is never entered
}

TEST(Statistics, DescribeMentionsKeyNumbers) {
  const std::string text =
      describeStatistics(computeStatistics(counterMachine(4)));
  EXPECT_NE(text.find("states 4"), std::string::npos);
  EXPECT_NE(text.find("Moore"), std::string::npos);
  EXPECT_NE(text.find("diameter 2"), std::string::npos);
}

TEST(Report, ContainsAllSections) {
  const MigrationContext context(sampleMachine("parity_even"),
                                 sampleMachine("parity_odd"));
  const std::string report = buildMigrationReport(context);
  EXPECT_NE(report.find("# Migration report"), std::string::npos);
  EXPECT_NE(report.find("delta transitions: 4"), std::string::npos);
  EXPECT_NE(report.find("4 output-only"), std::string::npos);
  EXPECT_NE(report.find("| JSR"), std::string::npos);
  EXPECT_NE(report.find("| greedy"), std::string::npos);
  EXPECT_NE(report.find("| EA"), std::string::npos);
  EXPECT_NE(report.find("output-only optimal"), std::string::npos);
  EXPECT_NE(report.find("optimal (search)"), std::string::npos);
  EXPECT_NE(report.find("downtime:"), std::string::npos);
  EXPECT_NE(report.find("fits XCV300"), std::string::npos);
  // All planners valid.
  EXPECT_EQ(report.find("| NO"), std::string::npos);
}

TEST(Report, OptionalSectionsCanBeSkipped) {
  const MigrationContext context(onesDetector(), zerosDetector());
  ReportOptions options;
  options.runEvolutionary = false;
  options.runOptimal = false;
  const std::string report = buildMigrationReport(context, options);
  EXPECT_EQ(report.find("| EA "), std::string::npos);
  EXPECT_EQ(report.find("optimal (search)"), std::string::npos);
  EXPECT_NE(report.find("| JSR"), std::string::npos);
}

TEST(Report, DeterministicForSeed) {
  const MigrationContext context(sampleMachine("hdlc_v1"),
                                 sampleMachine("hdlc_v2"));
  EXPECT_EQ(buildMigrationReport(context), buildMigrationReport(context));
}

}  // namespace
}  // namespace rfsm
