// Tests for don't-care-aware target completion.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/dontcare.hpp"
#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

/// A partial upgrade spec over the ones detector: only one cell is pinned.
PartialMachine onePinnedCell() {
  const Machine m = onesDetector();
  PartialMachine spec("upgrade", m.inputs(), m.outputs(), m.states(),
                      m.resetState());
  // Require: on (1, S1) the output becomes 0 (instead of 1).
  spec.specify(m.inputs().at("1"), m.states().at("S1"), m.states().at("S1"),
               m.outputs().at("0"));
  return spec;
}

TEST(DontCare, InheritsEverythingUnconstrained) {
  const Machine source = onesDetector();
  const CompletionResult completion =
      completeForMigration(source, onePinnedCell());
  // Only the pinned cell differs from the source.
  const MigrationContext context(source, completion.target);
  EXPECT_EQ(context.deltaCount(), 1);
  EXPECT_EQ(completion.defaultedCells, 0);
  EXPECT_GT(completion.inheritedCells, 0);
  // And the completion honours the spec.
  EXPECT_TRUE(implementsSpecification(completion.target, onePinnedCell()));
}

TEST(DontCare, MigrationOfCompletionValidates) {
  const Machine source = onesDetector();
  const CompletionResult completion =
      completeForMigration(source, onePinnedCell());
  const MigrationContext context(source, completion.target);
  EXPECT_TRUE(validateProgram(context, planJsr(context)).valid);
  EXPECT_TRUE(validateProgram(context, planGreedy(context)).valid);
}

TEST(DontCare, NewStatesFallBackToDefaults) {
  const Machine source = onesDetector();
  SymbolTable states({"S0", "S1", "S2"});  // S2 is new
  PartialMachine spec("grow", source.inputs(), source.outputs(), states, 0);
  spec.specify(source.inputs().at("1"), 1, 2, source.outputs().at("0"));
  const CompletionResult completion = completeForMigration(source, spec);
  EXPECT_EQ(completion.target.stateCount(), 3);
  // S2's cells cannot inherit from the source: self-loops + default output.
  const SymbolId s2 = completion.target.states().at("S2");
  for (SymbolId i = 0; i < completion.target.inputCount(); ++i)
    EXPECT_EQ(completion.target.next(i, s2), s2);
  EXPECT_GT(completion.defaultedCells, 0);
  EXPECT_TRUE(implementsSpecification(completion.target, spec));
}

/// Property sweep: the smart completion never has more deltas than random
/// completions of the same spec, and always implements it.
class DontCarePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DontCarePropertyTest, BeatsRandomCompletions) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 709 + 11);
  RandomMachineSpec genSpec;
  genSpec.stateCount = 3 + static_cast<int>(rng.below(6));
  genSpec.inputCount = 2;
  genSpec.outputCount = 2;
  const Machine source = randomMachine(genSpec, rng);

  // Sparse upgrade spec over the same alphabets: pin ~30% of the cells to
  // random values.
  PartialMachine spec("sparse", source.inputs(), source.outputs(),
                      source.states(), source.resetState());
  for (SymbolId s = 0; s < source.stateCount(); ++s)
    for (SymbolId i = 0; i < source.inputCount(); ++i)
      if (rng.chance(0.3))
        spec.specify(
            i, s,
            static_cast<SymbolId>(rng.below(
                static_cast<std::uint64_t>(source.stateCount()))),
            static_cast<SymbolId>(rng.below(
                static_cast<std::uint64_t>(source.outputCount()))));

  const CompletionResult smart = completeForMigration(source, spec);
  EXPECT_TRUE(implementsSpecification(smart.target, spec));
  const int smartDeltas =
      MigrationContext(source, smart.target).deltaCount();

  for (int round = 0; round < 5; ++round) {
    const Machine random = spec.completeRandomly(rng);
    const int randomDeltas = MigrationContext(source, random).deltaCount();
    EXPECT_LE(smartDeltas, randomDeltas) << "round " << round;
  }

  // And the resulting migration is plannable.
  const MigrationContext context(source, smart.target);
  EXPECT_TRUE(validateProgram(context, planGreedy(context)).valid);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DontCarePropertyTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace rfsm
