// Tests for the migration difficulty analyzer.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/difficulty.hpp"
#include "core/planners.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(Difficulty, Example41Profile) {
  const MigrationContext context(example41Source(), example41Target());
  const DifficultyProfile p = analyzeDifficulty(context);
  EXPECT_EQ(p.deltaCount, 4);
  // The two S3-row deltas are structural (S3 is not a source-machine
  // state); (1, S2, S3, 0) itself starts at S2, which exists in M.
  EXPECT_EQ(p.structuralSources, 2);
  EXPECT_EQ(p.sourcesUnreachable, 2);
  // (0,S1,S0,0)'s source S1 is one hop from S0.
  EXPECT_EQ(p.sourcesNearReset, 1);
  // Chains: (1,S2,S3).to = S3 = source of the two S3 deltas, and
  // (1,S3,S3).to = S3 likewise.
  EXPECT_GT(p.chainablePairs, 0);
}

TEST(Difficulty, IdentityMigrationIsTrivial) {
  const MigrationContext context(onesDetector(), onesDetector());
  const DifficultyProfile p = analyzeDifficulty(context);
  EXPECT_EQ(p.deltaCount, 0);
  EXPECT_EQ(p.estimatedLength(), 0);
}

TEST(Difficulty, Example42SingleDelta) {
  const MigrationContext context(example42Source(), example42Target());
  const DifficultyProfile p = analyzeDifficulty(context);
  EXPECT_EQ(p.deltaCount, 1);
  EXPECT_EQ(p.sourcesUnreachable, 0);
  // S3 is three hops away from S0.
  EXPECT_DOUBLE_EQ(p.meanSourceDistance, 3.0);
  EXPECT_EQ(p.sourcesNearReset, 0);
}

TEST(Difficulty, DescribeMentionsEstimate) {
  const MigrationContext context(example41Source(), example41Target());
  const std::string text = describeDifficulty(analyzeDifficulty(context));
  EXPECT_NE(text.find("|Td| 4"), std::string::npos);
  EXPECT_NE(text.find("estimate"), std::string::npos);
}

/// Property: the estimate lies within the theorem bounds (it models a
/// JSR-or-better plan) for random instances.
class DifficultyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DifficultyPropertyTest, EstimateRespectsBounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 3);
  RandomMachineSpec spec;
  spec.stateCount = 4 + static_cast<int>(rng.below(10));
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 2 + static_cast<int>(rng.below(6));
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);

  const DifficultyProfile p = analyzeDifficulty(context);
  EXPECT_EQ(p.deltaCount, context.deltaCount());
  EXPECT_GE(p.estimatedLength(), programLowerBound(context));
  EXPECT_LE(p.estimatedLength(), jsrUpperBound(context));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifficultyPropertyTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace rfsm
