// Tests for the parallel batch planning engine: bit-identical results for
// every job count (the engine's core contract), the per-machine BFS cache
// against an uncached reference, and the telemetry counters it feeds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <queue>
#include <vector>

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "core/mutable_machine.hpp"
#include "core/planners.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

MigrationContext makeInstance(int states, int deltas, std::uint64_t seed) {
  Rng rng(seed);
  RandomMachineSpec spec;
  spec.stateCount = states;
  spec.inputCount = 2;
  spec.outputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = deltas;
  const Machine target = mutateMachine(source, mutation, rng);
  return MigrationContext(source, target);
}

std::vector<MigrationContext> makeInstances(int count) {
  std::vector<MigrationContext> instances;
  instances.reserve(count);
  for (int k = 0; k < count; ++k)
    instances.push_back(makeInstance(8 + k % 3, 4 + k, 900 + k));
  return instances;
}

TEST(PlanAll, MatchesSerialPlannerPerInstance) {
  const auto instances = makeInstances(5);
  BatchOptions options;
  options.jobs = 2;
  const auto programs = planAll(
      instances,
      [](const MigrationContext& c, Rng&) { return planJsr(c); }, options);
  ASSERT_EQ(programs.size(), instances.size());
  for (std::size_t k = 0; k < instances.size(); ++k) {
    EXPECT_EQ(programs[k].steps, planJsr(instances[k]).steps);
    EXPECT_TRUE(validateProgram(instances[k], programs[k]).valid);
  }
}

TEST(PlanAll, BitIdenticalForEveryJobCount) {
  const auto instances = makeInstances(6);
  const BatchPlanFn ea = [](const MigrationContext& c, Rng& rng) {
    EvolutionConfig config;
    config.generations = 15;
    return planEvolutionary(c, config, rng).program;
  };
  BatchOptions serial, parallel;
  serial.jobs = 1;
  parallel.jobs = 4;
  serial.seed = parallel.seed = 7;
  const auto a = planAll(instances, ea, serial);
  const auto b = planAll(instances, ea, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k)
    EXPECT_EQ(a[k].steps, b[k].steps) << "instance " << k;
}

TEST(PlanAll, InstanceStreamKeyedByIndexNotBatchShape) {
  // Planning a prefix of the batch must give the same programs: instance k
  // always draws from substream(k).
  const auto instances = makeInstances(4);
  const std::vector<MigrationContext> prefix(instances.begin(),
                                             instances.begin() + 2);
  const BatchPlanFn ea = [](const MigrationContext& c, Rng& rng) {
    EvolutionConfig config;
    config.generations = 10;
    return planEvolutionary(c, config, rng).program;
  };
  const auto full = planAll(instances, ea);
  const auto part = planAll(prefix, ea);
  ASSERT_EQ(part.size(), 2u);
  EXPECT_EQ(full[0].steps, part[0].steps);
  EXPECT_EQ(full[1].steps, part[1].steps);
}

TEST(PlanAll, EmptyBatch) {
  EXPECT_TRUE(planAll({}, [](const MigrationContext& c, Rng&) {
                return planJsr(c);
              }).empty());
}

TEST(PlanAllChecked, ThrowingInstancePoisonsOnlyItsSlot) {
  metrics::resetAll();
  const auto instances = makeInstances(5);
  // Instance 2 "hits a planner defect"; every other instance must still
  // deliver its exact usual program.
  std::atomic<int> calls{0};
  const BatchPlanFn flaky = [&](const MigrationContext& c, Rng&) {
    calls.fetch_add(1);
    if (c.deltaCount() == instances[2].deltaCount())
      throw Error("simulated planner defect");
    return planJsr(c);
  };
  BatchOptions options;
  options.jobs = 2;
  const BatchReport report = planAllChecked(instances, flaky, options);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].instance, 2u);
  EXPECT_FALSE(report.failures[0].cancelled);
  EXPECT_NE(report.failures[0].error.find("simulated planner defect"),
            std::string::npos);
  EXPECT_EQ(calls.load(), 5);  // the batch drained fully
  ASSERT_EQ(report.programs.size(), 5u);
  for (std::size_t k = 0; k < instances.size(); ++k) {
    if (k == 2) {
      EXPECT_TRUE(report.programs[k].steps.empty());  // poisoned slot
    } else {
      EXPECT_EQ(report.programs[k].steps, planJsr(instances[k]).steps);
    }
  }
  EXPECT_EQ(metrics::counter(metrics::kBatchInstanceFailures).value(), 1u);
  metrics::resetAll();
}

TEST(PlanAll, AggregatesFailuresIntoBatchError) {
  const auto instances = makeInstances(4);
  const BatchPlanFn flaky = [&](const MigrationContext& c, Rng&) {
    if (c.deltaCount() == instances[1].deltaCount() ||
        c.deltaCount() == instances[3].deltaCount())
      throw Error("boom");
    return planJsr(c);
  };
  try {
    planAll(instances, flaky);
    FAIL() << "expected BatchError";
  } catch (const BatchError& error) {
    ASSERT_EQ(error.failures().size(), 2u);
    EXPECT_EQ(error.failures()[0].instance, 1u);
    EXPECT_EQ(error.failures()[1].instance, 3u);
    EXPECT_NE(std::string(error.what()).find("2 of 4"), std::string::npos);
  }
}

TEST(PlanAllChecked, SubstreamBaseReproducesAnyShardBitIdentically) {
  const auto instances = makeInstances(6);
  const BatchPlanFn ea = [](const MigrationContext& c, Rng& rng) {
    EvolutionConfig config;
    config.generations = 12;
    return planEvolutionary(c, config, rng).program;
  };
  BatchOptions whole;
  whole.seed = 11;
  const auto full = planAll(instances, ea, whole);
  // Re-plan the [2, 5) shard as its own batch: substreamBase keeps every
  // instance on its global stream — the worker-crash recovery contract.
  const std::vector<MigrationContext> shard(instances.begin() + 2,
                                            instances.begin() + 5);
  BatchOptions shardOptions;
  shardOptions.seed = 11;
  shardOptions.substreamBase = 2;
  shardOptions.jobs = 2;
  const auto replanned = planAll(shard, ea, shardOptions);
  ASSERT_EQ(replanned.size(), 3u);
  for (std::size_t k = 0; k < replanned.size(); ++k)
    EXPECT_EQ(replanned[k].steps, full[k + 2].steps) << "slot " << k;
}

TEST(PlanAllChecked, CancelledBatchMarksUnstartedInstancesCancelled) {
  const auto instances = makeInstances(4);
  CancelToken cancel;
  cancel.cancel();  // expired before the batch even starts
  BatchOptions options;
  options.cancel = &cancel;
  const BatchReport report = planAllChecked(
      instances, [](const MigrationContext& c, Rng&) { return planJsr(c); },
      options);
  ASSERT_EQ(report.failures.size(), 4u);
  for (const InstanceFailure& failure : report.failures)
    EXPECT_TRUE(failure.cancelled);
}

TEST(PlanEvolutionaryBatch, CancellationUnwindsCooperatively) {
  const auto instances = makeInstances(3);
  EvolutionConfig config;
  config.generations = 500;  // would take a while uncancelled
  CancelToken cancel;
  cancel.setDeadline(CancelToken::Clock::now() +
                     std::chrono::milliseconds(30));
  BatchOptions options;
  options.cancel = &cancel;
  const auto start = std::chrono::steady_clock::now();
  // The EA batch propagates the cancellation directly (callers like the
  // service worker map it to DEADLINE_EXCEEDED) rather than wrapping it.
  EXPECT_THROW(planEvolutionaryBatch(instances, config, options),
               CancelledError);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(20));
}

TEST(PlanEvolutionaryBatch, BitIdenticalForEveryJobCount) {
  const auto instances = makeInstances(5);
  EvolutionConfig config;
  config.generations = 20;
  BatchOptions serial, parallel;
  serial.jobs = 1;
  parallel.jobs = 3;
  const auto a = planEvolutionaryBatch(instances, config, serial);
  const auto b = planEvolutionaryBatch(instances, config, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].program.steps, b[k].program.steps) << "instance " << k;
    EXPECT_EQ(a[k].evaluations, b[k].evaluations);
    EXPECT_EQ(a[k].initialBest, b[k].initialBest);
    EXPECT_TRUE(validateProgram(instances[k], a[k].program).valid);
  }
}

TEST(PlanEvolutionary, PooledFitnessMatchesSerial) {
  const MigrationContext context = makeInstance(10, 8, 321);
  EvolutionConfig config;
  config.generations = 25;
  Rng serialRng(99), pooledRng(99);
  ThreadPool pool(4);
  const EvolutionaryPlan serial =
      planEvolutionary(context, config, serialRng);
  const EvolutionaryPlan pooled =
      planEvolutionary(context, config, pooledRng, {}, &pool);
  EXPECT_EQ(serial.program.steps, pooled.program.steps);
  EXPECT_EQ(serial.evaluations, pooled.evaluations);
  EXPECT_EQ(serial.bestPerGeneration, pooled.bestPerGeneration);
}

/// Uncached single-source BFS straight off the public cell accessors, for
/// checking the MutableMachine cache after arbitrary table writes.
std::vector<int> referenceDistances(const MutableMachine& machine,
                                    SymbolId from) {
  const MigrationContext& context = machine.context();
  const int stateCount = static_cast<int>(context.states().size());
  const int inputCount = static_cast<int>(context.inputs().size());
  std::vector<int> dist(stateCount, -1);
  dist[from] = 0;
  std::queue<SymbolId> frontier;
  frontier.push(from);
  while (!frontier.empty()) {
    const SymbolId s = frontier.front();
    frontier.pop();
    for (SymbolId u = 0; u < inputCount; ++u) {
      if (!machine.isSpecified(u, s)) continue;
      const SymbolId t = machine.next(u, s);
      if (dist[t] != -1) continue;
      dist[t] = dist[s] + 1;
      frontier.push(t);
    }
  }
  return dist;
}

TEST(BfsCache, MatchesUncachedReferenceAfterEveryWrite) {
  const MigrationContext context = makeInstance(9, 7, 555);
  MutableMachine machine(context);
  const ReconfigurationProgram program = planJsr(context);
  const int stateCount = static_cast<int>(context.states().size());

  auto checkAllSources = [&]() {
    for (SymbolId s = 0; s < stateCount; ++s) {
      const std::vector<int>& cached = machine.distancesFrom(s);
      const std::vector<int> reference = referenceDistances(machine, s);
      ASSERT_EQ(static_cast<int>(cached.size()), stateCount);
      // Both use -1 for unreachable states.
      EXPECT_EQ(cached, reference) << "source " << s;
    }
  };

  checkAllSources();
  for (const ReconfigStep& step : program.steps) {
    machine.applyStep(step);
    checkAllSources();  // rewrites bump the table version; cache must follow
  }
  EXPECT_TRUE(machine.matchesTarget());
}

TEST(BfsCache, PathInputsWalkToTheTarget) {
  const MigrationContext context = makeInstance(8, 5, 808);
  MutableMachine machine(context);
  const int stateCount = static_cast<int>(context.states().size());
  const SymbolId from = machine.state();
  for (SymbolId to = 0; to < stateCount; ++to) {
    const auto inputs = machine.pathInputs(from, to);
    const std::vector<int>& dist = machine.distancesFrom(from);
    if (!inputs.has_value()) {
      EXPECT_EQ(dist[to], -1);
      continue;
    }
    EXPECT_EQ(static_cast<int>(inputs->size()), dist[to]);
    SymbolId here = from;
    for (const SymbolId u : *inputs) {
      ASSERT_TRUE(machine.isSpecified(u, here));
      here = machine.next(u, here);
    }
    EXPECT_EQ(here, to);
  }
}

TEST(Telemetry, BatchPlanningFeedsTheCounters) {
  metrics::resetAll();
  const auto instances = makeInstances(3);
  EvolutionConfig config;
  config.generations = 10;
  const auto plans = planEvolutionaryBatch(instances, config);
  for (std::size_t k = 0; k < plans.size(); ++k)
    validateProgram(instances[k], plans[k].program);
  EXPECT_GT(metrics::counter(metrics::kDecodeCalls).value(), 0u);
  EXPECT_EQ(metrics::counter(metrics::kProgramsValidated).value(),
            instances.size());
  EXPECT_GT(metrics::timer("batch.plan_evolutionary").count(), 0u);
  EXPECT_GT(metrics::timer("planner.ea").count(), 0u);
  metrics::resetAll();
}

}  // namespace
}  // namespace rfsm
