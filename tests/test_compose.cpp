// Tests for parallel and cascade machine composition.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/migration.hpp"
#include "core/planners.hpp"
#include "fsm/builder.hpp"
#include "fsm/compose.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/minimize.hpp"
#include "fsm/simulate.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(ParallelCompose, PairwiseBehaviour) {
  const Machine ones = onesDetector();
  const Machine zeros = zerosDetector();
  const Machine both = parallelCompose(ones, zeros);
  // Composite output is "a|b" of the individual outputs on every word.
  Simulator simA(ones), simB(zeros), simC(both);
  Rng rng(3);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const int bit = rng.chance(0.5) ? 1 : 0;
    const std::string in = bit ? "1" : "0";
    const std::string outA =
        ones.outputs().name(simA.step(ones.inputs().at(in)));
    const std::string outB =
        zeros.outputs().name(simB.step(zeros.inputs().at(in)));
    const std::string outC =
        both.outputs().name(simC.step(both.inputs().at(in)));
    ASSERT_EQ(outC, outA + "|" + outB) << "cycle " << cycle;
  }
}

TEST(ParallelCompose, OnlyReachablePairs) {
  const Machine both = parallelCompose(onesDetector(), zerosDetector());
  // Ones/zeros detectors track the same last bit: only the correlated
  // pairs are reachable, not all 4.
  EXPECT_LE(both.stateCount(), 4);
  EXPECT_TRUE(both.states().containsName("S0&S0"));
}

TEST(ParallelCompose, MismatchedInputsRejected) {
  EXPECT_THROW(parallelCompose(onesDetector(), counterMachine(2)), FsmError);
}

TEST(CascadeCompose, PipesOutputsIntoInputs) {
  // A = ones detector (outputs 0/1), B = zeros detector (inputs 0/1):
  // B sees A's output stream in the same cycle.
  const Machine a = onesDetector();
  const Machine b = zerosDetector();
  const Machine cascade = cascadeCompose(a, b);
  Simulator simA(a), simB(b), simC(cascade);
  Rng rng(7);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const int bit = rng.chance(0.5) ? 1 : 0;
    const std::string in = bit ? "1" : "0";
    const std::string mid = a.outputs().name(simA.step(a.inputs().at(in)));
    const std::string expect =
        b.outputs().name(simB.step(b.inputs().at(mid)));
    const std::string got =
        cascade.outputs().name(simC.step(cascade.inputs().at(in)));
    ASSERT_EQ(got, expect) << "cycle " << cycle;
  }
}

TEST(CascadeCompose, IncompatibleAlphabetsRejected) {
  // counter outputs c0..c3, which are not inputs of the ones detector.
  EXPECT_THROW(cascadeCompose(counterMachine(4), onesDetector()), FsmError);
}

TEST(Compose, CompositesPlugIntoMigration) {
  // Compose, then migrate the composite like any other machine.
  const Machine before = parallelCompose(onesDetector(), onesDetector());
  const Machine after = parallelCompose(onesDetector(), zerosDetector());
  const MigrationContext context(before, after);
  EXPECT_GT(context.deltaCount(), 0);
  const ReconfigurationProgram z = planGreedy(context);
  EXPECT_TRUE(validateProgram(context, z).valid);
}

/// Property: composing with a single-state pass-through machine changes
/// nothing behaviourally (identity element of the cascade).
class ComposePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ComposePropertyTest, CascadeWithIdentityIsIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1201 + 3);
  RandomMachineSpec spec;
  spec.stateCount = 2 + static_cast<int>(rng.below(6));
  spec.inputCount = 2;
  spec.outputCount = 2;
  const Machine m = randomMachine(spec, rng);
  // Identity repeater over m's output alphabet.
  MachineBuilder id("wire");
  id.addState("W");
  id.setResetState("W");
  for (const auto& name : m.outputs().names()) {
    id.addInput(name);
    id.addTransition(name, "W", "W", name);
  }
  const Machine cascade = cascadeCompose(m, id.build());
  EXPECT_TRUE(areEquivalent(cascade, m));
}

TEST_P(ComposePropertyTest, ParallelSelfProductMinimizesBackToSelf) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1301 + 9);
  RandomMachineSpec spec;
  spec.stateCount = 2 + static_cast<int>(rng.below(5));
  spec.inputCount = 2;
  const Machine m = randomMachine(spec, rng);
  const Machine squared = parallelCompose(m, m);
  // The diagonal product has exactly the reachable states of m, and its
  // minimized form has at most minimized(m) states.
  EXPECT_LE(minimize(squared).machine.stateCount(),
            minimize(m).machine.stateCount());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ComposePropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace rfsm
