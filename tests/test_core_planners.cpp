// Tests for the planners: JSR (Sec. 4.4, Example 4.3), temporary
// transitions (Sec. 4.3, Example 4.2), bounds (Sec. 4.5), the decoder, the
// greedy / evolutionary / exact planners (Sec. 4.6).
#include <gtest/gtest.h>

#include <numeric>

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "gen/families.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(Bounds, Formulas) {
  EXPECT_EQ(jsrUpperBound(0), 3);
  EXPECT_EQ(jsrUpperBound(4), 15);
  EXPECT_EQ(programLowerBound(7), 7);
  EXPECT_THROW(jsrUpperBound(-1), ContractError);
}

TEST(Jsr, Example43ProgramLengthIs15) {
  // Example 4.3 lists a 15-step program: 3 * (|Td| + 1) with |Td| = 4.
  const MigrationContext context(example41Source(), example41Target());
  const ReconfigurationProgram z = planJsr(context);
  EXPECT_EQ(z.length(), 15);
  EXPECT_EQ(z.length(), jsrUpperBound(context));
  const ValidationResult result = validateProgram(context, z);
  EXPECT_TRUE(result.valid) << result.reason;
}

TEST(Jsr, Example43ProgramStructure) {
  // Paper structure: reset, then (temp, delta, reset) per loop delta, then
  // the final temporary-cell rewrite and reset.
  const MigrationContext context(example41Source(), example41Target());
  const ReconfigurationProgram z = planJsr(context);
  ASSERT_EQ(z.steps.size(), 15u);
  EXPECT_EQ(z.steps[0].kind, StepKind::kReset);
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(z.steps[static_cast<std::size_t>(1 + 3 * d)].kind,
              StepKind::kRewrite);
    EXPECT_TRUE(z.steps[static_cast<std::size_t>(1 + 3 * d)].temporary);
    EXPECT_EQ(z.steps[static_cast<std::size_t>(2 + 3 * d)].kind,
              StepKind::kRewrite);
    EXPECT_FALSE(z.steps[static_cast<std::size_t>(2 + 3 * d)].temporary);
    EXPECT_EQ(z.steps[static_cast<std::size_t>(3 + 3 * d)].kind,
              StepKind::kReset);
  }
  EXPECT_EQ(z.steps[13].kind, StepKind::kRewrite);  // repair temp cell
  EXPECT_EQ(z.steps[14].kind, StepKind::kReset);
  EXPECT_EQ(z.resetCount(), 6);
  EXPECT_EQ(z.temporaryCount(), 4);
}

TEST(Jsr, NoDeltasStillThreeSteps) {
  // Even with Td empty, JSR emits reset + temp-cell rewrite + reset = 3,
  // its 3*(0+1) bound.
  const MigrationContext context(onesDetector(), onesDetector());
  const ReconfigurationProgram z = planJsr(context);
  EXPECT_EQ(z.length(), 3);
  EXPECT_TRUE(validateProgram(context, z).valid);
}

TEST(Jsr, CustomTemporaryInput) {
  const MigrationContext context(example41Source(), example41Target());
  JsrOptions options;
  options.tempInput = context.inputs().at("1");
  const ReconfigurationProgram z = planJsr(context, options);
  EXPECT_TRUE(validateProgram(context, z).valid);
  EXPECT_LE(z.length(), jsrUpperBound(context));
}

TEST(Jsr, TempCellDeltaFoldedIntoTail) {
  // Ones -> zeros: with i0 = "0", the cell (0, S0) is itself a delta; JSR
  // folds it into the tail and the program shortens to 3 * |Td|.
  const MigrationContext context(onesDetector(), zerosDetector());
  JsrOptions options;
  options.tempInput = context.inputs().at("0");
  const ReconfigurationProgram z = planJsr(context, options);
  EXPECT_EQ(context.deltaCount(), 2);
  EXPECT_EQ(z.length(), 3 * 2);
  EXPECT_TRUE(validateProgram(context, z).valid);
}

// ---------------------------------------------------------------------------
// Example 4.2: temporary transitions shorten the program from 4 to 3.
// ---------------------------------------------------------------------------

TEST(TemporaryTransitions, PathProgramTakesFourCycles) {
  const MigrationContext c(example42Source(), example42Target());
  const SymbolId in0 = c.inputs().at("0");
  const SymbolId in1 = c.inputs().at("1");
  // Z = ((1,S0,S1,0), (1,S1,S2,0), (1,S2,S3,0), (0,S3,S0,0)).
  ReconfigurationProgram z;
  z.steps.push_back(ReconfigStep::traverse(in1));
  z.steps.push_back(ReconfigStep::traverse(in1));
  z.steps.push_back(ReconfigStep::traverse(in1));
  z.steps.push_back(ReconfigStep::rewrite(in0, c.states().at("S0"),
                                          c.outputs().at("0")));
  EXPECT_EQ(z.length(), 4);
  EXPECT_TRUE(validateProgram(c, z).valid);
}

TEST(TemporaryTransitions, TemporaryProgramTakesThreeCycles) {
  const MigrationContext c(example42Source(), example42Target());
  const SymbolId in0 = c.inputs().at("0");
  // Z = ((0,S0,S3,0), (0,S3,S0,0), (0,S0,S0,0)).
  ReconfigurationProgram z;
  z.steps.push_back(ReconfigStep::rewrite(in0, c.states().at("S3"),
                                          c.outputs().at("0"), true));
  z.steps.push_back(ReconfigStep::rewrite(in0, c.states().at("S0"),
                                          c.outputs().at("0")));
  z.steps.push_back(ReconfigStep::rewrite(in0, c.states().at("S0"),
                                          c.outputs().at("0")));
  EXPECT_EQ(z.length(), 3);
  const ValidationResult result = validateProgram(c, z);
  EXPECT_TRUE(result.valid) << result.reason;
}

// ---------------------------------------------------------------------------
// Decoder and planners.
// ---------------------------------------------------------------------------

TEST(Decoder, IdentityOrderIsValidOnExample41) {
  const MigrationContext context(example41Source(), example41Target());
  const int n = loopDeltaCount(context);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  const ReconfigurationProgram z = decodeOrder(context, order);
  const ValidationResult result = validateProgram(context, z);
  EXPECT_TRUE(result.valid) << result.reason;
  EXPECT_GE(z.length(), programLowerBound(context));
}

TEST(Decoder, RejectsNonPermutations) {
  const MigrationContext context(example41Source(), example41Target());
  EXPECT_THROW(decodeOrder(context, {0, 0, 1, 2}), ContractError);
  EXPECT_THROW(decodeOrder(context, {0}), ContractError);
}

TEST(Decoder, BestOfThreeNeverWorseThanPaperRule) {
  const MigrationContext context(example41Source(), example41Target());
  const int n = loopDeltaCount(context);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  DecodeOptions paper;
  DecodeOptions better;
  better.rule = DecodeRule::kBestOfThree;
  EXPECT_LE(decodeOrder(context, order, better).length(),
            decodeOrder(context, order, paper).length());
}

TEST(Planners, GreedyValidAndWithinBounds) {
  const MigrationContext context(example41Source(), example41Target());
  const ReconfigurationProgram z = planGreedy(context);
  EXPECT_TRUE(validateProgram(context, z).valid);
  EXPECT_GE(z.length(), programLowerBound(context));
  EXPECT_LE(z.length(), jsrUpperBound(context));
}

TEST(Planners, EvolutionaryBeatsOrMatchesJsrOnExample41) {
  const MigrationContext context(example41Source(), example41Target());
  Rng rng(7);
  EvolutionConfig config;
  config.generations = 40;
  const EvolutionaryPlan plan = planEvolutionary(context, config, rng);
  EXPECT_TRUE(validateProgram(context, plan.program).valid);
  EXPECT_LE(plan.program.length(), planJsr(context).length());
  EXPECT_GE(plan.program.length(), programLowerBound(context));
  EXPECT_GT(plan.evaluations, 0);
  EXPECT_FALSE(plan.bestPerGeneration.empty());
}

TEST(Planners, ExactIsNoWorseThanAnyOtherPlanner) {
  const MigrationContext context(example41Source(), example41Target());
  const auto exact = planExact(context);
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(validateProgram(context, *exact).valid);
  EXPECT_LE(exact->length(), planGreedy(context).length());
  EXPECT_LE(exact->length(), planJsr(context).length());
  Rng rng(3);
  EvolutionConfig config;
  EXPECT_LE(exact->length(),
            planEvolutionary(context, config, rng).program.length());
}

TEST(Planners, ExactRefusesLargeInstances) {
  const MigrationContext context(example41Source(), example41Target());
  EXPECT_FALSE(planExact(context, /*maxDeltas=*/2).has_value());
}

TEST(Planners, NoTemporaryIsValid) {
  const MigrationContext context(example41Source(), example41Target());
  const ReconfigurationProgram z = planNoTemporary(context);
  EXPECT_TRUE(validateProgram(context, z).valid);
}

TEST(Planners, SingleDeltaInstanceAllPlannersAgreeItIsCheap) {
  const MigrationContext context(example42Source(), example42Target());
  // |Td| = 1: every planner should finish in a handful of cycles.
  EXPECT_LE(planJsr(context).length(), 6);
  EXPECT_LE(planGreedy(context).length(), 6);
  const auto exact = planExact(context);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(exact->length(), 4);
  EXPECT_TRUE(validateProgram(context, *exact).valid);
}

TEST(Planners, EvolutionaryDeterministicForSeed) {
  const MigrationContext context(example41Source(), example41Target());
  EvolutionConfig config;
  config.generations = 20;
  Rng a(99), b(99);
  const auto planA = planEvolutionary(context, config, a);
  const auto planB = planEvolutionary(context, config, b);
  EXPECT_EQ(planA.program.length(), planB.program.length());
  EXPECT_EQ(planA.evaluations, planB.evaluations);
}

}  // namespace
}  // namespace rfsm
