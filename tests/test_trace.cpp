// Tracer and latency-histogram tests: span emission under concurrency,
// ring overflow accounting, trace-event JSON structure, the zero-cost
// disabled path, and histogram bucket/percentile arithmetic.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/histogram.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace rfsm {
namespace {

/// RAII: enables tracing with a fresh buffer, restores the previous
/// enabled state and default capacity afterwards so tests do not leak
/// tracer state into each other.
class TraceScope {
 public:
  explicit TraceScope(std::size_t capacity = 4096) : was_(trace::enabled()) {
    trace::setCapacity(capacity);  // also clears
    trace::setEnabled(true);
  }
  ~TraceScope() {
    trace::setEnabled(was_);
    trace::setCapacity(32768);
  }

 private:
  bool was_;
};

TEST(Trace, DisabledRecordsNothing) {
  trace::setEnabled(false);
  trace::setCapacity(1024);
  {
    trace::ScopedSpan span("never", "test");
    trace::instant("never", "test");
    trace::complete("never", "test", 0, 1);
  }
  EXPECT_EQ(trace::eventCount(), 0u);
  EXPECT_EQ(trace::droppedCount(), 0u);
  trace::setCapacity(32768);
}

TEST(Trace, SpanConstructedWhileDisabledStaysInert) {
  trace::setEnabled(false);
  trace::setCapacity(1024);
  {
    trace::ScopedSpan span("never", "test");
    trace::setEnabled(true);  // enabling mid-span must not emit it
  }
  EXPECT_EQ(trace::eventCount(), 0u);
  trace::setEnabled(false);
  trace::setCapacity(32768);
}

TEST(Trace, RecordsCompleteInstantAndAsyncEvents) {
  TraceScope scope;
  {
    trace::ScopedSpan span("unit.span", "test",
                           {trace::Arg::num("k", std::int64_t{7})});
    span.addArg(trace::Arg::str("note", "mid-span"));
  }
  trace::instant("unit.instant", "test", {trace::Arg::boolean("ok", true)});
  const std::uint64_t id = trace::newCorrelationId();
  trace::asyncBegin("unit.async", "test", id);
  trace::asyncInstant("unit.tick", "test", id);
  trace::asyncEnd("unit.async", "test", id);
  EXPECT_EQ(trace::eventCount(), 5u);

  const std::string json = trace::toJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"n\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"note\": \"mid-span\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  metrics::resetAll();
  TraceScope scope(/*capacity=*/8);
  for (int k = 0; k < 20; ++k)
    trace::instant("e" + std::to_string(k), "test");
  EXPECT_EQ(trace::eventCount(), 8u);
  EXPECT_EQ(trace::droppedCount(), 12u);
  const std::string json = trace::toJson();
  // Drop-oldest: the first events are gone, the newest survive.
  EXPECT_EQ(json.find("\"e0\""), std::string::npos);
  EXPECT_EQ(json.find("\"e11\""), std::string::npos);
  EXPECT_NE(json.find("\"e12\""), std::string::npos);
  EXPECT_NE(json.find("\"e19\""), std::string::npos);
  // Newest-last ordering survives the wrap.
  EXPECT_LT(json.find("\"e12\""), json.find("\"e19\""));
  // The drop is observable in telemetry too.
  EXPECT_EQ(metrics::counter(metrics::kTraceDropped).value(), 12u);
  metrics::resetAll();
}

TEST(Trace, ConcurrentSpansFromPoolWorkersAllArrive) {
  TraceScope scope(/*capacity=*/16384);
  constexpr std::size_t kTasks = 512;
  ThreadPool pool(4);
  pool.parallelFor(kTasks, [](std::size_t k) {
    trace::ScopedSpan span("task", "test",
                           {trace::Arg::num("k", static_cast<std::int64_t>(k))});
  });
  EXPECT_EQ(trace::droppedCount(), 0u);
  // Every task's span arrived (the pool emits pool.drain spans on top).
  EXPECT_GE(trace::eventCount(), kTasks);
  const std::string json = trace::toJson();
  // Workers carry names into the trace metadata (job 0 is the calling
  // thread, so a 4-job pool spawns workers 1..3).
  EXPECT_NE(json.find("rfsm-worker-1"), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(Trace, WriteFileProducesLoadableJson) {
  TraceScope scope;
  trace::instant("file.event", "test");
  const std::string path = ::testing::TempDir() + "rfsm_trace_test.json";
  ASSERT_TRUE(trace::writeFile(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"file.event\""), std::string::npos);
}

TEST(Trace, StringArgsAreJsonEscaped) {
  TraceScope scope;
  trace::instant("escape", "test",
                 {trace::Arg::str("payload", "a\"b\\c\nd\te")});
  const std::string json = trace::toJson();
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te"), std::string::npos);
}

TEST(TraceContext, BeginTraceMintsDistinctSampledContexts) {
  TraceScope scope;
  const trace::TraceContext a = trace::beginTrace();
  const trace::TraceContext b = trace::beginTrace();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(a.sampled);
  EXPECT_NE(a.traceIdHex(), b.traceIdHex());
  EXPECT_NE(a.spanId, b.spanId);
  EXPECT_EQ(a.traceIdHex().size(), 32u);
}

TEST(TraceContext, BeginTraceIsUnsampledWhileDisabled) {
  trace::setEnabled(false);
  const trace::TraceContext context = trace::beginTrace();
  EXPECT_TRUE(context.valid());
  EXPECT_FALSE(context.sampled);
}

TEST(TraceContext, ScopeAdoptsAndRestores) {
  TraceScope scope;
  EXPECT_FALSE(trace::currentContext().valid());
  const trace::TraceContext outer = trace::beginTrace();
  {
    trace::ContextScope adopt(outer);
    EXPECT_EQ(trace::currentContext().spanId, outer.spanId);
    EXPECT_EQ(trace::currentContext().traceIdHex(), outer.traceIdHex());
    const trace::TraceContext inner = trace::beginTrace();
    {
      trace::ContextScope nested(inner);
      EXPECT_EQ(trace::currentContext().spanId, inner.spanId);
    }
    EXPECT_EQ(trace::currentContext().spanId, outer.spanId);
  }
  EXPECT_FALSE(trace::currentContext().valid());
}

TEST(TraceContext, SpanChainsUnderSampledContext) {
  TraceScope scope;
  const trace::TraceContext root = trace::beginTrace();
  trace::ContextScope adopt(root);
  std::uint64_t parentId = 0;
  std::uint64_t childId = 0;
  {
    trace::ScopedSpan parent("ctx.parent", "test");
    parentId = parent.spanId();
    EXPECT_NE(parentId, 0u);
    // The span installed itself: outgoing frames would carry its id.
    EXPECT_EQ(trace::currentContext().spanId, parentId);
    {
      trace::ScopedSpan child("ctx.child", "test");
      childId = child.spanId();
      EXPECT_NE(childId, parentId);
    }
  }
  EXPECT_EQ(trace::currentContext().spanId, root.spanId);
  const std::string json = trace::toJson();
  // The child records the parent span's id, the parent records the root's.
  EXPECT_NE(json.find("\"span_id\": " + std::to_string(childId)),
            std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\": " + std::to_string(parentId)),
            std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": \"" + root.traceIdHex() + "\""),
            std::string::npos);
}

TEST(TraceContext, UnsampledContextAddsNoDistributedArgs) {
  TraceScope scope;
  trace::TraceContext context = trace::beginTrace();
  context.sampled = false;  // remote peer traced with sampling off
  trace::ContextScope adopt(context);
  {
    trace::ScopedSpan span("ctx.unsampled", "test");
    EXPECT_EQ(span.spanId(), 0u);
  }
  const std::string json = trace::toJson();
  EXPECT_EQ(json.find("parent_span_id"), std::string::npos);
  EXPECT_EQ(json.find("trace_id"), std::string::npos);
}

TEST(TraceContext, ParentSurvivesThreadHopWhenCaptured) {
  TraceScope scope;
  const trace::TraceContext root = trace::beginTrace();
  trace::ContextScope adopt(root);
  std::uint64_t parentId = 0;
  std::uint64_t remoteParentSeen = 0;
  {
    trace::ScopedSpan parent("ctx.dispatch", "test");
    parentId = parent.spanId();
    // The hedge/executor pattern: capture the context into the lambda,
    // adopt it on the worker thread — thread-locals do not cross.
    std::thread worker([context = trace::currentContext(),
                        &remoteParentSeen] {
      trace::ContextScope scope(context);
      remoteParentSeen = trace::currentContext().spanId;
      trace::ScopedSpan span("ctx.remote", "test");
    });
    worker.join();
  }
  EXPECT_EQ(remoteParentSeen, parentId);
  const std::string json = trace::toJson();
  EXPECT_NE(json.find("\"parent_span_id\": " + std::to_string(parentId)),
            std::string::npos);
}

TEST(TraceContext, FreshThreadHasNoContext) {
  TraceScope scope;
  const trace::TraceContext root = trace::beginTrace();
  trace::ContextScope adopt(root);
  bool valid = true;
  std::thread checker([&valid] { valid = trace::currentContext().valid(); });
  checker.join();
  EXPECT_FALSE(valid);
}

TEST(Histogram, BucketsAreMonotoneAndContainTheirValues) {
  using metrics::Histogram;
  // Every bucket's lower bound maps back to that bucket, and bounds grow
  // strictly.
  for (int b = 0; b < Histogram::kBucketCount; ++b) {
    const std::uint64_t lower = Histogram::bucketLowerBound(b);
    EXPECT_EQ(Histogram::bucketOf(lower), b) << "bucket " << b;
    if (b > 0)
      EXPECT_GT(lower, Histogram::bucketLowerBound(b - 1)) << "bucket " << b;
  }
  // Spot values across the range, including extremes.
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{5},
        std::uint64_t{1000}, std::uint64_t{1} << 40,
        ~std::uint64_t{0}}) {
    const int b = Histogram::bucketOf(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, Histogram::kBucketCount);
    EXPECT_LE(Histogram::bucketLowerBound(b), v);
    if (b + 1 < Histogram::kBucketCount)
      EXPECT_GT(Histogram::bucketLowerBound(b + 1), v);
  }
}

TEST(Histogram, QuantilesBoundTheDataWithin25Percent) {
  metrics::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  const std::uint64_t p50 = h.quantile(0.5);
  const std::uint64_t p99 = h.quantile(0.99);
  // Log-scale buckets guarantee <= 25% relative error.
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 625u);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1000u);  // clamped to the exact observed max
  EXPECT_EQ(h.quantile(1.0), 1000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, ConcurrentRecordsLoseNothing) {
  metrics::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int k = 0; k < kPerThread; ++k)
        h.record(static_cast<std::uint64_t>(t * kPerThread + k + 1));
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Histogram, ScopedLatencyRecordsOneSample) {
  metrics::Histogram h;
  {
    metrics::ScopedLatency latency(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 1000000u);  // at least the 1ms we slept, in ns
}

}  // namespace
}  // namespace rfsm
