// End-to-end tests of the cross-host planner fabric: sharding across real
// rfsmd servers, rerouting around dead endpoints, the full degradation
// ladder (fabric -> single endpoint -> in-process, byte-identical stdout at
// every rung), hedged requests against a slow endpoint, and quorum
// verification against a lying one.
//
// Misbehaving endpoints are played by FakeEndpoint, an in-test server that
// speaks the real wire protocol but can tamper with its replies, delay
// them, or hang up without answering.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>

#include "service/client.hpp"
#include "service/fabric.hpp"
#include "service/plan_cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/breaker.hpp"
#include "util/ipc.hpp"
#include "util/metrics.hpp"

namespace rfsm {
namespace {

using namespace std::chrono_literals;

std::string rfsmdPath() {
  if (const char* env = std::getenv("RFSM_RFSMD")) return env;
#ifdef RFSM_RFSMD_BUILD_PATH
  return RFSM_RFSMD_BUILD_PATH;
#else
  return "rfsmd";
#endif
}

std::string freshSocketPath(const char* tag) {
  return "/tmp/rfsm-fabric-" + std::to_string(getpid()) + "-" + tag +
         ".sock";
}

service::BatchSpec smallSpec() {
  service::BatchSpec spec;
  spec.stateCount = 8;
  spec.inputCount = 2;
  spec.outputCount = 2;
  spec.deltaCount = 6;
  spec.instanceCount = 12;
  spec.seed = 11;
  spec.planner = "greedy";
  return spec;
}

service::ServerOptions serverOptions(const std::string& socketPath) {
  service::ServerOptions options;
  options.socketPath = socketPath;
  options.workerBinary = rfsmdPath();
  options.shardSize = 4;
  options.pool.workers = 2;
  return options;
}

struct RunningServer {
  service::Server server;
  CancelToken stop;
  std::thread thread;

  explicit RunningServer(service::ServerOptions options)
      : server(std::move(options)), thread([this] { server.run(&stop); }) {}
  ~RunningServer() {
    stop.cancel();
    thread.join();
  }
};

/// An in-test endpoint speaking the real plan protocol, with scripted
/// misbehaviour.  Honest replies are planRange's bytes — bit-identical to
/// any other correct party — so any observable difference is the fault
/// model, never the fake.
class FakeEndpoint {
 public:
  enum class Behavior {
    kHonest,   ///< correct bytes
    kTamper,   ///< appends junk to every program (a lying replica)
    kSlow,     ///< answers correctly after `delay`
    kSilent,   ///< accepts, reads, never answers
  };

  FakeEndpoint(std::string path, Behavior behavior,
               std::chrono::milliseconds delay = 0ms)
      : path_(std::move(path)),
        behavior_(behavior),
        delay_(delay),
        listen_(ipc::listenUnix(path_)),
        thread_([this] { serve(); }) {}

  ~FakeEndpoint() {
    stop_.cancel();
    thread_.join();
    unlink(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  void serve() {
    while (!stop_.expired()) {
      CancelToken slice(200ms);
      auto connection = ipc::acceptUnix(listen_.get(), &slice);
      if (!connection.has_value()) continue;
      try {
        handle(connection->get());
      } catch (const Error&) {
        // Client went away (e.g. a cancelled hedge loser): next connection.
      }
    }
  }

  void handle(int fd) {
    std::string payload;
    CancelToken read(2000ms);
    if (ipc::readFrame(fd, payload, &read) != ipc::ReadStatus::kOk) return;
    const auto request = service::decodePlanRequest(payload);
    if (behavior_ == Behavior::kSilent) {
      // Hold the connection open until the client gives up.
      CancelToken hold(1000ms);
      std::string ignored;
      (void)ipc::readFrame(fd, ignored, &hold);
      return;
    }
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    service::PlanResponse response;
    response.status = WorkResult::Status::kOk;
    // kBypass: the fake plays a *remote* process — it must not share (or
    // serve back) this process's plan cache, or a poisoned local entry
    // could vouch for itself in the cache-verification tests below.
    response.programs =
        service::planRange(request.spec, request.rangeLo(), request.rangeHi(),
                           nullptr, 1, service::PlanCacheMode::kBypass);
    if (behavior_ == Behavior::kTamper)
      for (std::string& program : response.programs)
        program += "# tampered\n";
    ipc::writeFrame(fd, service::encodePlanResponse(response));
  }

  std::string path_;
  Behavior behavior_;
  std::chrono::milliseconds delay_;
  ipc::Fd listen_;
  CancelToken stop_;
  std::thread thread_;
};

service::FabricOptions fastFabric(std::vector<ipc::Endpoint> endpoints) {
  service::FabricOptions options;
  options.endpoints = std::move(endpoints);
  options.backoffBase = 1ms;
  options.backoffCap = 5ms;
  return options;
}

std::size_t countOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

// --- Rung 1: healthy fabric ----------------------------------------------

TEST(Fabric, ShardsAcrossTwoServersBitIdentically) {
  const std::string pathA = freshSocketPath("a");
  const std::string pathB = freshSocketPath("b");
  RunningServer serverA(serverOptions(pathA));
  RunningServer serverB(serverOptions(pathB));

  const service::BatchSpec spec = smallSpec();
  service::Fabric fabric(fastFabric(
      {ipc::parseEndpoint(pathA), ipc::parseEndpoint(pathB)}));
  std::ostringstream err;
  const service::ClientResult result = fabric.plan(spec, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.programs,
            service::planRange(spec, 0, spec.instanceCount));
  EXPECT_TRUE(err.str().empty()) << err.str();
  unlink(pathA.c_str());
  unlink(pathB.c_str());
}

TEST(Fabric, ReroutesAroundADeadEndpoint) {
  const std::string live = freshSocketPath("live");
  const std::string dead = freshSocketPath("dead");  // nobody listens here
  RunningServer server(serverOptions(live));

  const service::BatchSpec spec = smallSpec();
  service::FabricOptions options = fastFabric(
      {ipc::parseEndpoint(dead), ipc::parseEndpoint(live)});
  options.shardSize = 3;  // several shards so the dead endpoint is hit
  options.breaker.failureThreshold = 2;
  metrics::Counter& rerouted = metrics::counter(metrics::kFabricRerouted);
  const std::uint64_t rerouted0 = rerouted.value();

  service::Fabric fabric(std::move(options));
  std::ostringstream err;
  const service::ClientResult result = fabric.plan(spec, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_FALSE(result.degraded);  // rung 1 absorbed the failure
  EXPECT_EQ(result.programs,
            service::planRange(spec, 0, spec.instanceCount));
  EXPECT_GT(rerouted.value(), rerouted0);
  // The dead endpoint's breaker tripped; the live one stayed closed.
  EXPECT_GE(fabric.breaker(0).trips(), 1u);
  EXPECT_EQ(fabric.breaker(1).trips(), 0u);
  unlink(live.c_str());
}

// --- The degradation ladder ----------------------------------------------

TEST(Fabric, FullLadderIsByteIdenticalWithOneNoticePerRung) {
  const std::string deadA = freshSocketPath("down-a");
  const std::string deadB = freshSocketPath("down-b");

  const service::BatchSpec spec = smallSpec();
  service::FabricOptions options = fastFabric(
      {ipc::parseEndpoint(deadA), ipc::parseEndpoint(deadB)});
  options.breaker.failureThreshold = 1;
  service::Fabric fabric(std::move(options));
  std::ostringstream err;
  const service::ClientResult result = fabric.plan(spec, err);

  // Every rung failed except the last: in-process planning, same bytes.
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.programs,
            service::planRange(spec, 0, spec.instanceCount));
  // Exactly one stderr notice per rung drop, with stable reason tokens.
  EXPECT_EQ(countOccurrences(
                err.str(),
                "planner fabric unavailable (unreachable); retrying via "
                "single endpoint"),
            1u)
      << err.str();
  EXPECT_EQ(countOccurrences(
                err.str(),
                "planner service unavailable (unreachable); degrading to "
                "in-process planning"),
            1u)
      << err.str();
}

TEST(Fabric, SingleHealthyEndpointServesRungTwo) {
  // Rung 1 collapses (the fabric's shards cannot complete while every
  // breaker is open from the dead endpoint's failures... ) — here we force
  // it by breaking one endpoint with failureThreshold 1 and routing the
  // fallback to the live one.
  const std::string dead = freshSocketPath("rung2-dead");
  const std::string live = freshSocketPath("rung2-live");
  RunningServer server(serverOptions(live));

  const service::BatchSpec spec = smallSpec();
  service::FabricOptions options = fastFabric(
      {ipc::parseEndpoint(dead), ipc::parseEndpoint(live)});
  options.maxAttempts = 1;  // no rerouting: a dead primary sinks its shard
  options.shardSize = 3;
  options.breaker.failureThreshold = 1;
  service::Fabric fabric(std::move(options));
  std::ostringstream err;
  const service::ClientResult result = fabric.plan(spec, err);

  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.programs,
            service::planRange(spec, 0, spec.instanceCount));
  // Rung 2 went to the live endpoint: the fabric notice fired, the
  // in-process notice did not.
  EXPECT_EQ(countOccurrences(err.str(), "planner fabric unavailable"), 1u)
      << err.str();
  EXPECT_EQ(countOccurrences(err.str(), "planner service unavailable"), 0u)
      << err.str();
  unlink(live.c_str());
}

// --- Hedged requests ------------------------------------------------------

TEST(Fabric, HedgesTailShardsToAFasterTwin) {
  const service::BatchSpec spec = smallSpec();
  FakeEndpoint slow(freshSocketPath("slow"), FakeEndpoint::Behavior::kSlow,
                    600ms);
  FakeEndpoint fast(freshSocketPath("fast"),
                    FakeEndpoint::Behavior::kHonest);

  service::FabricOptions options = fastFabric(
      {ipc::parseEndpoint(slow.path()), ipc::parseEndpoint(fast.path())});
  options.shardSize = spec.instanceCount;  // one shard, primary = slow
  options.hedgeMs = 50;
  metrics::Counter& hedged = metrics::counter(metrics::kFabricHedged);
  metrics::Counter& hedgeWins =
      metrics::counter(metrics::kFabricHedgeWins);
  const std::uint64_t hedged0 = hedged.value();
  const std::uint64_t wins0 = hedgeWins.value();

  service::Fabric fabric(std::move(options));
  std::ostringstream err;
  const service::ClientResult result = fabric.plan(spec, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_EQ(result.programs,
            service::planRange(spec, 0, spec.instanceCount));
  EXPECT_GT(hedged.value(), hedged0);
  EXPECT_GT(hedgeWins.value(), wins0);
}

// --- Quorum verification --------------------------------------------------

TEST(Fabric, QuorumCatchesALyingEndpointAndServesGroundTruth) {
  const service::BatchSpec spec = smallSpec();
  FakeEndpoint liar(freshSocketPath("liar"),
                    FakeEndpoint::Behavior::kTamper);
  FakeEndpoint honest(freshSocketPath("honest"),
                      FakeEndpoint::Behavior::kHonest);

  service::FabricOptions options = fastFabric(
      {ipc::parseEndpoint(liar.path()),
       ipc::parseEndpoint(honest.path())});
  options.shardSize = spec.instanceCount;  // one (sampled) shard
  options.quorum = 2;
  metrics::Counter& mismatches =
      metrics::counter(metrics::kFabricQuorumMismatch);
  const std::uint64_t mismatches0 = mismatches.value();

  service::Fabric fabric(std::move(options));
  std::ostringstream err;
  const service::ClientResult result = fabric.plan(spec, err);

  // The tampered reply was detected, never served: stdout is ground truth.
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_EQ(result.programs,
            service::planRange(spec, 0, spec.instanceCount));
  EXPECT_GT(mismatches.value(), mismatches0);
  // The liar is quarantined for subsequent batches; the honest endpoint
  // keeps serving.
  EXPECT_GE(fabric.breaker(0).trips(), 1u);
  EXPECT_EQ(fabric.breaker(1).trips(), 0u);
  EXPECT_EQ(fabric.breaker(0).state(), CircuitBreaker::State::kOpen);
}

TEST(Fabric, QuorumOfHonestEndpointsAgreesQuietly) {
  const service::BatchSpec spec = smallSpec();
  FakeEndpoint a(freshSocketPath("qa"), FakeEndpoint::Behavior::kHonest);
  FakeEndpoint b(freshSocketPath("qb"), FakeEndpoint::Behavior::kHonest);

  service::FabricOptions options = fastFabric(
      {ipc::parseEndpoint(a.path()), ipc::parseEndpoint(b.path())});
  options.shardSize = spec.instanceCount;
  options.quorum = 2;
  metrics::Counter& mismatches =
      metrics::counter(metrics::kFabricQuorumMismatch);
  const std::uint64_t mismatches0 = mismatches.value();

  service::Fabric fabric(std::move(options));
  std::ostringstream err;
  const service::ClientResult result = fabric.plan(spec, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_EQ(result.programs,
            service::planRange(spec, 0, spec.instanceCount));
  EXPECT_EQ(mismatches.value(), mismatches0);
  EXPECT_EQ(fabric.breaker(0).trips(), 0u);
  EXPECT_EQ(fabric.breaker(1).trips(), 0u);
}

// --- Plan cache on the fabric path ----------------------------------------

/// RAII twin of test_service's scope: fresh enabled cache, guaranteed
/// disabled afterwards.
class PlanCacheScope {
 public:
  explicit PlanCacheScope(std::size_t capacity) {
    service::configurePlanCache(capacity);
    service::clearPlanCache();
  }
  ~PlanCacheScope() { service::configurePlanCache(0); }
};

TEST(Fabric, WarmShardIsServedWithoutTouchingAnyEndpoint) {
  PlanCacheScope scope(256);
  const service::BatchSpec spec = smallSpec();
  const auto reference = service::planRange(
      spec, 0, spec.instanceCount, nullptr, 1,
      service::PlanCacheMode::kBypass);
  const std::string path = freshSocketPath("warm");
  service::Fabric fabric(fastFabric({ipc::parseEndpoint(path)}));
  std::ostringstream err;

  {
    FakeEndpoint endpoint(path, FakeEndpoint::Behavior::kHonest);
    const service::ClientResult cold = fabric.plan(spec, err);
    ASSERT_EQ(cold.status, WorkResult::Status::kOk) << cold.error;
    EXPECT_EQ(cold.programs, reference);
    EXPECT_EQ(cold.cacheHits, 0u);
  }  // the only endpoint is gone now

  // The warm batch can only succeed *undegraded* if no shard was
  // dispatched: every endpoint is dead, so any dispatch attempt would
  // descend the ladder and leave a notice.
  const service::ClientResult warm = fabric.plan(spec, err);
  ASSERT_EQ(warm.status, WorkResult::Status::kOk) << warm.error;
  EXPECT_EQ(warm.programs, reference);  // byte-identical to the cold path
  EXPECT_EQ(warm.cacheHits, spec.instanceCount);
  EXPECT_FALSE(warm.degraded);
  EXPECT_EQ(countOccurrences(err.str(), "planner fabric unavailable"), 0u);
}

TEST(Fabric, WarmShardsServeEvenWhenEveryEndpointIsDead) {
  // The cache sits above the degradation ladder: a fully-warm batch never
  // needs an endpoint, so it succeeds at rung one without a notice.
  PlanCacheScope scope(256);
  const service::BatchSpec spec = smallSpec();
  const auto reference = service::planRange(
      spec, 0, spec.instanceCount, nullptr, 1,
      service::PlanCacheMode::kBypass);
  (void)service::planRange(spec, 0, spec.instanceCount);  // warm it

  service::FabricOptions options = fastFabric(
      {ipc::parseEndpoint(freshSocketPath("gone-a")),
       ipc::parseEndpoint(freshSocketPath("gone-b"))});
  service::Fabric fabric(std::move(options));
  std::ostringstream err;
  const service::ClientResult result = fabric.plan(spec, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_EQ(result.programs, reference);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(countOccurrences(err.str(), "planner fabric unavailable"), 0u);
}

TEST(Fabric, TamperedCacheEntryIsDetectedQuarantinedAndNeverServed) {
  PlanCacheScope scope(256);
  const service::BatchSpec spec = smallSpec();
  const auto reference = service::planRange(
      spec, 0, spec.instanceCount, nullptr, 1,
      service::PlanCacheMode::kBypass);
  FakeEndpoint honest(freshSocketPath("cache-honest"),
                      FakeEndpoint::Behavior::kHonest);

  // Warm the cache honestly, then poison one entry in place — modeling a
  // corrupted or maliciously overwritten cache line.
  (void)service::planRange(spec, 0, spec.instanceCount);
  const std::string poisonedKey = service::planCacheKey(spec, 3);
  service::planCacheStore(poisonedKey, "# poisoned\n");

  service::FabricOptions options =
      fastFabric({ipc::parseEndpoint(honest.path())});
  options.shardSize = spec.instanceCount;  // one shard — always sampled
  options.quorum = 2;  // sampled cache hits get byte-verified
  metrics::Counter& poisoned =
      metrics::counter(metrics::kServicePlanCachePoisoned);
  const std::uint64_t poisoned0 = poisoned.value();

  service::Fabric fabric(std::move(options));
  std::ostringstream err;
  const service::ClientResult result = fabric.plan(spec, err);

  // Detected, recomputed, and the poisoned bytes never reached stdout.
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_EQ(result.programs, reference);
  EXPECT_GT(poisoned.value(), poisoned0);
  // The quarantined entry was replaced by recomputed ground truth.
  const auto repaired = service::planCacheLookup(poisonedKey);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(*repaired, reference[3]);
  // The honest replica that exposed the poison is not punished.
  EXPECT_EQ(fabric.breaker(0).trips(), 0u);
}

TEST(Fabric, CleanCacheHitsPassQuorumVerificationQuietly) {
  PlanCacheScope scope(256);
  const service::BatchSpec spec = smallSpec();
  FakeEndpoint honest(freshSocketPath("clean-honest"),
                      FakeEndpoint::Behavior::kHonest);
  (void)service::planRange(spec, 0, spec.instanceCount);  // honest warm

  service::FabricOptions options =
      fastFabric({ipc::parseEndpoint(honest.path())});
  options.shardSize = spec.instanceCount;
  options.quorum = 2;
  metrics::Counter& poisoned =
      metrics::counter(metrics::kServicePlanCachePoisoned);
  metrics::Counter& mismatches =
      metrics::counter(metrics::kFabricQuorumMismatch);
  const std::uint64_t poisoned0 = poisoned.value();
  const std::uint64_t mismatches0 = mismatches.value();

  service::Fabric fabric(std::move(options));
  std::ostringstream err;
  const service::ClientResult result = fabric.plan(spec, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_EQ(result.programs,
            service::planRange(spec, 0, spec.instanceCount, nullptr, 1,
                               service::PlanCacheMode::kBypass));
  EXPECT_EQ(poisoned.value(), poisoned0);
  EXPECT_EQ(mismatches.value(), mismatches0);
}

// --- Prefork --------------------------------------------------------------

TEST(Fabric, PreforkedServerWarmsWorkersBeforeFirstRequest) {
  const std::string path = freshSocketPath("prefork");
  service::ServerOptions options = serverOptions(path);
  options.pool.prefork = true;
  options.pool.warmupPayload = service::encodeWarmupRequest();
  metrics::Counter& preforked =
      metrics::counter(metrics::kServiceWorkersPreforked);
  const std::uint64_t preforked0 = preforked.value();

  RunningServer server(std::move(options));
  // Warm-up completes asynchronously in the slot threads; poll briefly.
  for (int spin = 0;
       spin < 100 && preforked.value() - preforked0 < 2; ++spin)
    std::this_thread::sleep_for(20ms);
  EXPECT_EQ(preforked.value() - preforked0, 2u);

  // The warmed pool serves a normal request.
  service::ClientOptions client;
  client.socketPath = path;
  std::ostringstream err;
  const service::ClientResult result =
      service::planBatch(smallSpec(), client, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_FALSE(result.degraded);
  unlink(path.c_str());
}

}  // namespace
}  // namespace rfsm
