// Tests for the on-chip JSR sequencer: the hardware generates its own
// jump/set/return sequence from a compact delta list, and the resulting
// RAM state matches both the software JSR program and the target machine.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "fsm/simulate.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "gen/samples.hpp"
#include "rtl/jsr_datapath.hpp"
#include "util/rng.hpp"

namespace rfsm::rtl {
namespace {

/// Runs the self-sequencing datapath through a full JSR pass.
void migrateOnChip(JsrDatapath& hw) {
  hw.startReconfiguration();
  hw.clock(0);  // start-pulse cycle (still normal mode)
  int guard = hw.sequenceLength() + 2;
  while (hw.reconfiguring()) {
    hw.clock(0);
    RFSM_CHECK(--guard >= 0, "sequencer did not terminate");
  }
}

void expectRealizesTarget(const JsrDatapath& hw,
                          const MigrationContext& context) {
  const Machine& target = context.targetMachine();
  for (SymbolId s = 0; s < target.stateCount(); ++s) {
    const SymbolId ss = context.liftTargetState(s);
    for (SymbolId i = 0; i < target.inputCount(); ++i) {
      const SymbolId si = context.liftTargetInput(i);
      EXPECT_EQ(hw.framEntry(si, ss),
                context.liftTargetState(target.next(i, s)));
      EXPECT_EQ(hw.gramEntry(si, ss),
                context.liftTargetOutput(target.output(i, s)));
    }
  }
}

TEST(JsrHardware, SequenceLengthMatchesSoftwareJsr) {
  const MigrationContext context(example41Source(), example41Target());
  const JsrDatapath hw(context);
  EXPECT_EQ(hw.sequenceLength(), planJsr(context).length());
}

TEST(JsrHardware, MigratesExample41OnChip) {
  const MigrationContext context(example41Source(), example41Target());
  JsrDatapath hw(context);
  migrateOnChip(hw);
  EXPECT_EQ(hw.currentState(), context.targetReset());
  expectRealizesTarget(hw, context);
}

TEST(JsrHardware, MigratesPaperOnesToZeros) {
  const MigrationContext context(onesDetector(), zerosDetector());
  JsrDatapath hw(context);
  migrateOnChip(hw);
  expectRealizesTarget(hw, context);
}

TEST(JsrHardware, DeltaListIsCompact) {
  const MigrationContext context(example41Source(), example41Target());
  const auto list = deltaListFor(context);
  // All four deltas (the temp cell (i0, S0') is not among them here).
  EXPECT_EQ(list.size(), 4u);
}

TEST(JsrHardware, PostMigrationBehaviourMatchesTarget) {
  const MigrationContext context(sampleMachine("hdlc_v1"),
                                 sampleMachine("hdlc_v2"));
  JsrDatapath hw(context);
  migrateOnChip(hw);
  hw.clock(0, /*externalReset=*/true);
  const Machine target = sampleMachine("hdlc_v2");
  Simulator golden(target);
  Rng rng(3);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const int bit = rng.chance(0.5) ? 1 : 0;
    const SymbolId i = context.inputs().at(bit ? "1" : "0");
    const std::uint64_t out = hw.clock(i);
    const SymbolId ref = golden.step(target.inputs().at(bit ? "1" : "0"));
    EXPECT_EQ(context.outputs().name(static_cast<SymbolId>(out)),
              target.outputs().name(ref));
  }
}

/// Property sweep: on-chip JSR equals the software model on random
/// migrations.
class JsrHardwarePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JsrHardwarePropertyTest, OnChipEqualsSoftwareJsr) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 811 + 5);
  RandomMachineSpec spec;
  spec.stateCount = 3 + static_cast<int>(rng.below(6));
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 2 + static_cast<int>(rng.below(5));
  mutation.newStateCount = rng.chance(0.3) ? 1 : 0;
  if (mutation.newStateCount == 1)
    mutation.deltaCount += spec.inputCount + 1;
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);

  JsrDatapath hw(context);
  migrateOnChip(hw);
  const MutableMachine model = replayProgram(context, planJsr(context));
  EXPECT_EQ(hw.currentState(), model.state());
  for (SymbolId s = 0; s < context.states().size(); ++s)
    for (SymbolId i = 0; i < context.inputs().size(); ++i)
      if (model.isSpecified(i, s)) {
        EXPECT_EQ(hw.framEntry(i, s), model.next(i, s));
        EXPECT_EQ(hw.gramEntry(i, s), model.output(i, s));
      }
}

INSTANTIATE_TEST_SUITE_P(Sweep, JsrHardwarePropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace rfsm::rtl
