// Tests for the VHDL testbench generator.
#include <gtest/gtest.h>

#include "core/jsr.hpp"
#include "core/sequence.hpp"
#include "fsm/simulate.hpp"
#include "gen/families.hpp"
#include "rtl/testbench.hpp"
#include "util/check.hpp"

namespace rfsm::rtl {
namespace {

MigrationContext paperContext() {
  return MigrationContext(onesDetector(), zerosDetector());
}

TEST(Testbench, StructureAndClocking) {
  const MigrationContext context = paperContext();
  const auto sequence = sequenceFromProgram(planJsr(context));
  TestbenchOptions options;
  options.entityName = "dut";
  options.testbenchName = "dut_tb";
  options.clockPeriodNs = 20;
  const std::vector<SymbolId> word{context.inputs().at("0"),
                                   context.inputs().at("0"),
                                   context.inputs().at("1")};
  const std::string tb = generateTestbench(context, sequence, word, options);
  EXPECT_NE(tb.find("ENTITY dut_tb IS"), std::string::npos);
  EXPECT_NE(tb.find("ENTITY work.dut"), std::string::npos);
  EXPECT_NE(tb.find("AFTER 10 ns"), std::string::npos);  // half period
  EXPECT_NE(tb.find("FOR k IN 1 TO " + std::to_string(sequence.length())),
            std::string::npos);
  EXPECT_NE(tb.find("ASSERT rec = '0'"), std::string::npos);
  EXPECT_NE(tb.find("END sim;"), std::string::npos);
}

TEST(Testbench, ExpectedOutputsComeFromGoldenModel) {
  const MigrationContext context = paperContext();
  const auto sequence = sequenceFromProgram(planJsr(context));
  // The zeros machine from S0 outputs 1 under input 0 and 0 under input 1.
  const std::vector<SymbolId> word{context.inputs().at("0"),
                                   context.inputs().at("1")};
  const std::string tb = generateTestbench(context, sequence, word);
  EXPECT_NE(tb.find("input 0, expect output 1"), std::string::npos);
  EXPECT_NE(tb.find("input 1, expect output 0"), std::string::npos);
  // One ASSERT per word symbol (plus the rec check).
  std::size_t asserts = 0;
  for (std::size_t pos = tb.find("ASSERT"); pos != std::string::npos;
       pos = tb.find("ASSERT", pos + 1))
    ++asserts;
  EXPECT_EQ(asserts, word.size() + 1);
}

TEST(Testbench, RejectsInvalidWordSymbols) {
  const MigrationContext context = paperContext();
  const auto sequence = sequenceFromProgram(planJsr(context));
  EXPECT_THROW(generateTestbench(context, sequence, {99}), ContractError);
}

TEST(Testbench, MealyOutputsSampledBeforeTheEdge) {
  const MigrationContext context = paperContext();
  const auto sequence = sequenceFromProgram(planJsr(context));
  const std::string tb = generateTestbench(
      context, sequence, {context.inputs().at("0")});
  // The falling-edge sample must precede the rising-edge transition.
  const auto fall = tb.find("WAIT UNTIL falling_edge(clk);");
  ASSERT_NE(fall, std::string::npos);
  const auto assertPos = tb.find("ASSERT o =", fall);
  ASSERT_NE(assertPos, std::string::npos);
  const auto rise = tb.find("WAIT UNTIL rising_edge(clk);", assertPos);
  EXPECT_NE(rise, std::string::npos);
}

}  // namespace
}  // namespace rfsm::rtl
