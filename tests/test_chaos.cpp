// util/chaos: deterministic disk/network fault injection.
//
// The tests pin down the three contracts everything else builds on:
//  * replayability — the same <seed>:<profile> produces the identical
//    injection schedule (journal digest) over the same operation sequence;
//  * typed failures — injected faults surface as FsError/IpcError with
//    path+offset/errno detail, never as silent corruption;
//  * permanence of a failed fsync — the descriptor stays poisoned after
//    the plane is disarmed, until a fresh fsio open recycles it.
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "util/chaos.hpp"
#include "util/fsio.hpp"
#include "util/ipc.hpp"

namespace rfsm {
namespace {

/// Every test leaves the process-global plane disarmed (other suites in
/// this binary — and the fixture-less tests — must never see stray chaos).
struct PlaneGuard {
  ~PlaneGuard() { chaos::plane().disarm(); }
};

struct TempDir {
  std::string path;
  TempDir() {
    char buffer[] = "/tmp/rfsm-chaos-XXXXXX";
    path = ::mkdtemp(buffer);
  }
  ~TempDir() {
    if (path.empty()) return;
    for (const std::string& name : fsio::listDir(path))
      ::unlink((path + "/" + name).c_str());
    ::rmdir(path.c_str());
  }
};

TEST(ChaosProfiles, EveryNameResolvesAndRoundTripsItsName) {
  for (const std::string& name : chaos::profileNames()) {
    const auto profile = chaos::profileByName(name);
    ASSERT_TRUE(profile.has_value()) << name;
    EXPECT_EQ(profile->name, name);
  }
  EXPECT_FALSE(chaos::profileByName("definitely-not-a-profile").has_value());
}

TEST(ChaosProfiles, OffProfileInjectsNothing) {
  const auto off = chaos::profileByName("off");
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(off->diskErrorProbability, 0.0);
  EXPECT_EQ(off->corruptProbability, 0.0);
}

TEST(ChaosSpec, MalformedSpecsThrowWithProfileList) {
  PlaneGuard guard;
  EXPECT_THROW(chaos::plane().armFromSpec("no-colon"), Error);
  EXPECT_THROW(chaos::plane().armFromSpec(":net-light"), Error);
  EXPECT_THROW(chaos::plane().armFromSpec("7:"), Error);
  EXPECT_THROW(chaos::plane().armFromSpec("abc:net-light"), Error);
  try {
    chaos::plane().armFromSpec("7:bogus");
    FAIL() << "unknown profile must throw";
  } catch (const Error& error) {
    // The message lists the valid names, matching rfsmd --fault.
    EXPECT_NE(std::string(error.what()).find("net-light"), std::string::npos);
  }
  EXPECT_FALSE(chaos::plane().enabled());
}

TEST(ChaosSpec, ValidSpecArmsSeedAndProfile) {
  PlaneGuard guard;
  chaos::plane().armFromSpec("42:net-storm");
  EXPECT_TRUE(chaos::plane().enabled());
  EXPECT_EQ(chaos::plane().seed(), 42u);
  EXPECT_EQ(chaos::plane().profile().name, "net-storm");
  chaos::plane().disarm();
  EXPECT_FALSE(chaos::plane().enabled());
}

TEST(ChaosSpec, ArmFromEnvReadsRfsmChaos) {
  PlaneGuard guard;
  ::unsetenv("RFSM_CHAOS");
  EXPECT_FALSE(chaos::plane().armFromEnv());
  ::setenv("RFSM_CHAOS", "9:disk-light", 1);
  EXPECT_TRUE(chaos::plane().armFromEnv());
  EXPECT_EQ(chaos::plane().seed(), 9u);
  EXPECT_EQ(chaos::plane().profile().name, "disk-light");
  ::unsetenv("RFSM_CHAOS");
}

TEST(ChaosDeterminism, SameSeedSameWorkloadSameSchedule) {
  PlaneGuard guard;
  const auto run = [] {
    chaos::plane().armFromSpec("1234:full");
    // A fixed mixed drive across every decision site.
    for (int k = 0; k < 300; ++k) {
      (void)chaos::plane().onDiskWrite();
      (void)chaos::plane().onFsync();
      (void)chaos::plane().onRename();
      (void)chaos::plane().onAppend();
      (void)chaos::plane().onNetWrite();
      (void)chaos::plane().onNetRead();
      (void)chaos::plane().onConnect();
    }
    return std::tuple(chaos::plane().journalDigest(),
                      chaos::plane().injectedDisk(),
                      chaos::plane().injectedNet());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(std::get<1>(first) + std::get<2>(first), 0u)
      << "the 'full' profile over 2100 draws should inject something";
}

TEST(ChaosDeterminism, DifferentSeedsDiverge) {
  PlaneGuard guard;
  const auto digestFor = [](const char* spec) {
    chaos::plane().armFromSpec(spec);
    for (int k = 0; k < 300; ++k) (void)chaos::plane().onNetWrite();
    return chaos::plane().journalDigest();
  };
  EXPECT_NE(digestFor("1:net-storm"), digestFor("2:net-storm"));
}

TEST(ChaosDeterminism, BudgetSuppressesInjectionNotDraws) {
  PlaneGuard guard;
  chaos::Profile profile = *chaos::profileByName("net-storm");
  profile.maxFaults = 3;
  chaos::plane().arm(77, profile);
  for (int k = 0; k < 500; ++k) (void)chaos::plane().onNetWrite();
  EXPECT_EQ(chaos::plane().injectedNet(), 3u);
  // The journal records exactly the injections that fired.
  EXPECT_EQ(chaos::plane().journal().size(), 3u);
}

TEST(ChaosDisk, InjectedWriteFailureNamesPathOffsetAndErrno) {
  PlaneGuard guard;
  TempDir dir;
  const std::string path = dir.path + "/victim";
  chaos::Profile always;
  always.name = "always-write-error";
  always.diskErrorProbability = 1.0;
  chaos::plane().arm(5, always);
  try {
    fsio::writeFileDurable(path, "payload");
    FAIL() << "injected write error must throw";
  } catch (const fsio::FsError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }
}

TEST(ChaosDisk, FailedFsyncIsPermanentForTheFdUntilReopen) {
  PlaneGuard guard;
  TempDir dir;
  const std::string path = dir.path + "/wal";
  chaos::Profile fsyncStorm;
  fsyncStorm.name = "always-fsync-fail";
  fsyncStorm.fsyncFailProbability = 1.0;

  ipc::Fd fd = fsio::openAppend(path);
  chaos::plane().arm(11, fsyncStorm);
  EXPECT_THROW(fsio::appendDurable(fd.get(), path, "record\n"),
               fsio::FsError);
  // Disarming does NOT clean the descriptor: the kernel may have dropped
  // the dirty pages, so "retry and assume clean" stays impossible.
  chaos::plane().disarm();
  try {
    fsio::appendDurable(fd.get(), path, "record\n");
    FAIL() << "a latched-dirty fd must keep failing after disarm";
  } catch (const fsio::FsError& error) {
    EXPECT_NE(std::string(error.what()).find("earlier fsync"),
              std::string::npos)
        << error.what();
  }
  // A fresh open recycles the latch; appends work again.
  fd.reset();
  fd = fsio::openAppend(path);
  fsio::appendDurable(fd.get(), path, "clean\n");
}

TEST(ChaosDisk, PowerLossTruncationLeavesAPrefixAndLatchesTheFd) {
  PlaneGuard guard;
  TempDir dir;
  const std::string path = dir.path + "/wal";
  ipc::Fd fd = fsio::openAppend(path);
  fsio::appendDurable(fd.get(), path, "intact-record\n");

  chaos::Profile cut;
  cut.name = "always-truncate";
  cut.truncateProbability = 1.0;
  chaos::plane().arm(3, cut);
  const std::string record = "abcdefghijklmnopqrstuvwxyz\n";
  try {
    fsio::appendDurable(fd.get(), path, record);
    FAIL() << "injected truncation must throw";
  } catch (const fsio::FsError& error) {
    EXPECT_NE(std::string(error.what()).find("power-loss"), std::string::npos)
        << error.what();
  }
  chaos::plane().disarm();
  // The file holds the intact record plus at most a strict prefix of the
  // torn one — exactly the shape WAL recovery drops as a torn tail.
  const std::string bytes = fsio::readFileIfExists(path).value_or("");
  EXPECT_EQ(bytes.rfind("intact-record\n", 0), 0u);
  EXPECT_LT(bytes.size(), std::string("intact-record\n").size() + record.size());
  // And the fd is latched: nothing may land after a torn tail.
  EXPECT_THROW(fsio::appendDurable(fd.get(), path, "after\n"), fsio::FsError);
}

TEST(ChaosDisk, TornRenameKeepsOldBytesAndLeavesNoTemp) {
  PlaneGuard guard;
  TempDir dir;
  const std::string path = dir.path + "/snap";
  fsio::writeFileDurable(path, "old");
  chaos::Profile torn;
  torn.name = "always-torn-rename";
  torn.tornRenameProbability = 1.0;
  chaos::plane().arm(6, torn);
  EXPECT_THROW(fsio::writeFileDurable(path, "new"), fsio::FsError);
  chaos::plane().disarm();
  EXPECT_EQ(fsio::readFileIfExists(path).value_or(""), "old");
  EXPECT_EQ(fsio::listDir(dir.path).size(), 1u) << "no temp litter";
}

TEST(ChaosNet, DisabledPlaneIsInertForIpc) {
  PlaneGuard guard;
  chaos::plane().disarm();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ipc::Fd a(sv[0]), b(sv[1]);
  ipc::writeFrame(a.get(), "hello");
  std::string payload;
  EXPECT_EQ(ipc::readFrame(b.get(), payload), ipc::ReadStatus::kOk);
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(chaos::plane().injectedNet(), 0u);
}

TEST(ChaosNet, CorruptionIsAlwaysCaughtByTheCrcTrailer) {
  PlaneGuard guard;
  chaos::Profile corrupt;
  corrupt.name = "always-corrupt";
  corrupt.corruptProbability = 1.0;
  chaos::plane().arm(21, corrupt);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ipc::Fd a(sv[0]), b(sv[1]);
  // Every frame is corrupted by one flipped bit; every read must reject it
  // as a typed FrameError — never a successful read of wrong bytes.
  for (int k = 0; k < 20; ++k) {
    ipc::writeFrame(a.get(), "payload-" + std::to_string(k));
    std::string payload;
    EXPECT_THROW(ipc::readFrame(b.get(), payload), ipc::FrameError) << k;
  }
  EXPECT_GE(chaos::plane().injectedNet(), 20u);
}

TEST(ChaosNet, InjectedResetSurfacesAsIpcErrorNotFrameError) {
  PlaneGuard guard;
  chaos::Profile reset;
  reset.name = "always-reset";
  reset.resetProbability = 1.0;
  chaos::plane().arm(8, reset);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ipc::Fd a(sv[0]), b(sv[1]);
  try {
    ipc::writeFrame(a.get(), "payload");
    FAIL() << "injected reset must throw";
  } catch (const ipc::FrameError&) {
    FAIL() << "a reset is a transport failure, not a malformed frame";
  } catch (const ipc::IpcError& error) {
    EXPECT_NE(std::string(error.what()).find("reset"), std::string::npos);
  }
}

TEST(ChaosNet, DuplicateFrameIsVisibleAsPendingInput) {
  PlaneGuard guard;
  chaos::Profile dup;
  dup.name = "always-duplicate";
  dup.duplicateProbability = 1.0;
  chaos::plane().arm(13, dup);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ipc::Fd a(sv[0]), b(sv[1]);
  ipc::writeFrame(a.get(), "ping");
  chaos::plane().disarm();
  std::string payload;
  ASSERT_EQ(ipc::readFrame(b.get(), payload), ipc::ReadStatus::kOk);
  EXPECT_EQ(payload, "ping");
  // The duplicate is still queued: exactly what the desync checks in the
  // supervisor and SessionStream look for before pairing request/reply.
  EXPECT_TRUE(ipc::pendingInput(b.get()));
  ASSERT_EQ(ipc::readFrame(b.get(), payload), ipc::ReadStatus::kOk);
  EXPECT_EQ(payload, "ping");
  EXPECT_FALSE(ipc::pendingInput(b.get()));
}

}  // namespace
}  // namespace rfsm
