// Tests for migration chains (release trains) and rollbacks.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/chain.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "gen/samples.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

std::vector<Machine> detectorTrain() {
  return {sequenceDetector("01").withName("r1"),
          sequenceDetector("011").withName("r2"),
          sequenceDetector("0111").withName("r3")};
}

TEST(Chain, PlansEveryHopBothWays) {
  const ChainPlan plan =
      planMigrationChain(detectorTrain(), ChainPlanner::kGreedy);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_TRUE(plan.allValid());
  for (const ChainStage& stage : plan.stages) {
    EXPECT_GT(stage.upgrade.length(), 0);
    EXPECT_GT(stage.rollback.length(), 0);
    EXPECT_TRUE(stage.upgradeValid);
    EXPECT_TRUE(stage.rollbackValid);
  }
  EXPECT_EQ(plan.totalUpgradeLength(),
            plan.stages[0].upgrade.length() + plan.stages[1].upgrade.length());
}

TEST(Chain, AllPlannersProduceValidChains) {
  for (const auto planner : {ChainPlanner::kJsr, ChainPlanner::kGreedy,
                             ChainPlanner::kEvolutionary}) {
    const ChainPlan plan = planMigrationChain(detectorTrain(), planner, 7);
    EXPECT_TRUE(plan.allValid()) << toString(planner);
  }
}

TEST(Chain, RollbackContextIsReversed) {
  const ChainPlan plan =
      planMigrationChain(detectorTrain(), ChainPlanner::kJsr);
  const ChainStage& stage = plan.stages[0];
  EXPECT_EQ(stage.context.sourceMachine().name(), "r1");
  EXPECT_EQ(stage.context.targetMachine().name(), "r2");
  EXPECT_EQ(stage.rollbackContext.sourceMachine().name(), "r2");
  EXPECT_EQ(stage.rollbackContext.targetMachine().name(), "r1");
}

TEST(Chain, UpgradeThenRollbackRestoresBehaviour) {
  const ChainPlan plan =
      planMigrationChain(detectorTrain(), ChainPlanner::kGreedy);
  const ChainStage& stage = plan.stages[0];
  // Apply the upgrade, extract, apply the rollback, extract: back to r1.
  MutableMachine up(stage.context);
  up.applyProgram(stage.upgrade);
  ASSERT_TRUE(up.matchesTarget());
  MutableMachine down(stage.rollbackContext);
  down.applyProgram(stage.rollback);
  ASSERT_TRUE(down.matchesTarget());
  EXPECT_EQ(down.extractTarget().name(), "r1");
}

TEST(Chain, RejectsTooShortTrains) {
  EXPECT_THROW(planMigrationChain({sequenceDetector("01")},
                                  ChainPlanner::kJsr),
               ContractError);
}

TEST(Chain, SampleRevisionsChain) {
  const std::vector<Machine> train = {sampleMachine("vending_v1"),
                                      sampleMachine("vending_v2")};
  const ChainPlan plan =
      planMigrationChain(train, ChainPlanner::kEvolutionary, 11);
  EXPECT_TRUE(plan.allValid());
  // The rollback removes the C15 state's behaviour: its delta set covers
  // the cells that C15 made reachable.
  EXPECT_GT(plan.stages[0].rollbackContext.deltaCount(), 0);
}

/// Property sweep: random revision trains plan valid chains end to end.
class ChainPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ChainPropertyTest, RandomTrainsAreValidBothWays) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 307 + 17);
  RandomMachineSpec spec;
  spec.stateCount = 5 + static_cast<int>(rng.below(6));
  spec.inputCount = 2;
  std::vector<Machine> train;
  train.push_back(randomMachine(spec, rng));
  for (int hop = 0; hop < 3; ++hop) {
    MutationSpec mutation;
    mutation.deltaCount = 2 + static_cast<int>(rng.below(4));
    mutation.name = "rev" + std::to_string(hop + 2);
    train.push_back(mutateMachine(train.back(), mutation, rng));
  }
  const ChainPlan plan =
      planMigrationChain(train, ChainPlanner::kGreedy,
                         static_cast<std::uint64_t>(GetParam()));
  EXPECT_TRUE(plan.allValid());
  EXPECT_EQ(plan.stages.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChainPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace rfsm
