// Live-telemetry plane tests: RollingHistogram window rotation and
// percentile agreement with the cumulative log-scale Histogram, concurrent
// recording (the suite name rides the TSan CI matrix), trace-context
// round-trips on the service protocol frames, and the stats / trace-dump
// frame codecs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "util/histogram.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rfsm {
namespace {

using std::chrono::milliseconds;
using Clock = metrics::RollingHistogram::Clock;

TEST(TelemetryRollingHistogram, EmptyWindowReportsZeros) {
  metrics::RollingHistogram window(milliseconds(1000));
  const auto stats = window.stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.p99, 0u);
  EXPECT_EQ(stats.max, 0u);
}

TEST(TelemetryRollingHistogram, CountsEverythingInsideTheWindow) {
  metrics::RollingHistogram window(milliseconds(1000));
  const Clock::time_point t0 = Clock::now();
  for (int k = 0; k < 40; ++k)
    window.record(1000u * (k + 1), t0 + milliseconds(k * 20));
  EXPECT_EQ(window.count(t0 + milliseconds(800)), 40u);
}

TEST(TelemetryRollingHistogram, OldSlicesRotateOutOfTheWindow) {
  metrics::RollingHistogram window(milliseconds(800));  // 100 ms slices
  const Clock::time_point t0 = Clock::now();
  window.record(5000u, t0);
  EXPECT_EQ(window.count(t0), 1u);
  // Still visible inside the window...
  EXPECT_EQ(window.count(t0 + milliseconds(700)), 1u);
  // ...gone once the window has fully slid past its slice.
  EXPECT_EQ(window.count(t0 + milliseconds(2000)), 0u);
  // And the stale slice is reused for fresh samples, not resurrected.
  window.record(7000u, t0 + milliseconds(2000));
  const auto stats = window.stats(t0 + milliseconds(2000));
  EXPECT_EQ(stats.count, 1u);
  EXPECT_EQ(stats.max, 7000u);
}

TEST(TelemetryRollingHistogram, PercentilesMatchCumulativeHistogram) {
  // Same deterministic sample set into both shapes: the window (all
  // samples inside it) must agree with the cumulative log-scale histogram
  // exactly — same buckets, same quantile arithmetic.
  metrics::RollingHistogram window(milliseconds(60000));
  metrics::Histogram cumulative;
  const Clock::time_point t0 = Clock::now();
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  for (int k = 0; k < 500; ++k) {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    const std::uint64_t value = seed % 50'000'000u;  // 0..50 ms in ns
    window.record(value, t0 + milliseconds(k % 1000));
    cumulative.record(value);
  }
  const auto stats = window.stats(t0 + milliseconds(1000));
  EXPECT_EQ(stats.count, 500u);
  EXPECT_EQ(stats.p50, cumulative.quantile(0.50));
  EXPECT_EQ(stats.p90, cumulative.quantile(0.90));
  EXPECT_EQ(stats.p99, cumulative.quantile(0.99));
  EXPECT_EQ(stats.max, cumulative.max());
}

TEST(TelemetryRollingHistogram, ConcurrentRecordsLoseNothing) {
  metrics::RollingHistogram window(milliseconds(60000));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&window, t] {
      for (int k = 0; k < kPerThread; ++k)
        window.record(static_cast<std::uint64_t>(t * kPerThread + k + 1));
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(window.count(), kThreads * kPerThread);
}

TEST(TelemetryRollingHistogram, RegistryEntrySurfacesInSnapshots) {
  metrics::resetAll();
  metrics::rolling("test.telemetry_window").record(milliseconds(5));
  const metrics::Snapshot snap = metrics::snapshot();
  ASSERT_EQ(snap.rolling.size(), 1u);
  EXPECT_EQ(snap.rolling[0].name, "test.telemetry_window");
  EXPECT_EQ(snap.rolling[0].count, 1u);
  EXPECT_GT(snap.rolling[0].windowMs, 0);
  // All three sinks carry the rolling section.
  EXPECT_NE(metrics::toCsv(snap).find("rolling,test.telemetry_window"),
            std::string::npos);
  EXPECT_NE(metrics::toJson(snap).find("\"rolling\""), std::string::npos);
  EXPECT_NE(metrics::toMarkdown(snap).find("test.telemetry_window"),
            std::string::npos);
  metrics::resetAll();
}

// --- Trace context on the wire -------------------------------------------

trace::TraceContext sampleContext() {
  trace::TraceContext context;
  context.traceIdHi = 0x0123456789ABCDEFull;
  context.traceIdLo = 0xFEDCBA9876543210ull;
  context.spanId = 0xDEADBEEFCAFEF00Dull;
  context.sampled = true;
  return context;
}

void expectSameContext(const trace::TraceContext& a,
                       const trace::TraceContext& b) {
  EXPECT_EQ(a.traceIdHi, b.traceIdHi);
  EXPECT_EQ(a.traceIdLo, b.traceIdLo);
  EXPECT_EQ(a.spanId, b.spanId);
  EXPECT_EQ(a.sampled, b.sampled);
}

service::BatchSpec smallSpec() {
  service::BatchSpec spec;
  spec.stateCount = 6;
  spec.inputCount = 2;
  spec.instanceCount = 3;
  spec.seed = 7;
  return spec;
}

TEST(TelemetryTraceWire, PlanRequestCarriesContext) {
  service::PlanRequest request;
  request.spec = smallSpec();
  request.deadlineMs = 1500;
  request.requestId = 42;
  request.context = sampleContext();
  const service::PlanRequest decoded =
      service::decodePlanRequest(service::encodePlanRequest(request));
  EXPECT_EQ(decoded.requestId, 42u);
  expectSameContext(decoded.context, request.context);
}

TEST(TelemetryTraceWire, ShardRequestCarriesContext) {
  service::ShardRequest request;
  request.spec = smallSpec();
  request.lo = 1;
  request.hi = 3;
  request.context = sampleContext();
  const service::ShardRequest decoded =
      service::decodeShardRequest(service::encodeShardRequest(request));
  EXPECT_EQ(decoded.lo, 1u);
  expectSameContext(decoded.context, request.context);
}

TEST(TelemetryTraceWire, SessionMutateCarriesContext) {
  service::SessionMutateRequest request;
  request.tenant = "acme";
  request.name = "edge";
  request.seq = 9;
  request.context = sampleContext();
  const service::SessionMutateRequest decoded =
      service::decodeSessionMutateRequest(
          service::encodeSessionMutateRequest(request));
  EXPECT_EQ(decoded.seq, 9u);
  expectSameContext(decoded.context, request.context);
}

TEST(TelemetryTraceWire, DefaultContextStaysInvalidAcrossTheWire) {
  service::PlanRequest request;
  request.spec = smallSpec();
  const service::PlanRequest decoded =
      service::decodePlanRequest(service::encodePlanRequest(request));
  EXPECT_FALSE(decoded.context.valid());
  EXPECT_FALSE(decoded.context.sampled);
}

// --- Stats and trace-dump frames -----------------------------------------

TEST(TelemetryStatsFrame, RoundTripsEveryField) {
  service::StatsResponse stats;
  stats.pid = 4242;
  stats.uptimeMs = 987654;
  stats.draining = true;
  stats.workers.healthy = true;
  stats.workers.workersAlive = 3;
  stats.workers.workersConfigured = 4;
  stats.workers.queueDepth = 7;
  stats.workers.crashes = 2;
  stats.workers.retries = 5;
  stats.workers.shed = 1;
  stats.planCache.enabled = true;
  stats.planCache.size = 17;
  stats.planCache.capacity = 4096;
  stats.breakers.push_back({"fabric:unix:/tmp/a.sock", "OPEN", 3});
  stats.breakers.push_back({"fabric:tcp:10.0.0.2:4777", "CLOSED", 0});
  service::StatsResponse::SessionStats session;
  session.tenant = "acme";
  session.name = "edge";
  session.priority = 2;
  session.weight = 1.5;
  session.vtime = 12.25;
  session.tokensRemaining = 3.5;
  session.queued = 4;
  session.applied = 11;
  session.walAgeMs = 120;
  session.snapshotAgeMs = -1;
  stats.sessions.push_back(session);
  stats.openSessions = 1;
  stats.schedulerDepth = 4;
  stats.schedulerVirtualNow = 99.5;
  stats.metrics.counters.push_back({"service.requests", 123});
  stats.metrics.gauges.push_back({"service.queue_depth", -2});
  stats.metrics.rolling.push_back(
      {"service.request_window", 10, 1.0, 2.0, 3.0, 4.0, 60000});

  const service::StatsResponse decoded =
      service::decodeStatsResponse(service::encodeStatsResponse(stats));
  EXPECT_EQ(decoded.pid, 4242);
  EXPECT_EQ(decoded.uptimeMs, 987654);
  EXPECT_TRUE(decoded.draining);
  EXPECT_TRUE(decoded.workers.healthy);
  EXPECT_EQ(decoded.workers.workersAlive, 3);
  EXPECT_EQ(decoded.workers.queueDepth, 7u);
  EXPECT_TRUE(decoded.planCache.enabled);
  EXPECT_EQ(decoded.planCache.size, 17u);
  EXPECT_EQ(decoded.planCache.capacity, 4096u);
  ASSERT_EQ(decoded.breakers.size(), 2u);
  EXPECT_EQ(decoded.breakers[0].name, "fabric:unix:/tmp/a.sock");
  EXPECT_EQ(decoded.breakers[0].state, "OPEN");
  EXPECT_EQ(decoded.breakers[0].trips, 3u);
  ASSERT_EQ(decoded.sessions.size(), 1u);
  EXPECT_EQ(decoded.sessions[0].tenant, "acme");
  EXPECT_EQ(decoded.sessions[0].name, "edge");
  EXPECT_EQ(decoded.sessions[0].priority, 2u);
  EXPECT_DOUBLE_EQ(decoded.sessions[0].weight, 1.5);
  EXPECT_DOUBLE_EQ(decoded.sessions[0].vtime, 12.25);
  EXPECT_DOUBLE_EQ(decoded.sessions[0].tokensRemaining, 3.5);
  EXPECT_EQ(decoded.sessions[0].queued, 4u);
  EXPECT_EQ(decoded.sessions[0].applied, 11u);
  EXPECT_EQ(decoded.sessions[0].walAgeMs, 120);
  EXPECT_EQ(decoded.sessions[0].snapshotAgeMs, -1);
  EXPECT_EQ(decoded.openSessions, 1u);
  EXPECT_EQ(decoded.schedulerDepth, 4u);
  EXPECT_DOUBLE_EQ(decoded.schedulerVirtualNow, 99.5);
  ASSERT_EQ(decoded.metrics.counters.size(), 1u);
  EXPECT_EQ(decoded.metrics.counters[0].name, "service.requests");
  EXPECT_EQ(decoded.metrics.counters[0].value, 123u);
  ASSERT_EQ(decoded.metrics.gauges.size(), 1u);
  EXPECT_EQ(decoded.metrics.gauges[0].value, -2);
  ASSERT_EQ(decoded.metrics.rolling.size(), 1u);
  EXPECT_EQ(decoded.metrics.rolling[0].name, "service.request_window");
  EXPECT_DOUBLE_EQ(decoded.metrics.rolling[0].p99Ms, 3.0);
  EXPECT_EQ(decoded.metrics.rolling[0].windowMs, 60000);
}

TEST(TelemetryStatsFrame, RequestDecodesAndRejectsJunk) {
  EXPECT_NO_THROW(service::decodeStatsRequest(service::encodeStatsRequest()));
  EXPECT_THROW(service::decodeStatsRequest("junk"), Error);
  EXPECT_THROW(service::decodeStatsResponse("junk"), Error);
}

TEST(TelemetryTraceDumpFrame, RoundTripsClockEchoAndJson) {
  service::TraceDumpRequest request;
  request.clientSteadyNs = 123456789;
  const service::TraceDumpRequest decodedRequest =
      service::decodeTraceDumpRequest(
          service::encodeTraceDumpRequest(request));
  EXPECT_EQ(decodedRequest.clientSteadyNs, 123456789);

  service::TraceDumpResponse response;
  response.serverSteadyNs = 555;
  response.clientSteadyNs = 123456789;
  response.traceJson = "{\"traceEvents\": []}";
  const service::TraceDumpResponse decoded =
      service::decodeTraceDumpResponse(
          service::encodeTraceDumpResponse(response));
  EXPECT_EQ(decoded.serverSteadyNs, 555);
  EXPECT_EQ(decoded.clientSteadyNs, 123456789);
  EXPECT_EQ(decoded.traceJson, response.traceJson);
  EXPECT_THROW(service::decodeTraceDumpResponse("junk"), Error);
}

}  // namespace
}  // namespace rfsm
