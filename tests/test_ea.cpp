// Tests for the permutation EA framework: operator validity (every child is
// a permutation), determinism, and convergence on known small problems.
#include <gtest/gtest.h>

#include <cmath>

#include "ea/evolution.hpp"
#include "ea/permutation.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(Permutation, IsPermutationDetectsViolations) {
  EXPECT_TRUE(isPermutation({2, 0, 1}));
  EXPECT_TRUE(isPermutation({}));
  EXPECT_FALSE(isPermutation({0, 0, 1}));
  EXPECT_FALSE(isPermutation({0, 3}));
  EXPECT_FALSE(isPermutation({-1, 0}));
}

TEST(Permutation, RandomPermutationIsValidAndVaries) {
  Rng rng(1);
  const Permutation a = randomPermutation(20, rng);
  const Permutation b = randomPermutation(20, rng);
  EXPECT_TRUE(isPermutation(a));
  EXPECT_TRUE(isPermutation(b));
  EXPECT_NE(a, b);
}

/// Property sweep: variation operators preserve the permutation property
/// across sizes and seeds.
class OperatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OperatorPropertyTest, CrossoversProducePermutations) {
  const auto [size, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 1000 + size);
  const Permutation a = randomPermutation(size, rng);
  const Permutation b = randomPermutation(size, rng);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(isPermutation(orderCrossover(a, b, rng)));
    EXPECT_TRUE(isPermutation(pmxCrossover(a, b, rng)));
  }
}

TEST_P(OperatorPropertyTest, MutationsProducePermutations) {
  const auto [size, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 2000 + size);
  Permutation p = randomPermutation(size, rng);
  for (int round = 0; round < 10; ++round) {
    swapMutation(p, rng);
    EXPECT_TRUE(isPermutation(p));
    insertMutation(p, rng);
    EXPECT_TRUE(isPermutation(p));
    inversionMutation(p, rng);
    EXPECT_TRUE(isPermutation(p));
  }
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, OperatorPropertyTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 9,
                                                              17),
                                            ::testing::Range(0, 5)));

TEST(Crossover, OxKeepsSliceOfFirstParent) {
  // With a fixed rng the slice is deterministic; check the child mixes both
  // parents but stays a permutation (detailed slice content is covered by
  // the property tests).
  Rng rng(7);
  const Permutation a{0, 1, 2, 3, 4, 5};
  const Permutation b{5, 4, 3, 2, 1, 0};
  const Permutation child = orderCrossover(a, b, rng);
  EXPECT_TRUE(isPermutation(child));
  EXPECT_EQ(child.size(), a.size());
}

TEST(Crossover, SingleElementIsIdentity) {
  Rng rng(3);
  const Permutation a{0};
  EXPECT_EQ(orderCrossover(a, a, rng), a);
  EXPECT_EQ(pmxCrossover(a, a, rng), a);
}

TEST(Crossover, MismatchedParentsRejected) {
  Rng rng(3);
  const Permutation a{0, 1};
  const Permutation b{0};
  EXPECT_THROW(orderCrossover(a, b, rng), ContractError);
  EXPECT_THROW(pmxCrossover(a, b, rng), ContractError);
}

/// A simple permutation cost: weighted displacement from identity.  Unique
/// optimum at the identity permutation with cost 0.
double displacementCost(const Permutation& p) {
  double cost = 0;
  for (std::size_t k = 0; k < p.size(); ++k)
    cost += std::abs(static_cast<double>(p[k]) - static_cast<double>(k));
  return cost;
}

TEST(Evolution, FindsIdentityOnDisplacementCost) {
  Rng rng(11);
  EvolutionConfig config;
  config.populationSize = 40;
  config.generations = 200;
  const EvolutionResult result =
      evolvePermutation(8, displacementCost, config, rng);
  EXPECT_EQ(result.bestFitness, 0.0);
  EXPECT_EQ(result.best, (Permutation{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Evolution, DeterministicForSameSeed) {
  EvolutionConfig config;
  config.generations = 30;
  Rng a(5), b(5);
  const auto ra = evolvePermutation(10, displacementCost, config, a);
  const auto rb = evolvePermutation(10, displacementCost, config, b);
  EXPECT_EQ(ra.best, rb.best);
  EXPECT_EQ(ra.bestFitness, rb.bestFitness);
  EXPECT_EQ(ra.evaluations, rb.evaluations);
}

TEST(Evolution, BestFitnessIsMonotoneNonIncreasing) {
  Rng rng(13);
  EvolutionConfig config;
  config.generations = 50;
  const auto result = evolvePermutation(12, displacementCost, config, rng);
  for (std::size_t g = 1; g < result.history.size(); ++g)
    EXPECT_LE(result.history[g].bestFitness,
              result.history[g - 1].bestFitness + 1e-12);
}

TEST(Evolution, HistoryIncludesInitialPopulation) {
  Rng rng(17);
  EvolutionConfig config;
  config.generations = 5;
  const auto result = evolvePermutation(10, displacementCost, config, rng);
  ASSERT_EQ(result.history.size(), 6u);  // gen 0 + 5 generations
  EXPECT_GE(result.history.front().meanFitness,
            result.history.front().bestFitness);
}

TEST(Evolution, StallLimitStopsEarly) {
  Rng rng(19);
  EvolutionConfig config;
  config.generations = 500;
  config.stallLimit = 5;
  const auto result = evolvePermutation(6, displacementCost, config, rng);
  EXPECT_LT(result.history.size(), 500u);
  EXPECT_EQ(result.bestFitness, 0.0);
}

TEST(Evolution, EmptyGenomeHandled) {
  Rng rng(23);
  EvolutionConfig config;
  const auto result = evolvePermutation(0, displacementCost, config, rng);
  EXPECT_TRUE(result.best.empty());
  EXPECT_EQ(result.bestFitness, 0.0);
}

TEST(Evolution, AllOperatorCombinationsRun) {
  for (const auto crossover : {CrossoverOp::kOrder, CrossoverOp::kPmx}) {
    for (const auto mutation :
         {MutationOp::kSwap, MutationOp::kInsert, MutationOp::kInversion}) {
      Rng rng(29);
      EvolutionConfig config;
      config.generations = 20;
      config.crossover = crossover;
      config.mutation = mutation;
      const auto result = evolvePermutation(8, displacementCost, config, rng);
      EXPECT_TRUE(isPermutation(result.best))
          << toString(crossover) << "/" << toString(mutation);
    }
  }
}

TEST(Evolution, EvaluationsMatchActualFitnessCalls) {
  // The documented accounting: initial population + per generation every
  // non-elite offspring; elites keep cached fitness and are not re-counted.
  int calls = 0;
  const FitnessFn counting = [&calls](const Permutation& p) {
    ++calls;
    return displacementCost(p);
  };
  EvolutionConfig config;
  config.populationSize = 20;
  config.generations = 10;
  config.eliteCount = 2;
  Rng rng(41);
  const auto result = evolvePermutation(9, counting, config, rng);
  EXPECT_EQ(result.evaluations, calls);
  EXPECT_EQ(result.evaluations, 20 + 10 * (20 - 2));
}

TEST(Evolution, EvaluationsPinnedForFixedSeedAndConfig) {
  // Regression pin: with no stall the count is a closed form of the config,
  // independent of the seed.
  for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
    Rng rng(seed);
    EvolutionConfig config;
    config.populationSize = 16;
    config.generations = 25;
    config.eliteCount = 4;
    const auto result = evolvePermutation(7, displacementCost, config, rng);
    EXPECT_EQ(result.evaluations, 16 + 25 * (16 - 4)) << "seed " << seed;
  }
}

TEST(Evolution, StallCountsFromLastStrictImprovement) {
  // A constant fitness never strictly improves, so the run stops after
  // exactly stallLimit generations past generation 0.
  const FitnessFn flat = [](const Permutation&) { return 1.0; };
  EvolutionConfig config;
  config.generations = 500;
  config.stallLimit = 7;
  Rng rng(3);
  const auto result = evolvePermutation(6, flat, config, rng);
  EXPECT_EQ(result.history.size(), 1u + 7u);
  EXPECT_EQ(result.evaluations,
            config.populationSize +
                7 * (config.populationSize - config.eliteCount));
}

TEST(Evolution, ParallelFitnessBitIdenticalToSerial) {
  EvolutionConfig config;
  config.generations = 40;
  Rng serialRng(123), pooledRng(123);
  ThreadPool pool(4);
  const auto serial = evolvePermutation(12, displacementCost, config,
                                        serialRng);
  const auto pooled = evolvePermutation(12, displacementCost, config,
                                        pooledRng, &pool);
  EXPECT_EQ(serial.best, pooled.best);
  EXPECT_EQ(serial.bestFitness, pooled.bestFitness);
  EXPECT_EQ(serial.evaluations, pooled.evaluations);
  ASSERT_EQ(serial.history.size(), pooled.history.size());
  for (std::size_t g = 0; g < serial.history.size(); ++g) {
    EXPECT_EQ(serial.history[g].bestFitness, pooled.history[g].bestFitness);
    EXPECT_EQ(serial.history[g].meanFitness, pooled.history[g].meanFitness);
  }
}

TEST(Evolution, RejectsBadConfig) {
  Rng rng(1);
  EvolutionConfig config;
  config.populationSize = 1;
  EXPECT_THROW(evolvePermutation(4, displacementCost, config, rng),
               ContractError);
  config = EvolutionConfig{};
  config.eliteCount = config.populationSize;
  EXPECT_THROW(evolvePermutation(4, displacementCost, config, rng),
               ContractError);
}

}  // namespace
}  // namespace rfsm
