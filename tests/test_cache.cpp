// SLRU + ghost-list cache policy, canonical content hashing, and the
// BFS-buffer shape pool.
//
// The SLRU suite pins the admission/eviction policy the shared plan cache
// and the worker instance cache both ride on — including the
// fill-evict-reinsert sequence that a bare-FIFO bookkeeping bug would get
// wrong (evicting more than overflow, or resurrecting an erased key from
// the ghost list).  The hasher suite pins the structural (type-tagged,
// length-prefixed) canonicalization the plan-cache key depends on: any
// accidental concatenation collision here is a cache-aliasing bug there.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/canonical_hash.hpp"
#include "core/migration.hpp"
#include "core/mutable_machine.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/cache.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

using Cache = SlruCache<int>;

std::vector<std::string> keys(int count) {
  std::vector<std::string> out;
  for (int k = 0; k < count; ++k) out.push_back("k" + std::to_string(k));
  return out;
}

// --- SLRU policy -------------------------------------------------------

TEST(SlruCache, FillEvictReinsertKeepsExactBookkeeping) {
  // Capacity 5: probation 1, protected 4.  Fill past capacity, verify each
  // put evicts exactly the overflow (never more), then re-insert an
  // evicted key and verify it is readmitted via the ghost list without
  // displacing anything it should not.
  Cache cache(5);
  const auto ks = keys(8);
  std::size_t evictions = 0;
  for (int k = 0; k < 8; ++k) {
    const auto outcome = cache.put(ks[static_cast<std::size_t>(k)], k);
    evictions += outcome.evicted;
    EXPECT_LE(cache.size(), 5u) << "over capacity after put " << k;
  }
  // 8 one-shot inserts into capacity 5 evict exactly 3 — one per
  // overflowing put, no double-eviction.
  EXPECT_EQ(evictions, 3u);
  EXPECT_EQ(cache.size(), 5u);

  // k0 was evicted (probation churn, LRU first).  Re-inserting it must
  // report a ghost readmission and land it protected: a subsequent scan of
  // fresh one-shot keys may not flush it.
  const auto back = cache.put(ks[0], 100);
  EXPECT_TRUE(back.readmitted);
  for (int k = 20; k < 24; ++k)
    cache.put("scan" + std::to_string(k), k);
  EXPECT_EQ(cache.get(ks[0]), std::optional<int>(100));
}

TEST(SlruCache, OneShotScanCannotFlushProtectedWorkingSet) {
  Cache cache(10);  // probation 2, protected 8
  // Build a proven working set: insert + touch promotes to protected.
  for (int k = 0; k < 4; ++k) {
    cache.put("hot" + std::to_string(k), k);
    EXPECT_TRUE(cache.get("hot" + std::to_string(k)).has_value());
  }
  // A long one-shot scan churns through probation only.
  for (int k = 0; k < 100; ++k)
    cache.put("cold" + std::to_string(k), k);
  for (int k = 0; k < 4; ++k)
    EXPECT_TRUE(cache.get("hot" + std::to_string(k)).has_value())
        << "scan flushed hot" << k;
}

TEST(SlruCache, ProtectedOverflowDemotesInsteadOfEvicting) {
  Cache cache(5);  // probation 1, protected 4
  // Promote 5 keys; the 5th promotion overflows protected (capacity 4) and
  // must demote the protected LRU tail back to probation, not evict it.
  for (int k = 0; k < 5; ++k) {
    cache.put("p" + std::to_string(k), k);
    EXPECT_TRUE(cache.get("p" + std::to_string(k)).has_value());
  }
  EXPECT_EQ(cache.size(), 5u);  // all five still resident
  for (int k = 0; k < 5; ++k)
    EXPECT_TRUE(cache.get("p" + std::to_string(k)).has_value());
}

TEST(SlruCache, KnownKeyPutUpdatesWithoutEviction) {
  Cache cache(3);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("c", 3);
  const auto outcome = cache.put("b", 20);
  EXPECT_EQ(outcome.evicted, 0u);
  EXPECT_FALSE(outcome.readmitted);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.get("b"), std::optional<int>(20));
}

TEST(SlruCache, EraseDropsGhostHistoryToo) {
  // Quarantine semantics: after erase(), re-inserting the key must NOT be
  // readmitted on the strength of its (tainted) eviction history.
  Cache cache(2);
  cache.put("x", 1);
  cache.put("y", 2);
  cache.put("z", 3);  // evicts one of x/y to the ghost list
  // Whichever got evicted, erase both: one live entry and one ghost.
  cache.erase("x");
  cache.erase("y");
  EXPECT_FALSE(cache.put("x", 10).readmitted);
  EXPECT_FALSE(cache.put("y", 20).readmitted);
}

TEST(SlruCache, EvictedKeyReturnsAsGhostReadmission) {
  Cache cache(2);
  cache.put("x", 1);
  cache.put("y", 2);
  cache.put("z", 3);  // probation churn evicts the LRU one-hit-wonder
  std::size_t ghosts = 0;
  ghosts += cache.put("x", 10).readmitted ? 1 : 0;
  ghosts += cache.put("y", 20).readmitted ? 1 : 0;
  EXPECT_GE(ghosts, 1u) << "no evicted key was remembered as a ghost";
}

TEST(SlruCache, SetCapacityShrinkEvictsExactlyOverflow) {
  Cache cache(8);
  for (int k = 0; k < 8; ++k) cache.put("k" + std::to_string(k), k);
  EXPECT_EQ(cache.size(), 8u);
  const std::size_t evicted = cache.setCapacity(3);
  EXPECT_EQ(evicted, 5u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.capacity(), 3u);
}

TEST(SlruCache, CapacityZeroDisablesPuts) {
  Cache cache(0);
  EXPECT_EQ(cache.put("a", 1).evicted, 0u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get("a").has_value());

  Cache shrunk(4);
  shrunk.put("a", 1);
  shrunk.setCapacity(0);
  EXPECT_EQ(shrunk.size(), 0u);
  shrunk.put("b", 2);
  EXPECT_FALSE(shrunk.get("b").has_value());
}

TEST(SlruCache, CapacityOneStillServes) {
  Cache cache(1);
  cache.put("a", 1);
  EXPECT_EQ(cache.get("a"), std::optional<int>(1));
  cache.put("b", 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get("b"), std::optional<int>(2));
}

// --- Canonical hashing -------------------------------------------------

TEST(CanonicalHasher, DeterministicAcrossInstances) {
  CanonicalHasher a, b;
  a.u64(7).str("greedy").i64(-3);
  b.u64(7).str("greedy").i64(-3);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 32u);
}

TEST(CanonicalHasher, HexIsNonDestructive) {
  CanonicalHasher h;
  h.u64(1);
  const std::string first = h.hex();
  EXPECT_EQ(h.hex(), first);
  h.u64(2);
  EXPECT_NE(h.hex(), first);
}

TEST(CanonicalHasher, StringBoundariesCannotAliasByConcatenation) {
  CanonicalHasher ab_c, a_bc;
  ab_c.str("ab").str("c");
  a_bc.str("a").str("bc");
  EXPECT_NE(ab_c.hex(), a_bc.hex());

  CanonicalHasher joined;
  joined.str("abc");
  EXPECT_NE(joined.hex(), ab_c.hex());
}

TEST(CanonicalHasher, TypeTagsSeparateEqualBitPatterns) {
  CanonicalHasher asU64, asI64;
  asU64.u64(42);
  asI64.i64(42);
  EXPECT_NE(asU64.hex(), asI64.hex());

  // A u64 must not collide with a string whose length/word layout echoes
  // its value.
  CanonicalHasher asStr;
  asStr.str(std::string(1, '\x2a'));
  EXPECT_NE(asU64.hex(), asStr.hex());
}

TEST(CanonicalHasher, FieldOrderMatters) {
  CanonicalHasher ab, ba;
  ab.u64(1).u64(2);
  ba.u64(2).u64(1);
  EXPECT_NE(ab.hex(), ba.hex());
}

TEST(CanonicalHasher, EmptyStringStillAbsorbs) {
  CanonicalHasher with, without;
  with.u64(1).str("").u64(2);
  without.u64(1).u64(2);
  EXPECT_NE(with.hex(), without.hex());
}

// --- BFS-buffer shape pool ---------------------------------------------

TEST(BfsPool, ReusesBuffersAcrossSameShapeMachines) {
  const MigrationContext context(example41Source(), example41Target());
  metrics::counter(metrics::kBfsPoolReuses).reset();
  {
    MutableMachine first(context);
    first.distancesFrom(0);  // allocates + fills the BFS cache
  }  // destructor returns the buffer to the shape pool
  {
    MutableMachine second(context);
    second.distancesFrom(0);
  }
  EXPECT_GE(metrics::counter(metrics::kBfsPoolReuses).value(), 1u)
      << "second same-shape machine did not reuse the pooled buffer";
}

TEST(BfsPool, ReusedBufferServesNoStaleDistances) {
  // Two *different* machines sharing a shape (8 superset states, a state
  // count no other test pools): the machine that reuses the pooled buffer
  // must compute its own distances, not inherit the previous owner's.
  RandomMachineSpec shape;
  shape.stateCount = 8;
  shape.inputCount = 2;
  shape.outputCount = 2;
  MutationSpec mutation;
  mutation.deltaCount = 3;
  const auto context = [&](std::uint64_t seed) {
    Rng rng(seed);
    const Machine source = randomMachine(shape, rng);
    const Machine target = mutateMachine(source, mutation, rng);
    return MigrationContext(source, target);
  };
  const MigrationContext first = context(11);
  const MigrationContext second = context(22);

  {
    MutableMachine polluter(first);
    polluter.distancesFrom(0);
  }  // pools an 8-state buffer filled with `first`'s BFS results
  const std::uint64_t before =
      metrics::counter(metrics::kBfsPoolReuses).value();
  MutableMachine reuser(second);
  const std::vector<int> viaPool = reuser.distancesFrom(0);
  EXPECT_GT(metrics::counter(metrics::kBfsPoolReuses).value(), before)
      << "test is vacuous: the pooled buffer was not reused";
  // Ground truth from a machine that CANNOT have reused the pooled buffer
  // (the reuser still holds it).
  MutableMachine fresh(second);
  EXPECT_EQ(viaPool, fresh.distancesFrom(0))
      << "pooled buffer leaked stale BFS results across machines";
}

}  // namespace
}  // namespace rfsm
