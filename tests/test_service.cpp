// End-to-end tests of the hardened planner service: real rfsmd worker
// subprocesses under the supervisor, crash/retry bit-identity, deadlines,
// load shedding, health, and graceful degradation.
//
// The rfsmd binary path comes from RFSM_RFSMD_BUILD_PATH (a CMake
// compile definition pointing at the build tree) or the RFSM_RFSMD
// environment variable.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "fsm/serialize.hpp"
#include "service/client.hpp"
#include "service/plan_cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/metrics.hpp"
#include "util/supervisor.hpp"

namespace rfsm {
namespace {

using namespace std::chrono_literals;

std::string rfsmdPath() {
  if (const char* env = std::getenv("RFSM_RFSMD")) return env;
#ifdef RFSM_RFSMD_BUILD_PATH
  return RFSM_RFSMD_BUILD_PATH;
#else
  return "rfsmd";
#endif
}

service::BatchSpec smallSpec() {
  service::BatchSpec spec;
  spec.stateCount = 8;
  spec.inputCount = 2;
  spec.outputCount = 2;
  spec.deltaCount = 6;
  spec.instanceCount = 10;
  spec.seed = 7;
  spec.planner = "greedy";
  return spec;
}

SupervisorOptions workerPool(int workers) {
  SupervisorOptions options;
  options.workerCommand = {rfsmdPath(), "--worker"};
  options.workers = workers;
  return options;
}

service::ServerOptions serverOptions(int workers, std::uint64_t shardSize) {
  service::ServerOptions options;
  options.workerBinary = rfsmdPath();
  options.shardSize = shardSize;
  options.pool = workerPool(workers);
  return options;
}

// --- Determinism foundations --------------------------------------------

TEST(Protocol, InstanceGenerationIsShardAgnostic) {
  const service::BatchSpec spec = smallSpec();
  // Generating instance 7 directly must equal generating it as part of any
  // enclosing sweep (makeInstance takes no mutable state).
  const MigrationContext direct = service::makeInstance(spec, 7);
  const MigrationContext again = service::makeInstance(spec, 7);
  EXPECT_EQ(toJson(direct.sourceMachine()), toJson(again.sourceMachine()));
  EXPECT_EQ(toJson(direct.targetMachine()), toJson(again.targetMachine()));
}

TEST(Protocol, PlanRangeShardsAreBitIdenticalToTheWhole) {
  const service::BatchSpec spec = smallSpec();
  const auto whole = service::planRange(spec, 0, spec.instanceCount);
  ASSERT_EQ(whole.size(), spec.instanceCount);
  // Any split must reproduce the same bytes per slot.
  for (const std::uint64_t cut : {1ull, 3ull, 7ull}) {
    auto left = service::planRange(spec, 0, cut);
    auto right = service::planRange(spec, cut, spec.instanceCount);
    left.insert(left.end(), right.begin(), right.end());
    EXPECT_EQ(left, whole) << "split at " << cut;
  }
}

TEST(Protocol, UnknownPlannerThrows) {
  EXPECT_THROW(service::plannerFn("quantum"), Error);
}

TEST(Protocol, InstanceCacheServesRepeatedGenerations) {
  service::clearInstanceCache();
  const service::BatchSpec spec = smallSpec();
  metrics::Counter& hits =
      metrics::counter(metrics::kServiceWorkerCacheHits);
  metrics::Counter& misses =
      metrics::counter(metrics::kServiceWorkerCacheMisses);
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t misses0 = misses.value();

  const auto first = service::planRange(spec, 0, 4);
  EXPECT_EQ(misses.value() - misses0, 4u);  // cold cache: all generated
  const std::uint64_t hitsAfterFirst = hits.value();

  // A retried/hedged/quorum-duplicated shard of the same batch hits the
  // cache — and the cached path is byte-identical to the cold one.
  const auto second = service::planRange(spec, 0, 4);
  EXPECT_EQ(second, first);
  EXPECT_EQ(hits.value() - hitsAfterFirst, 4u);
  EXPECT_EQ(misses.value() - misses0, 4u);

  // Different seed, different cache entries: no false sharing.
  service::BatchSpec other = spec;
  other.seed = spec.seed + 1;
  (void)service::planRange(other, 0, 2);
  EXPECT_EQ(misses.value() - misses0, 6u);

  service::clearInstanceCache();
  const std::uint64_t hitsBeforeCleared = hits.value();
  const auto third = service::planRange(spec, 0, 4);
  EXPECT_EQ(third, first);
  EXPECT_EQ(hits.value(), hitsBeforeCleared);  // cleared: no hits
}

// --- Supervisor with real workers ---------------------------------------

TEST(SupervisorWorkers, ShardRoundTripMatchesInProcess) {
  Supervisor supervisor(workerPool(2));
  const service::BatchSpec spec = smallSpec();
  service::ShardRequest shard;
  shard.spec = spec;
  shard.lo = 2;
  shard.hi = 6;
  auto future = supervisor.submit(service::encodeShardRequest(shard));
  const WorkResult result = future.get();
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  const auto response = service::decodeShardResponse(result.payload);
  ASSERT_EQ(response.status, WorkResult::Status::kOk) << response.error;
  EXPECT_EQ(response.programs, service::planRange(spec, 2, 6));
  EXPECT_EQ(result.attempts, 1);
}

TEST(SupervisorWorkers, CrashLoopingWorkerFailsOnlyItsItem) {
  // /bin/false execs fine and exits immediately: every attempt reads EOF.
  SupervisorOptions options;
  options.workerCommand = {"/bin/false"};
  options.workers = 1;
  options.maxAttempts = 2;
  options.backoffBase = 1ms;
  options.backoffCap = 5ms;
  options.restartLimit = 100;  // keep the pool "healthy" while it churns
  Supervisor supervisor(options);
  const WorkResult result = supervisor.submit("anything").get();
  EXPECT_EQ(result.status, WorkResult::Status::kFailed);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_GE(supervisor.health().crashes, 2u);
}

TEST(SupervisorWorkers, CrashStormTripsTheRestartBudget) {
  SupervisorOptions options;
  options.workerCommand = {"/bin/false"};
  options.workers = 1;
  options.maxAttempts = 3;
  options.backoffBase = 1ms;
  options.backoffCap = 2ms;
  options.restartLimit = 2;  // unhealthy after the 3rd crash in-window
  options.restartWindow = 60s;
  Supervisor supervisor(options);
  (void)supervisor.submit("first").get();
  EXPECT_FALSE(supervisor.health().healthy);
  // Once unhealthy, new work is refused up front.
  const WorkResult refused = supervisor.submit("second").get();
  EXPECT_EQ(refused.status, WorkResult::Status::kUnavailable);
}

TEST(SupervisorWorkers, ZeroCapacityQueueShedsEverything) {
  SupervisorOptions options = workerPool(1);
  options.queueCapacity = 0;
  Supervisor supervisor(options);
  const WorkResult result = supervisor.submit("work").get();
  EXPECT_EQ(result.status, WorkResult::Status::kShed);
  EXPECT_EQ(supervisor.health().shed, 1u);
}

TEST(SupervisorWorkers, ExpiredTokenResolvesWithoutAWorker) {
  Supervisor supervisor(workerPool(1));
  auto cancel = std::make_shared<CancelToken>();
  cancel->cancel();
  const WorkResult result = supervisor.submit("work", cancel).get();
  EXPECT_EQ(result.status, WorkResult::Status::kDeadlineExceeded);
}

TEST(SupervisorWorkers, ForcedUnhealthyRefusesAndRecovers) {
  Supervisor supervisor(workerPool(1));
  supervisor.forceUnhealthy();
  EXPECT_EQ(supervisor.submit("a").get().status,
            WorkResult::Status::kUnavailable);
  supervisor.clearUnhealthy();
  service::ShardRequest shard;
  shard.spec = smallSpec();
  shard.lo = 0;
  shard.hi = 1;
  EXPECT_EQ(supervisor.submit(service::encodeShardRequest(shard))
                .get()
                .status,
            WorkResult::Status::kOk);
}

// --- The server: shard/aggregate + fault scenarios -----------------------

TEST(Server, BatchMatchesInProcessPlanning) {
  service::Server server(serverOptions(2, 3));
  service::PlanRequest request;
  request.spec = smallSpec();
  const service::PlanResponse response = server.handlePlan(request);
  ASSERT_EQ(response.status, WorkResult::Status::kOk) << response.error;
  EXPECT_EQ(response.programs,
            service::planRange(request.spec, 0, request.spec.instanceCount));
  EXPECT_EQ(response.retries, 0u);
}

TEST(Server, KilledWorkerMidShardIsRetriedBitIdentically) {
  service::ServerOptions options = serverOptions(2, 4);
  options.scenario = *fault::serviceScenarioByName("kill-first-shard");
  options.pool.backoffBase = 1ms;
  options.pool.backoffCap = 10ms;
  service::Server server(std::move(options));
  service::PlanRequest request;
  request.spec = smallSpec();
  const service::PlanResponse response = server.handlePlan(request);
  ASSERT_EQ(response.status, WorkResult::Status::kOk) << response.error;
  // The kill cost exactly one retry and one crash — and zero bytes.
  EXPECT_GE(response.retries, 1u);
  EXPECT_GE(response.crashes, 1u);
  EXPECT_EQ(response.programs,
            service::planRange(request.spec, 0, request.spec.instanceCount));
}

TEST(Server, AbortedWorkerMidShardIsRetriedBitIdentically) {
  service::ServerOptions options = serverOptions(2, 4);
  options.scenario = *fault::serviceScenarioByName("abort-mid-shard");
  options.pool.backoffBase = 1ms;
  options.pool.backoffCap = 10ms;
  service::Server server(std::move(options));
  service::PlanRequest request;
  request.spec = smallSpec();
  const service::PlanResponse response = server.handlePlan(request);
  ASSERT_EQ(response.status, WorkResult::Status::kOk) << response.error;
  EXPECT_GE(response.retries, 1u);
  EXPECT_EQ(response.programs,
            service::planRange(request.spec, 0, request.spec.instanceCount));
}

TEST(Server, HungWorkerIsDestroyedAndTheShardRetried) {
  service::ServerOptions options = serverOptions(2, 4);
  options.scenario = *fault::serviceScenarioByName("hang-worker");
  options.pool.attemptTimeout = 300ms;  // detect the hang well inside budget
  options.pool.backoffBase = 1ms;
  options.pool.backoffCap = 10ms;
  service::Server server(std::move(options));
  service::PlanRequest request;
  request.spec = smallSpec();
  request.deadlineMs = 30000;
  const service::PlanResponse response = server.handlePlan(request);
  ASSERT_EQ(response.status, WorkResult::Status::kOk) << response.error;
  EXPECT_GE(response.retries, 1u);
  EXPECT_GE(response.crashes, 1u);  // the hung worker was killed, not joined
  EXPECT_EQ(response.programs,
            service::planRange(request.spec, 0, request.spec.instanceCount));
}

TEST(Server, TinyDeadlineReportsDeadlineExceeded) {
  service::Server server(serverOptions(2, 8));
  service::PlanRequest request;
  request.spec = smallSpec();
  request.spec.stateCount = 24;
  request.spec.deltaCount = 40;
  request.spec.inputCount = 4;
  request.spec.instanceCount = 64;
  request.spec.planner = "ea";
  request.deadlineMs = 30;
  const auto start = std::chrono::steady_clock::now();
  const service::PlanResponse response = server.handlePlan(request);
  EXPECT_EQ(response.status, WorkResult::Status::kDeadlineExceeded);
  EXPECT_TRUE(response.programs.empty());
  // Cooperative cancellation: the whole thing unwound in far less time
  // than planning 64 EA instances would take.
  EXPECT_LT(std::chrono::steady_clock::now() - start, 20s);
}

TEST(Server, UnhealthyPoolAnswersUnavailable) {
  service::ServerOptions options = serverOptions(1, 4);
  options.scenario = *fault::serviceScenarioByName("pool-unhealthy");
  service::Server server(std::move(options));
  service::PlanRequest request;
  request.spec = smallSpec();
  const service::PlanResponse response = server.handlePlan(request);
  EXPECT_EQ(response.status, WorkResult::Status::kUnavailable);
}

TEST(Server, EmptyBatchSucceedsTrivially) {
  service::Server server(serverOptions(1, 4));
  service::PlanRequest request;
  request.spec = smallSpec();
  request.spec.instanceCount = 0;
  const service::PlanResponse response = server.handlePlan(request);
  EXPECT_EQ(response.status, WorkResult::Status::kOk);
  EXPECT_TRUE(response.programs.empty());
}

// --- Client degradation ---------------------------------------------------

TEST(Client, MissingServerDegradesToInProcessPlanning) {
  service::ClientOptions options;
  options.socketPath = "/nonexistent/rfsmd.sock";
  std::ostringstream err;
  const service::ClientResult result =
      service::planBatch(smallSpec(), options, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.programs,
            service::planRange(smallSpec(), 0, smallSpec().instanceCount));
  EXPECT_NE(err.str().find("degrading to in-process"), std::string::npos);
}

TEST(Client, LocalDeadlineIsCooperative) {
  service::BatchSpec spec = smallSpec();
  spec.stateCount = 24;
  spec.deltaCount = 40;
  spec.inputCount = 4;
  spec.instanceCount = 64;
  spec.planner = "ea";
  const service::ClientResult result = service::planLocal(spec, 20, 1);
  EXPECT_EQ(result.status, WorkResult::Status::kDeadlineExceeded);
}

// --- Full socket path -----------------------------------------------------

struct RunningServer {
  service::Server server;
  CancelToken stop;
  std::thread thread;

  explicit RunningServer(service::ServerOptions options)
      : server(std::move(options)),
        thread([this] { server.run(&stop); }) {}
  ~RunningServer() {
    stop.cancel();
    thread.join();
  }
};

std::string freshSocketPath(const char* tag) {
  return "/tmp/rfsm-test-" + std::to_string(getpid()) + "-" + tag + ".sock";
}

TEST(Socket, PlanAndProbeOverUnixSocket) {
  const std::string path = freshSocketPath("e2e");
  service::ServerOptions options = serverOptions(2, 4);
  options.socketPath = path;
  RunningServer running(std::move(options));

  const auto health = service::probeHealth(path);
  ASSERT_TRUE(health.has_value());
  EXPECT_TRUE(health->healthy);
  EXPECT_EQ(health->workersConfigured, 2);

  service::ClientOptions client;
  client.socketPath = path;
  std::ostringstream err;
  const service::ClientResult result =
      service::planBatch(smallSpec(), client, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.programs,
            service::planRange(smallSpec(), 0, smallSpec().instanceCount));
  unlink(path.c_str());
}

// --- Content-addressed plan cache ---------------------------------------

/// RAII: enables the plan cache with a fresh state and guarantees it is
/// disabled (and emptied) afterwards, so this suite cannot leak cache
/// state into tests written against the off-by-default contract.
class PlanCacheScope {
 public:
  explicit PlanCacheScope(std::size_t capacity) {
    service::configurePlanCache(capacity);
    service::clearPlanCache();
  }
  ~PlanCacheScope() { service::configurePlanCache(0); }
};

TEST(PlanCache, DisabledByDefaultAndInvisible) {
  EXPECT_FALSE(service::planCacheEnabled());
  const std::uint64_t hits0 =
      metrics::counter(metrics::kServicePlanCacheHits).value();
  const std::uint64_t misses0 =
      metrics::counter(metrics::kServicePlanCacheMisses).value();
  const auto first = service::planRange(smallSpec(), 0, 4);
  const auto second = service::planRange(smallSpec(), 0, 4);
  EXPECT_EQ(first, second);
  // Disabled means invisible: no hit/miss accounting at all.
  EXPECT_EQ(metrics::counter(metrics::kServicePlanCacheHits).value(), hits0);
  EXPECT_EQ(metrics::counter(metrics::kServicePlanCacheMisses).value(),
            misses0);
}

TEST(PlanCache, WarmRunIsByteIdenticalToColdAndBypass) {
  PlanCacheScope scope(256);
  const service::BatchSpec spec = smallSpec();
  const std::uint64_t n = spec.instanceCount;
  // The bypass run is what a cache-free build would print.
  const auto reference = service::planRange(spec, 0, n, nullptr, 1,
                                            service::PlanCacheMode::kBypass);
  metrics::Counter& hits = metrics::counter(metrics::kServicePlanCacheHits);
  metrics::Counter& misses =
      metrics::counter(metrics::kServicePlanCacheMisses);
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t misses0 = misses.value();

  const auto cold = service::planRange(spec, 0, n);
  EXPECT_EQ(cold, reference);
  EXPECT_EQ(misses.value() - misses0, n);
  EXPECT_EQ(hits.value(), hits0);

  const auto warm = service::planRange(spec, 0, n);
  EXPECT_EQ(warm, reference);
  EXPECT_EQ(hits.value() - hits0, n);

  // Cache hits are byte-identical at every job count too.
  const auto warmParallel = service::planRange(spec, 0, n, nullptr, 3);
  EXPECT_EQ(warmParallel, reference);
}

TEST(PlanCache, PartiallyWarmRangeRecomputesOnlyTheGaps) {
  PlanCacheScope scope(256);
  const service::BatchSpec spec = smallSpec();
  const auto reference = service::planRange(
      spec, 0, spec.instanceCount, nullptr, 1,
      service::PlanCacheMode::kBypass);
  // Warm a hole-y subset: [2, 5) cached, the rest cold.
  (void)service::planRange(spec, 2, 5);
  metrics::Counter& hits = metrics::counter(metrics::kServicePlanCacheHits);
  const std::uint64_t hits0 = hits.value();
  const auto mixed = service::planRange(spec, 0, spec.instanceCount);
  EXPECT_EQ(mixed, reference);  // cached middle + recomputed edges
  EXPECT_EQ(hits.value() - hits0, 3u);
}

TEST(PlanCache, ServerSharesResultsAcrossRequests) {
  PlanCacheScope scope(256);
  const std::string path = freshSocketPath("plancache");
  service::ServerOptions options = serverOptions(2, 4);
  options.socketPath = path;
  RunningServer running(std::move(options));

  const service::BatchSpec spec = smallSpec();
  const auto reference = service::planRange(
      spec, 0, spec.instanceCount, nullptr, 1,
      service::PlanCacheMode::kBypass);
  service::ClientOptions client;
  client.socketPath = path;
  std::ostringstream err;

  // Cold: every instance planned by a worker subprocess, then stored by
  // the broker parent.
  const service::ClientResult first = service::planBatch(spec, client, err);
  ASSERT_EQ(first.status, WorkResult::Status::kOk) << first.error;
  EXPECT_EQ(first.programs, reference);

  // Warm: the parent serves the whole batch without re-planning — results
  // planned via worker A are visible to requests that would have gone to
  // worker B, because the cache lives above the pool.
  const service::ClientResult second = service::planBatch(spec, client, err);
  ASSERT_EQ(second.status, WorkResult::Status::kOk) << second.error;
  EXPECT_EQ(second.programs, reference);
  EXPECT_EQ(second.cacheHits, spec.instanceCount);
  unlink(path.c_str());
}

TEST(PlanCache, EvictionUnderPressureStaysCorrect) {
  PlanCacheScope scope(4);  // far smaller than the batch
  const service::BatchSpec spec = smallSpec();
  const auto reference = service::planRange(
      spec, 0, spec.instanceCount, nullptr, 1,
      service::PlanCacheMode::kBypass);
  metrics::Counter& evictions =
      metrics::counter(metrics::kServicePlanCacheEvictions);
  const std::uint64_t evictions0 = evictions.value();
  const auto cold = service::planRange(spec, 0, spec.instanceCount);
  EXPECT_EQ(cold, reference);
  EXPECT_GT(evictions.value(), evictions0);
  EXPECT_LE(service::planCacheSize(), 4u);
  // A churned cache degrades to recomputation, never to wrong bytes.
  const auto after = service::planRange(spec, 0, spec.instanceCount);
  EXPECT_EQ(after, reference);
}

TEST(PlanCache, KeySeparatesEveryPlanningField) {
  // Satellite audit: every BatchSpec field that can change the planned
  // bytes must change the key.  A field missing here would alias two
  // different computations onto one cache line.
  const service::BatchSpec base = smallSpec();
  std::vector<std::string> keys;
  keys.push_back(service::planCacheKey(base, 0));
  keys.push_back(service::planCacheKey(base, 1));  // index
  auto variant = [&](auto&& tweak) {
    service::BatchSpec spec = base;
    tweak(spec);
    keys.push_back(service::planCacheKey(spec, 0));
  };
  variant([](service::BatchSpec& s) { s.stateCount += 1; });
  variant([](service::BatchSpec& s) { s.inputCount += 1; });
  variant([](service::BatchSpec& s) { s.outputCount += 1; });
  variant([](service::BatchSpec& s) { s.deltaCount += 1; });
  variant([](service::BatchSpec& s) { s.newStateCount += 1; });
  variant([](service::BatchSpec& s) { s.seed += 1; });
  variant([](service::BatchSpec& s) { s.planner = "ea"; });
  variant([](service::BatchSpec& s) { s.eaPopulation += 1; });
  variant([](service::BatchSpec& s) { s.eaGenerations += 1; });
  std::set<std::string> distinct(keys.begin(), keys.end());
  EXPECT_EQ(distinct.size(), keys.size())
      << "two planning-relevant variants share a cache key";

  // instanceCount is deliberately NOT keyed: instance k of a 10-batch and
  // of a 1000-batch are the same machine and the same plan — cross-batch
  // sharing is the point.
  service::BatchSpec bigger = base;
  bigger.instanceCount = base.instanceCount * 100;
  EXPECT_EQ(service::planCacheKey(bigger, 0),
            service::planCacheKey(base, 0));
}

TEST(PlanCache, InstanceKeySeparatesEveryGenerationField) {
  // Satellite audit for the *worker instance* cache: each field that feeds
  // makeInstance must miss the cache when changed — a hit here would hand
  // one spec another spec's machine.
  service::clearInstanceCache();
  const service::BatchSpec base = smallSpec();
  (void)service::planRange(base, 0, 1);  // prime the cache with index 0
  metrics::Counter& hits = metrics::counter(metrics::kServiceWorkerCacheHits);
  metrics::Counter& misses =
      metrics::counter(metrics::kServiceWorkerCacheMisses);
  auto expectMiss = [&](const char* field, auto&& tweak) {
    service::BatchSpec spec = base;
    tweak(spec);
    const std::uint64_t hits0 = hits.value();
    const std::uint64_t misses0 = misses.value();
    (void)service::planRange(spec, 0, 1);
    EXPECT_EQ(hits.value(), hits0)
        << field << " variant aliased onto the cached instance";
    EXPECT_EQ(misses.value() - misses0, 1u) << field;
  };
  expectMiss("stateCount",
             [](service::BatchSpec& s) { s.stateCount += 1; });
  expectMiss("inputCount",
             [](service::BatchSpec& s) { s.inputCount += 1; });
  expectMiss("outputCount",
             [](service::BatchSpec& s) { s.outputCount += 1; });
  expectMiss("deltaCount",
             [](service::BatchSpec& s) { s.deltaCount += 1; });
  expectMiss("newStateCount",
             [](service::BatchSpec& s) { s.newStateCount += 1; });
  expectMiss("seed", [](service::BatchSpec& s) { s.seed += 1; });
  service::clearInstanceCache();
}

TEST(PlanCache, EnvironmentConfiguration) {
  // Tool mains apply RFSM_PLAN_CACHE; the library never reads it on its
  // own.  Restore the pristine (unset, disabled) state on every path.
  ASSERT_EQ(unsetenv("RFSM_PLAN_CACHE"), 0);
  service::configurePlanCacheFromEnv();
  EXPECT_FALSE(service::planCacheEnabled());  // unset: no-op

  ASSERT_EQ(setenv("RFSM_PLAN_CACHE", "128", 1), 0);
  service::configurePlanCacheFromEnv();
  EXPECT_TRUE(service::planCacheEnabled());

  ASSERT_EQ(setenv("RFSM_PLAN_CACHE", "0", 1), 0);
  service::configurePlanCacheFromEnv();
  EXPECT_FALSE(service::planCacheEnabled());  // explicit off

  ASSERT_EQ(setenv("RFSM_PLAN_CACHE", "on", 1), 0);
  service::configurePlanCacheFromEnv();
  EXPECT_TRUE(service::planCacheEnabled());  // non-numeric: default size

  ASSERT_EQ(unsetenv("RFSM_PLAN_CACHE"), 0);
  service::configurePlanCache(0);
}

TEST(Socket, UnhealthyServerTriggersClientDegradation) {
  const std::string path = freshSocketPath("degrade");
  service::ServerOptions options = serverOptions(1, 4);
  options.socketPath = path;
  options.scenario = *fault::serviceScenarioByName("pool-unhealthy");
  RunningServer running(std::move(options));

  service::ClientOptions client;
  client.socketPath = path;
  std::ostringstream err;
  const service::ClientResult result =
      service::planBatch(smallSpec(), client, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_TRUE(result.degraded);  // correct results despite the dead pool
  EXPECT_EQ(result.programs,
            service::planRange(smallSpec(), 0, smallSpec().instanceCount));
  // The notice carries the stable reason token, never the raw status or
  // errno text (scripts grep stderr; it must not vary by environment).
  EXPECT_NE(err.str().find("(unhealthy)"), std::string::npos);
  EXPECT_EQ(err.str().find("UNAVAILABLE"), std::string::npos);
  unlink(path.c_str());
}

}  // namespace
}  // namespace rfsm
