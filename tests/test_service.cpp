// End-to-end tests of the hardened planner service: real rfsmd worker
// subprocesses under the supervisor, crash/retry bit-identity, deadlines,
// load shedding, health, and graceful degradation.
//
// The rfsmd binary path comes from RFSM_RFSMD_BUILD_PATH (a CMake
// compile definition pointing at the build tree) or the RFSM_RFSMD
// environment variable.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "fsm/serialize.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/metrics.hpp"
#include "util/supervisor.hpp"

namespace rfsm {
namespace {

using namespace std::chrono_literals;

std::string rfsmdPath() {
  if (const char* env = std::getenv("RFSM_RFSMD")) return env;
#ifdef RFSM_RFSMD_BUILD_PATH
  return RFSM_RFSMD_BUILD_PATH;
#else
  return "rfsmd";
#endif
}

service::BatchSpec smallSpec() {
  service::BatchSpec spec;
  spec.stateCount = 8;
  spec.inputCount = 2;
  spec.outputCount = 2;
  spec.deltaCount = 6;
  spec.instanceCount = 10;
  spec.seed = 7;
  spec.planner = "greedy";
  return spec;
}

SupervisorOptions workerPool(int workers) {
  SupervisorOptions options;
  options.workerCommand = {rfsmdPath(), "--worker"};
  options.workers = workers;
  return options;
}

service::ServerOptions serverOptions(int workers, std::uint64_t shardSize) {
  service::ServerOptions options;
  options.workerBinary = rfsmdPath();
  options.shardSize = shardSize;
  options.pool = workerPool(workers);
  return options;
}

// --- Determinism foundations --------------------------------------------

TEST(Protocol, InstanceGenerationIsShardAgnostic) {
  const service::BatchSpec spec = smallSpec();
  // Generating instance 7 directly must equal generating it as part of any
  // enclosing sweep (makeInstance takes no mutable state).
  const MigrationContext direct = service::makeInstance(spec, 7);
  const MigrationContext again = service::makeInstance(spec, 7);
  EXPECT_EQ(toJson(direct.sourceMachine()), toJson(again.sourceMachine()));
  EXPECT_EQ(toJson(direct.targetMachine()), toJson(again.targetMachine()));
}

TEST(Protocol, PlanRangeShardsAreBitIdenticalToTheWhole) {
  const service::BatchSpec spec = smallSpec();
  const auto whole = service::planRange(spec, 0, spec.instanceCount);
  ASSERT_EQ(whole.size(), spec.instanceCount);
  // Any split must reproduce the same bytes per slot.
  for (const std::uint64_t cut : {1ull, 3ull, 7ull}) {
    auto left = service::planRange(spec, 0, cut);
    auto right = service::planRange(spec, cut, spec.instanceCount);
    left.insert(left.end(), right.begin(), right.end());
    EXPECT_EQ(left, whole) << "split at " << cut;
  }
}

TEST(Protocol, UnknownPlannerThrows) {
  EXPECT_THROW(service::plannerFn("quantum"), Error);
}

TEST(Protocol, InstanceCacheServesRepeatedGenerations) {
  service::clearInstanceCache();
  const service::BatchSpec spec = smallSpec();
  metrics::Counter& hits =
      metrics::counter(metrics::kServiceWorkerCacheHits);
  metrics::Counter& misses =
      metrics::counter(metrics::kServiceWorkerCacheMisses);
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t misses0 = misses.value();

  const auto first = service::planRange(spec, 0, 4);
  EXPECT_EQ(misses.value() - misses0, 4u);  // cold cache: all generated
  const std::uint64_t hitsAfterFirst = hits.value();

  // A retried/hedged/quorum-duplicated shard of the same batch hits the
  // cache — and the cached path is byte-identical to the cold one.
  const auto second = service::planRange(spec, 0, 4);
  EXPECT_EQ(second, first);
  EXPECT_EQ(hits.value() - hitsAfterFirst, 4u);
  EXPECT_EQ(misses.value() - misses0, 4u);

  // Different seed, different cache entries: no false sharing.
  service::BatchSpec other = spec;
  other.seed = spec.seed + 1;
  (void)service::planRange(other, 0, 2);
  EXPECT_EQ(misses.value() - misses0, 6u);

  service::clearInstanceCache();
  const std::uint64_t hitsBeforeCleared = hits.value();
  const auto third = service::planRange(spec, 0, 4);
  EXPECT_EQ(third, first);
  EXPECT_EQ(hits.value(), hitsBeforeCleared);  // cleared: no hits
}

// --- Supervisor with real workers ---------------------------------------

TEST(SupervisorWorkers, ShardRoundTripMatchesInProcess) {
  Supervisor supervisor(workerPool(2));
  const service::BatchSpec spec = smallSpec();
  service::ShardRequest shard;
  shard.spec = spec;
  shard.lo = 2;
  shard.hi = 6;
  auto future = supervisor.submit(service::encodeShardRequest(shard));
  const WorkResult result = future.get();
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  const auto response = service::decodeShardResponse(result.payload);
  ASSERT_EQ(response.status, WorkResult::Status::kOk) << response.error;
  EXPECT_EQ(response.programs, service::planRange(spec, 2, 6));
  EXPECT_EQ(result.attempts, 1);
}

TEST(SupervisorWorkers, CrashLoopingWorkerFailsOnlyItsItem) {
  // /bin/false execs fine and exits immediately: every attempt reads EOF.
  SupervisorOptions options;
  options.workerCommand = {"/bin/false"};
  options.workers = 1;
  options.maxAttempts = 2;
  options.backoffBase = 1ms;
  options.backoffCap = 5ms;
  options.restartLimit = 100;  // keep the pool "healthy" while it churns
  Supervisor supervisor(options);
  const WorkResult result = supervisor.submit("anything").get();
  EXPECT_EQ(result.status, WorkResult::Status::kFailed);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_GE(supervisor.health().crashes, 2u);
}

TEST(SupervisorWorkers, CrashStormTripsTheRestartBudget) {
  SupervisorOptions options;
  options.workerCommand = {"/bin/false"};
  options.workers = 1;
  options.maxAttempts = 3;
  options.backoffBase = 1ms;
  options.backoffCap = 2ms;
  options.restartLimit = 2;  // unhealthy after the 3rd crash in-window
  options.restartWindow = 60s;
  Supervisor supervisor(options);
  (void)supervisor.submit("first").get();
  EXPECT_FALSE(supervisor.health().healthy);
  // Once unhealthy, new work is refused up front.
  const WorkResult refused = supervisor.submit("second").get();
  EXPECT_EQ(refused.status, WorkResult::Status::kUnavailable);
}

TEST(SupervisorWorkers, ZeroCapacityQueueShedsEverything) {
  SupervisorOptions options = workerPool(1);
  options.queueCapacity = 0;
  Supervisor supervisor(options);
  const WorkResult result = supervisor.submit("work").get();
  EXPECT_EQ(result.status, WorkResult::Status::kShed);
  EXPECT_EQ(supervisor.health().shed, 1u);
}

TEST(SupervisorWorkers, ExpiredTokenResolvesWithoutAWorker) {
  Supervisor supervisor(workerPool(1));
  auto cancel = std::make_shared<CancelToken>();
  cancel->cancel();
  const WorkResult result = supervisor.submit("work", cancel).get();
  EXPECT_EQ(result.status, WorkResult::Status::kDeadlineExceeded);
}

TEST(SupervisorWorkers, ForcedUnhealthyRefusesAndRecovers) {
  Supervisor supervisor(workerPool(1));
  supervisor.forceUnhealthy();
  EXPECT_EQ(supervisor.submit("a").get().status,
            WorkResult::Status::kUnavailable);
  supervisor.clearUnhealthy();
  service::ShardRequest shard;
  shard.spec = smallSpec();
  shard.lo = 0;
  shard.hi = 1;
  EXPECT_EQ(supervisor.submit(service::encodeShardRequest(shard))
                .get()
                .status,
            WorkResult::Status::kOk);
}

// --- The server: shard/aggregate + fault scenarios -----------------------

TEST(Server, BatchMatchesInProcessPlanning) {
  service::Server server(serverOptions(2, 3));
  service::PlanRequest request;
  request.spec = smallSpec();
  const service::PlanResponse response = server.handlePlan(request);
  ASSERT_EQ(response.status, WorkResult::Status::kOk) << response.error;
  EXPECT_EQ(response.programs,
            service::planRange(request.spec, 0, request.spec.instanceCount));
  EXPECT_EQ(response.retries, 0u);
}

TEST(Server, KilledWorkerMidShardIsRetriedBitIdentically) {
  service::ServerOptions options = serverOptions(2, 4);
  options.scenario = *fault::serviceScenarioByName("kill-first-shard");
  options.pool.backoffBase = 1ms;
  options.pool.backoffCap = 10ms;
  service::Server server(std::move(options));
  service::PlanRequest request;
  request.spec = smallSpec();
  const service::PlanResponse response = server.handlePlan(request);
  ASSERT_EQ(response.status, WorkResult::Status::kOk) << response.error;
  // The kill cost exactly one retry and one crash — and zero bytes.
  EXPECT_GE(response.retries, 1u);
  EXPECT_GE(response.crashes, 1u);
  EXPECT_EQ(response.programs,
            service::planRange(request.spec, 0, request.spec.instanceCount));
}

TEST(Server, AbortedWorkerMidShardIsRetriedBitIdentically) {
  service::ServerOptions options = serverOptions(2, 4);
  options.scenario = *fault::serviceScenarioByName("abort-mid-shard");
  options.pool.backoffBase = 1ms;
  options.pool.backoffCap = 10ms;
  service::Server server(std::move(options));
  service::PlanRequest request;
  request.spec = smallSpec();
  const service::PlanResponse response = server.handlePlan(request);
  ASSERT_EQ(response.status, WorkResult::Status::kOk) << response.error;
  EXPECT_GE(response.retries, 1u);
  EXPECT_EQ(response.programs,
            service::planRange(request.spec, 0, request.spec.instanceCount));
}

TEST(Server, HungWorkerIsDestroyedAndTheShardRetried) {
  service::ServerOptions options = serverOptions(2, 4);
  options.scenario = *fault::serviceScenarioByName("hang-worker");
  options.pool.attemptTimeout = 300ms;  // detect the hang well inside budget
  options.pool.backoffBase = 1ms;
  options.pool.backoffCap = 10ms;
  service::Server server(std::move(options));
  service::PlanRequest request;
  request.spec = smallSpec();
  request.deadlineMs = 30000;
  const service::PlanResponse response = server.handlePlan(request);
  ASSERT_EQ(response.status, WorkResult::Status::kOk) << response.error;
  EXPECT_GE(response.retries, 1u);
  EXPECT_GE(response.crashes, 1u);  // the hung worker was killed, not joined
  EXPECT_EQ(response.programs,
            service::planRange(request.spec, 0, request.spec.instanceCount));
}

TEST(Server, TinyDeadlineReportsDeadlineExceeded) {
  service::Server server(serverOptions(2, 8));
  service::PlanRequest request;
  request.spec = smallSpec();
  request.spec.stateCount = 24;
  request.spec.deltaCount = 40;
  request.spec.inputCount = 4;
  request.spec.instanceCount = 64;
  request.spec.planner = "ea";
  request.deadlineMs = 30;
  const auto start = std::chrono::steady_clock::now();
  const service::PlanResponse response = server.handlePlan(request);
  EXPECT_EQ(response.status, WorkResult::Status::kDeadlineExceeded);
  EXPECT_TRUE(response.programs.empty());
  // Cooperative cancellation: the whole thing unwound in far less time
  // than planning 64 EA instances would take.
  EXPECT_LT(std::chrono::steady_clock::now() - start, 20s);
}

TEST(Server, UnhealthyPoolAnswersUnavailable) {
  service::ServerOptions options = serverOptions(1, 4);
  options.scenario = *fault::serviceScenarioByName("pool-unhealthy");
  service::Server server(std::move(options));
  service::PlanRequest request;
  request.spec = smallSpec();
  const service::PlanResponse response = server.handlePlan(request);
  EXPECT_EQ(response.status, WorkResult::Status::kUnavailable);
}

TEST(Server, EmptyBatchSucceedsTrivially) {
  service::Server server(serverOptions(1, 4));
  service::PlanRequest request;
  request.spec = smallSpec();
  request.spec.instanceCount = 0;
  const service::PlanResponse response = server.handlePlan(request);
  EXPECT_EQ(response.status, WorkResult::Status::kOk);
  EXPECT_TRUE(response.programs.empty());
}

// --- Client degradation ---------------------------------------------------

TEST(Client, MissingServerDegradesToInProcessPlanning) {
  service::ClientOptions options;
  options.socketPath = "/nonexistent/rfsmd.sock";
  std::ostringstream err;
  const service::ClientResult result =
      service::planBatch(smallSpec(), options, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.programs,
            service::planRange(smallSpec(), 0, smallSpec().instanceCount));
  EXPECT_NE(err.str().find("degrading to in-process"), std::string::npos);
}

TEST(Client, LocalDeadlineIsCooperative) {
  service::BatchSpec spec = smallSpec();
  spec.stateCount = 24;
  spec.deltaCount = 40;
  spec.inputCount = 4;
  spec.instanceCount = 64;
  spec.planner = "ea";
  const service::ClientResult result = service::planLocal(spec, 20, 1);
  EXPECT_EQ(result.status, WorkResult::Status::kDeadlineExceeded);
}

// --- Full socket path -----------------------------------------------------

struct RunningServer {
  service::Server server;
  CancelToken stop;
  std::thread thread;

  explicit RunningServer(service::ServerOptions options)
      : server(std::move(options)),
        thread([this] { server.run(&stop); }) {}
  ~RunningServer() {
    stop.cancel();
    thread.join();
  }
};

std::string freshSocketPath(const char* tag) {
  return "/tmp/rfsm-test-" + std::to_string(getpid()) + "-" + tag + ".sock";
}

TEST(Socket, PlanAndProbeOverUnixSocket) {
  const std::string path = freshSocketPath("e2e");
  service::ServerOptions options = serverOptions(2, 4);
  options.socketPath = path;
  RunningServer running(std::move(options));

  const auto health = service::probeHealth(path);
  ASSERT_TRUE(health.has_value());
  EXPECT_TRUE(health->healthy);
  EXPECT_EQ(health->workersConfigured, 2);

  service::ClientOptions client;
  client.socketPath = path;
  std::ostringstream err;
  const service::ClientResult result =
      service::planBatch(smallSpec(), client, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.programs,
            service::planRange(smallSpec(), 0, smallSpec().instanceCount));
  unlink(path.c_str());
}

TEST(Socket, UnhealthyServerTriggersClientDegradation) {
  const std::string path = freshSocketPath("degrade");
  service::ServerOptions options = serverOptions(1, 4);
  options.socketPath = path;
  options.scenario = *fault::serviceScenarioByName("pool-unhealthy");
  RunningServer running(std::move(options));

  service::ClientOptions client;
  client.socketPath = path;
  std::ostringstream err;
  const service::ClientResult result =
      service::planBatch(smallSpec(), client, err);
  ASSERT_EQ(result.status, WorkResult::Status::kOk) << result.error;
  EXPECT_TRUE(result.degraded);  // correct results despite the dead pool
  EXPECT_EQ(result.programs,
            service::planRange(smallSpec(), 0, smallSpec().instanceCount));
  // The notice carries the stable reason token, never the raw status or
  // errno text (scripts grep stderr; it must not vary by environment).
  EXPECT_NE(err.str().find("(unhealthy)"), std::string::npos);
  EXPECT_EQ(err.str().find("UNAVAILABLE"), std::string::npos);
  unlink(path.c_str());
}

}  // namespace
}  // namespace rfsm
