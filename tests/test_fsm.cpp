// Tests for src/fsm: symbol tables, Machine invariants, builder validation,
// simulation, structural analyses, equivalence checking and minimization.
#include <gtest/gtest.h>

#include "fsm/analysis.hpp"
#include "fsm/builder.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/machine.hpp"
#include "fsm/minimize.hpp"
#include "fsm/simulate.hpp"
#include "fsm/symbols.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable t;
  EXPECT_EQ(t.intern("a"), 0);
  EXPECT_EQ(t.intern("b"), 1);
  EXPECT_EQ(t.intern("a"), 0);
  EXPECT_EQ(t.size(), 2);
}

TEST(SymbolTable, FindAndAt) {
  SymbolTable t({"x", "y"});
  EXPECT_EQ(t.at("y"), 1);
  EXPECT_FALSE(t.find("z").has_value());
  EXPECT_THROW(t.at("z"), ContractError);
}

TEST(SymbolTable, RejectsDuplicateInitializer) {
  EXPECT_THROW(SymbolTable({"a", "a"}), ContractError);
}

TEST(SymbolTable, MergeBuildsSuperset) {
  SymbolTable a({"p", "q"});
  SymbolTable b({"q", "r"});
  const MergedSymbols merged = mergeSymbols(a, b);
  EXPECT_EQ(merged.table.size(), 3);
  EXPECT_EQ(merged.fromA[0], merged.table.at("p"));
  EXPECT_EQ(merged.fromB[0], merged.table.at("q"));
  EXPECT_EQ(merged.fromB[1], merged.table.at("r"));
  // Symbols of `a` keep their ids.
  EXPECT_EQ(merged.fromA, (std::vector<SymbolId>{0, 1}));
}

TEST(Machine, PaperOnesDetectorShape) {
  const Machine m = onesDetector();
  EXPECT_EQ(m.stateCount(), 2);
  EXPECT_EQ(m.inputCount(), 2);
  EXPECT_EQ(m.outputCount(), 2);
  const SymbolId s0 = m.states().at("S0");
  const SymbolId s1 = m.states().at("S1");
  const SymbolId in1 = m.inputs().at("1");
  EXPECT_EQ(m.next(in1, s0), s1);
  EXPECT_EQ(m.outputs().name(m.output(in1, s1)), "1");
}

TEST(Machine, TransitionAtMatchesTables) {
  const Machine m = onesDetector();
  for (const Transition& t : m.transitions()) {
    EXPECT_EQ(m.next(t.input, t.from), t.to);
    EXPECT_EQ(m.output(t.input, t.from), t.output);
  }
  EXPECT_EQ(static_cast<int>(m.transitions().size()),
            m.stateCount() * m.inputCount());
}

TEST(Machine, StableTotalStates) {
  const Machine m = onesDetector();
  // (0, S0) and (1, S1) are self-loops.
  EXPECT_TRUE(m.isStableTotalState(m.inputs().at("0"), m.states().at("S0")));
  EXPECT_TRUE(m.isStableTotalState(m.inputs().at("1"), m.states().at("S1")));
  EXPECT_FALSE(m.isStableTotalState(m.inputs().at("1"), m.states().at("S0")));
}

TEST(Machine, MooreDetection) {
  // counterMachine emits the destination count on every in-edge -> Moore.
  EXPECT_TRUE(counterMachine(4).isMoore());
  // The ones detector has edges into S0 with differing... all edges into S0
  // emit 0 and into S1 emit 0 or 1 -> not Moore.
  EXPECT_FALSE(onesDetector().isMoore());
}

TEST(Machine, TransitionGraphShape) {
  const Machine m = onesDetector();
  const Digraph g = m.transitionGraph();
  EXPECT_EQ(g.nodeCount(), 2);
  EXPECT_EQ(g.edgeCount(), 4);
}

TEST(Machine, EqualityAndRename) {
  const Machine a = onesDetector();
  const Machine b = onesDetector().withName("other");
  EXPECT_TRUE(a == b);  // names do not participate in equality
  EXPECT_EQ(b.name(), "other");
  EXPECT_FALSE(a == zerosDetector());
}

TEST(Machine, RejectsMalformedTables) {
  SymbolTable in({"0"});
  SymbolTable out({"0"});
  SymbolTable st({"A"});
  EXPECT_THROW(Machine("bad", in, out, st, 0, {0, 0}, {0}), ContractError);
  EXPECT_THROW(Machine("bad", in, out, st, 5, {0}, {0}), ContractError);
  EXPECT_THROW(Machine("bad", in, out, st, 0, {3}, {0}), ContractError);
}

TEST(Builder, DetectsNonDeterminism) {
  MachineBuilder b("nd");
  b.addTransition("0", "A", "A", "x");
  b.addTransition("0", "A", "B", "x");
  b.setResetState("A");
  EXPECT_THROW(b.build(), FsmError);
}

TEST(Builder, DuplicateIdenticalTransitionIsFine) {
  MachineBuilder b("dup");
  b.addTransition("0", "A", "A", "x");
  b.addTransition("0", "A", "A", "x");
  b.setResetState("A");
  EXPECT_NO_THROW(b.build());
}

TEST(Builder, DetectsIncompleteness) {
  MachineBuilder b("inc");
  b.addInput("0");
  b.addInput("1");
  b.addTransition("0", "A", "A", "x");
  b.setResetState("A");
  EXPECT_EQ(b.unspecifiedCellCount(), 1);
  EXPECT_THROW(b.build(), FsmError);
}

TEST(Builder, RequiresResetState) {
  MachineBuilder b("norst");
  b.addTransition("0", "A", "A", "x");
  EXPECT_THROW(b.build(), FsmError);
}

TEST(Builder, CompleteWithSelfLoops) {
  MachineBuilder b("c");
  b.addInput("0");
  b.addInput("1");
  b.addTransition("0", "A", "B", "x");
  b.addTransition("0", "B", "A", "x");
  b.setResetState("A");
  b.completeWithSelfLoops("y");
  const Machine m = b.build();
  EXPECT_EQ(m.next(m.inputs().at("1"), m.states().at("A")),
            m.states().at("A"));
  EXPECT_EQ(m.outputs().name(m.output(m.inputs().at("1"), m.states().at("B"))),
            "y");
}

TEST(Builder, CompleteWithTargetState) {
  MachineBuilder b("c2");
  b.addInput("0");
  b.addInput("1");
  b.addTransition("0", "A", "B", "x");
  b.addTransition("0", "B", "A", "x");
  b.setResetState("A");
  b.completeWith("A", "x");
  const Machine m = b.build();
  EXPECT_EQ(m.next(m.inputs().at("1"), m.states().at("B")),
            m.states().at("A"));
}

TEST(Simulate, OnesDetectorTrace) {
  const Machine m = onesDetector();
  // Two or more successive ones -> 1 until a zero arrives.
  const auto out = runOnNames(m, {"1", "1", "1", "0", "1"});
  EXPECT_EQ(out, (std::vector<std::string>{"0", "1", "1", "0", "0"}));
}

TEST(Simulate, ResetReturnsToS0) {
  const Machine m = onesDetector();
  Simulator sim(m);
  sim.step(m.inputs().at("1"));
  EXPECT_EQ(m.states().name(sim.state()), "S1");
  sim.reset();
  EXPECT_EQ(sim.state(), m.resetState());
}

TEST(Simulate, TraceShapes) {
  const Machine m = zerosDetector();
  Simulator sim(m);
  const auto word = std::vector<SymbolId>{0, 0, 1};
  const SimulationTrace trace = sim.run(word);
  EXPECT_EQ(trace.states.size(), 4u);
  EXPECT_EQ(trace.outputs.size(), 3u);
  EXPECT_EQ(trace.states.front(), m.resetState());
}

TEST(Analysis, ReachabilityOnFamilies) {
  EXPECT_TRUE(isConnectedFromReset(onesDetector()));
  EXPECT_TRUE(isConnectedFromReset(counterMachine(5)));
  EXPECT_TRUE(unreachableStates(counterMachine(5)).empty());
}

TEST(Analysis, UnreachableStateDetected) {
  MachineBuilder b("island");
  b.addInput("0");
  b.addTransition("0", "A", "A", "x");
  b.addTransition("0", "B", "B", "x");
  b.setResetState("A");
  const Machine m = b.build();
  const auto dead = unreachableStates(m);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(m.states().name(dead[0]), "B");
}

TEST(Analysis, StableTotalStatesList) {
  const auto stable = stableTotalStates(onesDetector());
  EXPECT_EQ(stable.size(), 2u);
}

TEST(Analysis, DistancesTo) {
  const Machine m = counterMachine(6);
  const auto dist = distancesTo(m, m.states().at("C3"));
  // From C0, three ups (or three downs) reach C3.
  EXPECT_EQ(dist[static_cast<std::size_t>(m.states().at("C0"))], 3);
  EXPECT_EQ(dist[static_cast<std::size_t>(m.states().at("C2"))], 1);
  EXPECT_EQ(dist[static_cast<std::size_t>(m.states().at("C3"))], 0);
}

TEST(Analysis, SccCountOnCounter) {
  EXPECT_EQ(sccCount(counterMachine(4)), 1);
}

TEST(Equivalence, IdenticalMachinesEquivalent) {
  EXPECT_TRUE(areEquivalent(onesDetector(), onesDetector()));
}

TEST(Equivalence, DetectorsDiffer) {
  const EquivalenceResult r =
      checkEquivalence(onesDetector(), zerosDetector());
  EXPECT_FALSE(r.equivalent);
  ASSERT_TRUE(r.counterexample.has_value());
  // The word distinguishes them: replay both and compare final outputs.
  const auto outA = runOnNames(onesDetector(), *r.counterexample);
  const auto outB = runOnNames(zerosDetector(), *r.counterexample);
  EXPECT_NE(outA.back(), outB.back());
  // All earlier outputs agree (shortest counterexample).
  for (std::size_t k = 0; k + 1 < outA.size(); ++k)
    EXPECT_EQ(outA[k], outB[k]);
}

TEST(Equivalence, DifferentInputAlphabetsRejected) {
  EXPECT_THROW(checkEquivalence(onesDetector(), counterMachine(2)), FsmError);
}

TEST(Equivalence, RedundantStatesStillEquivalent) {
  // A 2-state detector vs. a version with a duplicated state.
  MachineBuilder b("dup");
  b.addInput("0");
  b.addInput("1");
  b.setResetState("S0");
  b.addTransition("1", "S0", "S1a", "0");
  b.addTransition("1", "S1a", "S1b", "1");
  b.addTransition("1", "S1b", "S1a", "1");
  b.addTransition("0", "S0", "S0", "0");
  b.addTransition("0", "S1a", "S0", "0");
  b.addTransition("0", "S1b", "S0", "0");
  const Machine m = b.build();
  EXPECT_TRUE(areEquivalent(m, onesDetector()));
}

TEST(Minimize, CollapsesRedundantStates) {
  MachineBuilder b("dup");
  b.addInput("0");
  b.addInput("1");
  b.setResetState("S0");
  b.addTransition("1", "S0", "S1a", "0");
  b.addTransition("1", "S1a", "S1b", "1");
  b.addTransition("1", "S1b", "S1a", "1");
  b.addTransition("0", "S0", "S0", "0");
  b.addTransition("0", "S1a", "S0", "0");
  b.addTransition("0", "S1b", "S0", "0");
  const Machine m = b.build();
  const MinimizationResult result = minimize(m);
  EXPECT_EQ(result.machine.stateCount(), 2);
  EXPECT_TRUE(areEquivalent(result.machine, m));
  EXPECT_EQ(result.blockOf[static_cast<std::size_t>(m.states().at("S1a"))],
            result.blockOf[static_cast<std::size_t>(m.states().at("S1b"))]);
}

TEST(Minimize, AlreadyMinimalIsUnchangedInSize) {
  const MinimizationResult result = minimize(onesDetector());
  EXPECT_EQ(result.machine.stateCount(), 2);
  EXPECT_TRUE(areEquivalent(result.machine, onesDetector()));
}

/// Property sweep: minimization preserves behaviour and is itself minimal
/// (re-minimizing does not shrink it further).
class FsmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FsmPropertyTest, MinimizePreservesBehaviourAndIsIdempotent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  RandomMachineSpec spec;
  spec.stateCount = 2 + static_cast<int>(rng.below(10));
  spec.inputCount = 1 + static_cast<int>(rng.below(3));
  spec.outputCount = 1 + static_cast<int>(rng.below(3));
  const Machine m = randomMachine(spec, rng);
  const MinimizationResult once = minimize(m);
  EXPECT_TRUE(areEquivalent(m, once.machine));
  const MinimizationResult twice = minimize(once.machine);
  EXPECT_EQ(once.machine.stateCount(), twice.machine.stateCount());
}

TEST_P(FsmPropertyTest, EquivalenceIsReflexiveOnRandomMachines) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 3);
  RandomMachineSpec spec;
  spec.stateCount = 2 + static_cast<int>(rng.below(8));
  const Machine m = randomMachine(spec, rng);
  EXPECT_TRUE(areEquivalent(m, m));
}

INSTANTIATE_TEST_SUITE_P(RandomMachines, FsmPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace rfsm
