// Unit tests of the circuit breaker state machine (util/breaker.hpp):
// trip on consecutive failures, half-open probe admission, recovery, and
// re-opening on a failed probe.  All transitions are driven by explicit
// time points — no sleeps, no clock reads.
#include <gtest/gtest.h>

#include <chrono>

#include "util/breaker.hpp"

namespace rfsm {
namespace {

using namespace std::chrono_literals;
using State = CircuitBreaker::State;

constexpr auto kT0 = CircuitBreaker::Clock::time_point{};

BreakerOptions options(int threshold = 3,
                       std::chrono::milliseconds open = 1000ms,
                       int probes = 1) {
  BreakerOptions o;
  o.failureThreshold = threshold;
  o.openDuration = open;
  o.halfOpenSuccesses = probes;
  return o;
}

TEST(Breaker, StartsClosedAndAdmitsEverything) {
  CircuitBreaker breaker(options());
  EXPECT_EQ(breaker.state(kT0), State::kClosed);
  for (int k = 0; k < 10; ++k) EXPECT_TRUE(breaker.allowRequest(kT0));
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(Breaker, TripsOnConsecutiveFailuresOnly) {
  CircuitBreaker breaker(options(3));
  breaker.recordFailure(kT0);
  breaker.recordFailure(kT0);
  // A success in between resets the streak: two more failures stay CLOSED.
  breaker.recordSuccess(kT0);
  breaker.recordFailure(kT0);
  breaker.recordFailure(kT0);
  EXPECT_EQ(breaker.state(kT0), State::kClosed);
  EXPECT_TRUE(breaker.allowRequest(kT0));
  // The third consecutive failure trips it.
  breaker.recordFailure(kT0);
  EXPECT_EQ(breaker.state(kT0), State::kOpen);
  EXPECT_FALSE(breaker.allowRequest(kT0));
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(Breaker, OpenRejectsUntilTheCooldownExpires) {
  CircuitBreaker breaker(options(1, 1000ms));
  breaker.recordFailure(kT0);
  EXPECT_FALSE(breaker.allowRequest(kT0 + 999ms));
  // Past the cooldown the breaker goes HALF-OPEN and admits one probe.
  EXPECT_EQ(breaker.state(kT0 + 1000ms), State::kHalfOpen);
  EXPECT_TRUE(breaker.allowRequest(kT0 + 1000ms));
}

TEST(Breaker, HalfOpenAdmitsOneProbeAtATime) {
  CircuitBreaker breaker(options(1, 100ms));
  breaker.recordFailure(kT0);
  const auto probeTime = kT0 + 100ms;
  EXPECT_TRUE(breaker.allowRequest(probeTime));    // the probe
  EXPECT_FALSE(breaker.allowRequest(probeTime));   // concurrent caller
  EXPECT_FALSE(breaker.allowRequest(probeTime + 1h));  // still in flight
  // Once the probe reports, the next request is admitted again.
  breaker.recordSuccess(probeTime + 10ms);
  EXPECT_EQ(breaker.state(probeTime + 10ms), State::kClosed);
  EXPECT_TRUE(breaker.allowRequest(probeTime + 10ms));
}

TEST(Breaker, SuccessfulProbesClose) {
  CircuitBreaker breaker(options(1, 100ms, /*probes=*/2));
  breaker.recordFailure(kT0);
  const auto t = kT0 + 100ms;
  ASSERT_TRUE(breaker.allowRequest(t));
  breaker.recordSuccess(t);
  // One success is not enough when two probes are required.
  EXPECT_EQ(breaker.state(t), State::kHalfOpen);
  ASSERT_TRUE(breaker.allowRequest(t));
  breaker.recordSuccess(t);
  EXPECT_EQ(breaker.state(t), State::kClosed);
}

TEST(Breaker, FailedProbeReopensForAnotherCooldown) {
  CircuitBreaker breaker(options(2, 100ms));
  breaker.recordFailure(kT0);
  breaker.recordFailure(kT0);
  ASSERT_EQ(breaker.state(kT0), State::kOpen);
  const auto probeTime = kT0 + 100ms;
  ASSERT_TRUE(breaker.allowRequest(probeTime));
  breaker.recordFailure(probeTime);
  // Re-opened: rejecting again, and for a fresh full cooldown.
  EXPECT_EQ(breaker.state(probeTime), State::kOpen);
  EXPECT_FALSE(breaker.allowRequest(probeTime + 99ms));
  EXPECT_TRUE(breaker.allowRequest(probeTime + 100ms));
  EXPECT_EQ(breaker.trips(), 2u);
}

TEST(Breaker, TripForcesOpenFromClosed) {
  CircuitBreaker breaker(options(100, 500ms));
  breaker.trip(kT0);  // quorum divergence: no streak required
  EXPECT_EQ(breaker.state(kT0), State::kOpen);
  EXPECT_FALSE(breaker.allowRequest(kT0));
  EXPECT_EQ(breaker.trips(), 1u);
  // Recovery still works through the normal probe path.
  ASSERT_TRUE(breaker.allowRequest(kT0 + 500ms));
  breaker.recordSuccess(kT0 + 500ms);
  EXPECT_EQ(breaker.state(kT0 + 500ms), State::kClosed);
}

TEST(Breaker, AbandonedProbeFreesTheSlotWithoutAVerdict) {
  CircuitBreaker breaker(options(1, 100ms));
  breaker.recordFailure(kT0);
  const auto probeTime = kT0 + 100ms;
  ASSERT_TRUE(breaker.allowRequest(probeTime));
  // The hedge twin answered first and this probe was cancelled: the slot
  // frees, but nothing closes or re-opens.
  breaker.recordAbandoned(probeTime + 10ms);
  EXPECT_EQ(breaker.state(probeTime + 10ms), State::kHalfOpen);
  EXPECT_TRUE(breaker.allowRequest(probeTime + 10ms));
  breaker.recordSuccess(probeTime + 20ms);
  EXPECT_EQ(breaker.state(probeTime + 20ms), State::kClosed);
  // Abandoning in CLOSED is a no-op.
  breaker.recordAbandoned(probeTime + 30ms);
  EXPECT_EQ(breaker.state(probeTime + 30ms), State::kClosed);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(Breaker, StateNamesAreStable) {
  EXPECT_STREQ(toString(State::kClosed), "CLOSED");
  EXPECT_STREQ(toString(State::kOpen), "OPEN");
  EXPECT_STREQ(toString(State::kHalfOpen), "HALF-OPEN");
}

}  // namespace
}  // namespace rfsm
