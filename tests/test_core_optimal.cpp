// Tests for the exact state-space search planner.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/local_search.hpp"
#include "core/optimal.hpp"
#include "core/planners.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "gen/samples.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(OptimalSearch, Example42FindsThePaperThreeCycleProgram) {
  // Sec. 4.3: with a temporary transition the single delta of Example 4.2
  // takes 3 cycles (jump, set, repair) — and no program can do better,
  // because the temp cell gets dirtied and must be repaired.
  const MigrationContext context(example42Source(), example42Target());
  const auto program = planOptimalSearch(context);
  ASSERT_TRUE(program.has_value());
  EXPECT_EQ(program->length(), 3);
  EXPECT_TRUE(validateProgram(context, *program).valid);
}

TEST(OptimalSearch, Example41WithinBoundsAndValid) {
  const MigrationContext context(example41Source(), example41Target());
  const auto program = planOptimalSearch(context);
  ASSERT_TRUE(program.has_value());
  const ValidationResult verdict = validateProgram(context, *program);
  EXPECT_TRUE(verdict.valid) << verdict.reason;
  EXPECT_GE(program->length(), programLowerBound(context));
  EXPECT_LE(program->length(), jsrUpperBound(context));
  // Never worse than the permutation-family exact planner.
  const auto permutationExact = planExact(context);
  ASSERT_TRUE(permutationExact.has_value());
  EXPECT_LE(program->length(), permutationExact->length());
}

TEST(OptimalSearch, IdentityMigrationCanBeFree) {
  const Machine m = onesDetector();
  const MigrationContext context(m, m);
  const auto program = planOptimalSearch(context);
  ASSERT_TRUE(program.has_value());
  // No deltas, machine already in S0 = S0': zero cycles.
  EXPECT_EQ(program->length(), 0);
  EXPECT_TRUE(validateProgram(context, *program).valid);
}

TEST(OptimalSearch, RespectsLimits) {
  Rng rng(3);
  RandomMachineSpec spec;
  spec.stateCount = 10;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 10;
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);
  OptimalSearchOptions options;
  options.maxDeltas = 4;
  EXPECT_FALSE(planOptimalSearch(context, options).has_value());
  options.maxDeltas = 14;
  options.maxNodes = 100;
  EXPECT_FALSE(planOptimalSearch(context, options).has_value());
}

TEST(OptimalSearch, SampleUpgradesAreOptimallyPlanned) {
  for (const SampleMigration& pair : sampleMigrations()) {
    const MigrationContext context(pair.source, pair.target);
    const auto program = planOptimalSearch(context);
    ASSERT_TRUE(program.has_value()) << pair.name;
    EXPECT_TRUE(validateProgram(context, *program).valid) << pair.name;
    EXPECT_LE(program->length(), planGreedy(context).length()) << pair.name;
  }
}

/// Property sweep: the search result validates and lower-bounds every
/// heuristic planner.
class OptimalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimalPropertyTest, LowerBoundsAllHeuristics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 419 + 3);
  RandomMachineSpec spec;
  spec.stateCount = 4 + static_cast<int>(rng.below(5));
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 2 + static_cast<int>(rng.below(5));
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);

  const auto optimal = planOptimalSearch(context);
  ASSERT_TRUE(optimal.has_value());
  const ValidationResult verdict = validateProgram(context, *optimal);
  ASSERT_TRUE(verdict.valid) << verdict.reason;
  EXPECT_GE(optimal->length(), programLowerBound(context));

  EXPECT_LE(optimal->length(), planJsr(context).length());
  EXPECT_LE(optimal->length(), planGreedy(context).length());
  EXPECT_LE(optimal->length(), planTwoOpt(context).program.length());
  EvolutionConfig config;
  config.generations = 40;
  Rng eaRng(7);
  EXPECT_LE(optimal->length(),
            planEvolutionary(context, config, eaRng).program.length());
  if (const auto permutationExact = planExact(context, 7)) {
    EXPECT_LE(optimal->length(), permutationExact->length());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimalPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace rfsm
