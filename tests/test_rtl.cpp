// Tests for the RTL substrate: kernel semantics, primitive components, the
// Fig. 5 datapath (including cycle-accurate replay of the paper's Table 1
// sequence), hardware self-triggering, resource estimation and the VHDL
// emitter.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "core/sequence.hpp"
#include "fsm/simulate.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "gen/samples.hpp"
#include "rtl/components.hpp"
#include "rtl/testbench.hpp"
#include "rtl/datapath.hpp"
#include "rtl/encoding.hpp"
#include "rtl/kernel.hpp"
#include "rtl/resources.hpp"
#include "rtl/vhdl.hpp"
#include "util/rng.hpp"

namespace rfsm::rtl {
namespace {

TEST(Kernel, BitWidthFor) {
  EXPECT_EQ(bitWidthFor(1), 1);
  EXPECT_EQ(bitWidthFor(2), 1);
  EXPECT_EQ(bitWidthFor(3), 2);
  EXPECT_EQ(bitWidthFor(4), 2);
  EXPECT_EQ(bitWidthFor(5), 3);
  EXPECT_EQ(bitWidthFor(1 << 10), 10);
}

TEST(Kernel, WiresMaskToWidth) {
  Circuit c;
  const WireId w = c.addWire(3, "w");
  c.poke(w, 0xFF);
  EXPECT_EQ(c.peek(w), 7u);
  EXPECT_EQ(c.wireWidth(w), 3);
  EXPECT_EQ(c.wireName(w), "w");
}

TEST(Kernel, MuxSelects) {
  Circuit c;
  const WireId sel = c.addWire(1, "sel");
  const WireId a = c.addWire(4, "a");
  const WireId b = c.addWire(4, "b");
  const WireId out = c.addWire(4, "out");
  c.add<Mux2>(sel, a, b, out);
  c.poke(a, 3);
  c.poke(b, 12);
  c.poke(sel, 0);
  c.settle();
  EXPECT_EQ(c.peek(out), 3u);
  c.poke(sel, 1);
  c.settle();
  EXPECT_EQ(c.peek(out), 12u);
}

TEST(Kernel, GatesAndConcat) {
  Circuit c;
  const WireId a = c.addWire(1, "a");
  const WireId b = c.addWire(1, "b");
  const WireId o = c.addWire(1, "o");
  const WireId n = c.addWire(1, "n");
  const WireId hi = c.addWire(2, "hi");
  const WireId lo = c.addWire(3, "lo");
  const WireId cat = c.addWire(5, "cat");
  c.add<Or2>(a, b, o);
  c.add<And2>(a, b, n);
  c.add<Concat>(hi, lo, 3, cat);
  c.poke(a, 1);
  c.poke(b, 0);
  c.poke(hi, 2);
  c.poke(lo, 5);
  c.settle();
  EXPECT_EQ(c.peek(o), 1u);
  EXPECT_EQ(c.peek(n), 0u);
  EXPECT_EQ(c.peek(cat), (2u << 3) | 5u);
}

TEST(Kernel, RegisterCapturesOnEdge) {
  Circuit c;
  const WireId d = c.addWire(4, "d");
  const WireId q = c.addWire(4, "q");
  c.add<Register>(d, q, kNoWire, 9);
  c.settle();
  EXPECT_EQ(c.peek(q), 9u);  // power-on value
  c.poke(d, 5);
  c.step();
  EXPECT_EQ(c.peek(q), 5u);
  EXPECT_EQ(c.cycleCount(), 1);
}

TEST(Kernel, RegisterEnableGates) {
  Circuit c;
  const WireId d = c.addWire(4, "d");
  const WireId q = c.addWire(4, "q");
  const WireId en = c.addWire(1, "en");
  c.add<Register>(d, q, en, 0);
  c.poke(d, 7);
  c.poke(en, 0);
  c.step();
  EXPECT_EQ(c.peek(q), 0u);
  c.poke(en, 1);
  c.step();
  EXPECT_EQ(c.peek(q), 7u);
}

TEST(Kernel, CombinationalLoopDetected) {
  Circuit c;
  const WireId a = c.addWire(1, "a");
  // A self-inverting wire (ring oscillator) has no combinational fixpoint.
  struct Not : Component {
    WireId in, out;
    Not(WireId i, WireId o) : in(i), out(o) {}
    void evaluate(Circuit& circuit) override {
      circuit.poke(out, circuit.peek(in) ^ 1);
    }
  };
  c.add<Not>(a, a);
  EXPECT_THROW(c.settle(), RtlError);
}

TEST(Kernel, RamReadWriteAndWriteFirst) {
  Circuit c;
  const WireId addr = c.addWire(3, "addr");
  const WireId we = c.addWire(1, "we");
  const WireId wdata = c.addWire(8, "wdata");
  const WireId rdata = c.addWire(8, "rdata");
  Ram* ram = c.add<Ram>(3, addr, we, wdata, rdata);
  ram->load(5, 42);
  c.poke(addr, 5);
  c.poke(we, 0);
  c.settle();
  EXPECT_EQ(c.peek(rdata), 42u);
  // WRITE_FIRST: during the write cycle the read port shows the new data.
  c.poke(we, 1);
  c.poke(wdata, 99);
  c.settle();
  EXPECT_EQ(c.peek(rdata), 99u);
  c.step();
  c.poke(we, 0);
  c.settle();
  EXPECT_EQ(c.peek(rdata), 99u);
  EXPECT_EQ(ram->inspect(5), 99u);
  EXPECT_EQ(ram->depth(), 8u);
}

TEST(Encoding, PackAddress) {
  FsmEncoding e;
  e.stateWidth = 3;
  e.inputWidth = 2;
  EXPECT_EQ(e.addressWidth(), 5);
  EXPECT_EQ(e.packAddress(5, 2), (5u << 2) | 2u);
}

// ---------------------------------------------------------------------------
// Datapath.
// ---------------------------------------------------------------------------

TEST(Datapath, NormalOperationMatchesGoldenSimulator) {
  const MigrationContext context(onesDetector(), zerosDetector());
  ReconfigurableFsmDatapath hw(context);
  Simulator golden(onesDetector());
  Rng rng(3);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const int bit = rng.chance(0.5) ? 1 : 0;
    const SymbolId input = context.inputs().at(bit ? "1" : "0");
    const std::uint64_t out = hw.clock(input);
    const SymbolId ref = golden.step(
        onesDetector().inputs().at(bit ? "1" : "0"));
    EXPECT_EQ(hw.outputSymbol(out),
              context.outputs().at(onesDetector().outputs().name(ref)));
    EXPECT_EQ(hw.currentState(), golden.state());  // same ids: M is prefix
  }
}

TEST(Datapath, ExternalResetForcesResetVector) {
  const MigrationContext context(onesDetector(), zerosDetector());
  ReconfigurableFsmDatapath hw(context);
  hw.clock(context.inputs().at("1"));
  EXPECT_EQ(context.states().name(hw.currentState()), "S1");
  hw.clock(context.inputs().at("1"), /*externalReset=*/true);
  EXPECT_EQ(hw.currentState(), context.targetReset());
}

/// Replays the paper's Table 1 on the datapath and checks the RAM contents
/// and subsequent behaviour equal the zeros detector.
TEST(Datapath, Table1SequenceReconfiguresHardware) {
  const MigrationContext context(onesDetector(), zerosDetector());
  ReconfigurationProgram z;
  const SymbolId in0 = context.inputs().at("0");
  const SymbolId in1 = context.inputs().at("1");
  const SymbolId s0 = context.states().at("S0");
  const SymbolId s1 = context.states().at("S1");
  const SymbolId o0 = context.outputs().at("0");
  const SymbolId o1 = context.outputs().at("1");
  z.steps.push_back(ReconfigStep::rewrite(in1, s1, o0));
  z.steps.push_back(ReconfigStep::rewrite(in1, s1, o0));
  z.steps.push_back(ReconfigStep::rewrite(in0, s0, o0));
  z.steps.push_back(ReconfigStep::rewrite(in0, s0, o1));

  ReconfigurableFsmDatapath hw(context);
  hw.loadSequence(sequenceFromProgram(z));
  hw.startReconfiguration();
  hw.clock(in0);  // start pulse consumed; machine does one normal cycle
  ASSERT_TRUE(hw.reconfiguring());
  for (int k = 0; k < 4; ++k) hw.clock(in0);
  EXPECT_FALSE(hw.reconfiguring());

  // RAM contents now equal the model after applying the program.
  MutableMachine model = replayProgram(context, z);
  for (SymbolId s = 0; s < context.states().size(); ++s)
    for (SymbolId i = 0; i < context.inputs().size(); ++i) {
      ASSERT_TRUE(model.isSpecified(i, s));
      EXPECT_EQ(hw.framEntry(i, s), model.next(i, s));
      EXPECT_EQ(hw.gramEntry(i, s), model.output(i, s));
    }

  // Behaviour check: drive the hardware against the zeros detector.
  hw.clock(in0, /*externalReset=*/true);
  Simulator golden(zerosDetector());
  Rng rng(9);
  for (int cycle = 0; cycle < 100; ++cycle) {
    const int bit = rng.chance(0.5) ? 1 : 0;
    const std::uint64_t out = hw.clock(context.inputs().at(bit ? "1" : "0"));
    const SymbolId ref =
        golden.step(zerosDetector().inputs().at(bit ? "1" : "0"));
    EXPECT_EQ(context.outputs().name(hw.outputSymbol(out)),
              zerosDetector().outputs().name(ref));
  }
}

TEST(Datapath, SelfTriggerStartsSequenceAutonomously) {
  const MigrationContext context(onesDetector(), zerosDetector());
  ReconfigurableFsmDatapath hw(context);
  const ReconfigurationProgram z = planJsr(context);
  hw.loadSequence(sequenceFromProgram(z));
  // Arm: reconfigure when the machine sits in S1 and sees a 0.
  hw.armSelfTrigger(context.states().at("S1"), context.inputs().at("0"));
  const SymbolId in0 = context.inputs().at("0");
  const SymbolId in1 = context.inputs().at("1");
  hw.clock(in1);  // -> S1
  EXPECT_FALSE(hw.reconfiguring());
  hw.clock(in0);  // trigger observed at this edge
  ASSERT_TRUE(hw.reconfiguring());
  for (int k = 0; k < z.length(); ++k) hw.clock(in0);
  EXPECT_FALSE(hw.reconfiguring());
  // Migration completed: hardware realizes the zeros detector.
  MutableMachine model = replayProgram(context, z);
  for (SymbolId s = 0; s < context.states().size(); ++s)
    for (SymbolId i = 0; i < context.inputs().size(); ++i)
      if (model.isSpecified(i, s)) {
        EXPECT_EQ(hw.framEntry(i, s), model.next(i, s));
      }
}

/// Co-simulation sweep: random migrations, planner programs, cycle-accurate
/// agreement between the datapath and the MutableMachine model.
class CosimTest : public ::testing::TestWithParam<int> {};

TEST_P(CosimTest, HardwareMatchesModelAfterMigration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 11);
  RandomMachineSpec spec;
  spec.stateCount = 3 + static_cast<int>(rng.below(6));
  spec.inputCount = 2;
  spec.outputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 2 + static_cast<int>(rng.below(5));
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);
  const ReconfigurationProgram z = planGreedy(context);
  ASSERT_TRUE(validateProgram(context, z).valid);

  ReconfigurableFsmDatapath hw(context);
  hw.loadSequence(sequenceFromProgram(z));
  hw.startReconfiguration();
  hw.clock(0);  // normal cycle that consumes the start pulse
  for (int k = 0; k < z.length(); ++k) {
    ASSERT_TRUE(hw.reconfiguring());
    hw.clock(0);
  }
  ASSERT_FALSE(hw.reconfiguring());

  const MutableMachine model = replayProgram(context, z);
  EXPECT_EQ(hw.currentState(), model.state());
  for (SymbolId s = 0; s < context.states().size(); ++s)
    for (SymbolId i = 0; i < context.inputs().size(); ++i)
      if (model.isSpecified(i, s)) {
        EXPECT_EQ(hw.framEntry(i, s), model.next(i, s));
        EXPECT_EQ(hw.gramEntry(i, s), model.output(i, s));
      }
}

INSTANTIATE_TEST_SUITE_P(RandomMigrations, CosimTest, ::testing::Range(0, 12));

/// Stronger property: cycle-by-cycle lockstep between datapath and model
/// through normal traffic, the whole reconfiguration, and more traffic.
class LockstepTest : public ::testing::TestWithParam<int> {};

TEST_P(LockstepTest, HardwareAndModelAgreeEveryCycle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 733 + 29);
  RandomMachineSpec spec;
  spec.stateCount = 3 + static_cast<int>(rng.below(5));
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 2 + static_cast<int>(rng.below(4));
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);
  const ReconfigurationProgram z = planGreedy(context);
  ASSERT_TRUE(validateProgram(context, z).valid);

  ReconfigurableFsmDatapath hw(context);
  hw.loadSequence(sequenceFromProgram(z));
  MutableMachine model(context);

  auto randomInput = [&]() {
    // Stay on cells the model has specified (the hardware would read RAM
    // garbage on others, which the abstract model rejects by design).
    for (;;) {
      const auto i = static_cast<SymbolId>(rng.below(
          static_cast<std::uint64_t>(context.inputs().size())));
      if (model.isSpecified(i, model.state())) return i;
    }
  };

  // Phase 1: normal traffic in lockstep.
  for (int cycle = 0; cycle < 20; ++cycle) {
    const SymbolId input = randomInput();
    const std::uint64_t hwOut = hw.clock(input);
    const SymbolId modelOut = model.stepNormal(input);
    ASSERT_EQ(hw.outputSymbol(hwOut), modelOut) << "cycle " << cycle;
    ASSERT_EQ(hw.currentState(), model.state()) << "cycle " << cycle;
  }

  // Phase 2: reconfiguration in lockstep.  The start-pulse cycle is still
  // a normal cycle on both sides.
  hw.startReconfiguration();
  {
    const SymbolId input = randomInput();
    const std::uint64_t hwOut = hw.clock(input);
    ASSERT_EQ(hw.outputSymbol(hwOut), model.stepNormal(input));
  }
  for (std::size_t k = 0; k < z.steps.size(); ++k) {
    ASSERT_TRUE(hw.reconfiguring()) << "step " << k;
    const std::uint64_t hwOut = hw.clock(0);
    const SymbolId modelOut = model.applyStep(z.steps[k]);
    if (z.steps[k].kind != StepKind::kReset) {
      ASSERT_EQ(hw.outputSymbol(hwOut), modelOut) << "step " << k;
    }
    ASSERT_EQ(hw.currentState(), model.state()) << "step " << k;
  }
  ASSERT_FALSE(hw.reconfiguring());
  ASSERT_TRUE(model.matchesTarget());

  // Phase 3: post-migration traffic in lockstep.
  for (int cycle = 0; cycle < 20; ++cycle) {
    const SymbolId input = randomInput();
    const std::uint64_t hwOut = hw.clock(input);
    ASSERT_EQ(hw.outputSymbol(hwOut), model.stepNormal(input));
    ASSERT_EQ(hw.currentState(), model.state());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTraffic, LockstepTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Resources and VHDL.
// ---------------------------------------------------------------------------

TEST(Resources, SmallMachineFitsXcv300) {
  const MigrationContext context(onesDetector(), zerosDetector());
  const auto seq = sequenceFromProgram(planJsr(context));
  const ResourceEstimate e = estimateResources(context, seq);
  EXPECT_TRUE(e.fitsXcv300);
  EXPECT_GE(e.blockRams, 2);  // one each for F-RAM and G-RAM at minimum
  EXPECT_GT(e.luts, 0);
  EXPECT_GT(e.flipFlops, 0);
  const std::string report = describeEstimate(e);
  EXPECT_NE(report.find("fits XCV300: yes"), std::string::npos);
}

TEST(Resources, GrowWithMachineSize) {
  Rng rng(5);
  RandomMachineSpec small;
  small.stateCount = 4;
  RandomMachineSpec large;
  large.stateCount = 200;
  large.inputCount = 8;
  const Machine ms = randomMachine(small, rng);
  const Machine ml = randomMachine(large, rng);
  const MigrationContext cs(ms, ms);
  const MigrationContext cl(ml, ml);
  const ReconfigurationSequence empty;
  EXPECT_LT(estimateResources(cs, empty).framBits,
            estimateResources(cl, empty).framBits);
}

TEST(Vhdl, EmitsWellFormedEntity) {
  const MigrationContext context(onesDetector(), zerosDetector());
  const auto seq = sequenceFromProgram(planJsr(context));
  VhdlOptions options;
  options.entityName = "ones_to_zeros";
  const std::string vhdl = generateVhdl(context, seq, options);
  EXPECT_NE(vhdl.find("ENTITY ones_to_zeros IS"), std::string::npos);
  EXPECT_NE(vhdl.find("ARCHITECTURE rtl OF ones_to_zeros IS"),
            std::string::npos);
  EXPECT_NE(vhdl.find("f_ram"), std::string::npos);
  EXPECT_NE(vhdl.find("g_ram"), std::string::npos);
  EXPECT_NE(vhdl.find("seq_rom"), std::string::npos);
  EXPECT_NE(vhdl.find("rising_edge(clk)"), std::string::npos);
  EXPECT_NE(vhdl.find("END rtl;"), std::string::npos);
  // One ROM row per sequence step.
  EXPECT_NE(vhdl.find("ARRAY (0 TO " + std::to_string(seq.length() - 1) +
                      ")"),
            std::string::npos);
  // Balanced PROCESS block.
  EXPECT_NE(vhdl.find("PROCESS (clk)"), std::string::npos);
  EXPECT_NE(vhdl.find("END PROCESS"), std::string::npos);
}

TEST(Vhdl, EncodingCommentsOptional) {
  const MigrationContext context(onesDetector(), zerosDetector());
  const auto seq = sequenceFromProgram(planJsr(context));
  VhdlOptions options;
  options.emitEncodingComments = false;
  const std::string vhdl = generateVhdl(context, seq, options);
  EXPECT_EQ(vhdl.find("-- state encoding"), std::string::npos);
  EXPECT_EQ(vhdl.rfind("LIBRARY ieee;", 0), 0u);  // starts at the library
}

TEST(Vhdl, GeneratesForEverySampleMigration) {
  // Broad smoke: entity + testbench generation succeed for all bundled
  // revision pairs and contain the structural anchors.
  for (const SampleMigration& pair : sampleMigrations()) {
    const MigrationContext context(pair.source, pair.target);
    const auto sequence = sequenceFromProgram(planJsr(context));
    VhdlOptions options;
    options.entityName = pair.name + "_rfsm";
    const std::string vhdl = generateVhdl(context, sequence, options);
    EXPECT_NE(vhdl.find("ENTITY " + pair.name + "_rfsm IS"),
              std::string::npos)
        << pair.name;
    EXPECT_NE(vhdl.find("END rtl;"), std::string::npos) << pair.name;
    TestbenchOptions tbOptions;
    tbOptions.entityName = pair.name + "_rfsm";
    tbOptions.testbenchName = pair.name + "_tb";
    const std::string tb = generateTestbench(
        context, sequence, {context.liftTargetInput(0)}, tbOptions);
    EXPECT_NE(tb.find("ENTITY " + pair.name + "_tb IS"), std::string::npos)
        << pair.name;
  }
}

TEST(Vhdl, RamInitializationReflectsSourceMachine) {
  const MigrationContext context(onesDetector(), zerosDetector());
  const auto seq = sequenceFromProgram(planJsr(context));
  const std::string vhdl = generateVhdl(context, seq);
  // Cell (i=1, s=S0) holds next state S1 (encoded 1): address 0b01 = 1.
  EXPECT_NE(vhdl.find("1 => \"1\""), std::string::npos);
}

}  // namespace
}  // namespace rfsm::rtl
