// Tests for the migration model: superset alphabets, delta transitions
// (Def. 4.2, validated against the paper's Example 4.1), MutableMachine
// cycle semantics, the Table 1 reconfiguration sequence of Example 2.1, and
// program <-> sequence round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/apply.hpp"
#include "core/migration.hpp"
#include "core/mutable_machine.hpp"
#include "core/program.hpp"
#include "core/sequence.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/simulate.hpp"
#include "gen/families.hpp"

namespace rfsm {
namespace {

/// Renders a transition via context symbol names for set comparisons.
std::string key(const MigrationContext& c, const Transition& t) {
  return c.inputs().name(t.input) + "," + c.states().name(t.from) + "," +
         c.states().name(t.to) + "," + c.outputs().name(t.output);
}

TEST(MigrationContext, SupersetAlphabetsOfExample41) {
  const MigrationContext context(example41Source(), example41Target());
  EXPECT_EQ(context.states().size(), 4);  // S0..S3
  EXPECT_EQ(context.inputs().size(), 2);
  EXPECT_EQ(context.outputs().size(), 2);
  EXPECT_TRUE(context.inSourceStates(context.states().at("S2")));
  EXPECT_FALSE(context.inSourceStates(context.states().at("S3")));
  EXPECT_TRUE(context.inTargetStates(context.states().at("S3")));
  EXPECT_EQ(context.sourceReset(), context.states().at("S0"));
  EXPECT_EQ(context.targetReset(), context.states().at("S0"));
}

TEST(MigrationContext, DeltaTransitionsMatchPaperExample41) {
  // Example 4.1: Td = {(0,S1,S0,0), (1,S2,S3,0), (1,S3,S3,1), (0,S3,S0,0)}.
  const MigrationContext context(example41Source(), example41Target());
  std::set<std::string> got;
  for (const Transition& t : context.deltaTransitions())
    got.insert(key(context, t));
  const std::set<std::string> expected{"0,S1,S0,0", "1,S2,S3,0", "1,S3,S3,1",
                                       "0,S3,S0,0"};
  EXPECT_EQ(got, expected);
  EXPECT_EQ(context.deltaCount(), 4);
}

TEST(MigrationContext, DeltaTransitionsOfExample42IsSingleton) {
  const MigrationContext context(example42Source(), example42Target());
  ASSERT_EQ(context.deltaCount(), 1);
  EXPECT_EQ(key(context, context.deltaTransitions()[0]), "0,S3,S0,0");
}

TEST(MigrationContext, IdenticalMachinesHaveNoDeltas) {
  const MigrationContext context(onesDetector(), onesDetector());
  EXPECT_EQ(context.deltaCount(), 0);
}

TEST(MigrationContext, OnesToZerosHasTwoDeltas) {
  // Table 1 rewrites four cells but only two change value: G(1,S1) 1->0 and
  // G(0,S0) 0->1.
  const MigrationContext context(onesDetector(), zerosDetector());
  std::set<std::string> got;
  for (const Transition& t : context.deltaTransitions())
    got.insert(key(context, t));
  EXPECT_EQ(got, (std::set<std::string>{"1,S1,S1,0", "0,S0,S0,1"}));
}

TEST(MigrationContext, TargetTransitionsCoverWholeDomain) {
  const MigrationContext context(example41Source(), example41Target());
  EXPECT_EQ(context.targetTransitions().size(),
            static_cast<std::size_t>(4 * 2));
}

TEST(MigrationContext, SourceTablesLiftedCorrectly) {
  const Machine m = example41Source();
  const MigrationContext context(m, example41Target());
  for (SymbolId s = 0; s < m.stateCount(); ++s)
    for (SymbolId i = 0; i < m.inputCount(); ++i) {
      const SymbolId ls = context.liftSourceState(s);
      const SymbolId li = context.liftSourceInput(i);
      EXPECT_EQ(context.sourceNext(li, ls),
                context.liftSourceState(m.next(i, s)));
    }
}

TEST(MutableMachine, StartsAsSourceInResetState) {
  const MigrationContext context(example41Source(), example41Target());
  const MutableMachine machine(context);
  EXPECT_EQ(machine.state(), context.sourceReset());
  // Source cells specified, new-state cells not.
  EXPECT_TRUE(machine.isSpecified(context.inputs().at("0"),
                                  context.states().at("S1")));
  EXPECT_FALSE(machine.isSpecified(context.inputs().at("0"),
                                   context.states().at("S3")));
}

TEST(MutableMachine, TraverseFollowsTables) {
  const MigrationContext context(onesDetector(), zerosDetector());
  MutableMachine machine(context);
  const SymbolId out =
      machine.applyStep(ReconfigStep::traverse(context.inputs().at("1")));
  EXPECT_EQ(context.outputs().name(out), "0");
  EXPECT_EQ(context.states().name(machine.state()), "S1");
}

TEST(MutableMachine, TraverseUnspecifiedCellThrows) {
  const MigrationContext context(example41Source(), example41Target());
  MutableMachine machine(context);
  // Jump to S3 via a rewrite, then try to traverse its unwritten 0-cell.
  machine.applyStep(ReconfigStep::rewrite(context.inputs().at("1"),
                                          context.states().at("S3"),
                                          context.outputs().at("0")));
  EXPECT_EQ(context.states().name(machine.state()), "S3");
  EXPECT_THROW(
      machine.applyStep(ReconfigStep::traverse(context.inputs().at("0"))),
      MigrationError);
}

TEST(MutableMachine, RewriteTakesNewTransitionSameCycle) {
  const MigrationContext context(example42Source(), example42Target());
  MutableMachine machine(context);
  // Temporary transition (0, S0) -> S3 (Sec. 4.3, Fig. 8).
  const SymbolId out = machine.applyStep(
      ReconfigStep::rewrite(context.inputs().at("0"),
                            context.states().at("S3"),
                            context.outputs().at("0"), true));
  EXPECT_EQ(context.states().name(machine.state()), "S3");
  EXPECT_EQ(context.outputs().name(out), "0");
  // The cell now holds the temporary value.
  EXPECT_EQ(machine.next(context.inputs().at("0"), context.states().at("S0")),
            context.states().at("S3"));
}

TEST(MutableMachine, ResetForcesTerminalState) {
  const MigrationContext context(example42Source(), example42Target());
  MutableMachine machine(context);
  machine.applyStep(ReconfigStep::traverse(context.inputs().at("1")));
  EXPECT_NE(machine.state(), context.targetReset());
  machine.applyStep(ReconfigStep::reset());
  EXPECT_EQ(machine.state(), context.targetReset());
}

TEST(MutableMachine, EdgeInputAndDistances) {
  const MigrationContext context(example42Source(), example42Target());
  const MutableMachine machine(context);
  const SymbolId s0 = context.states().at("S0");
  const SymbolId s1 = context.states().at("S1");
  const SymbolId s3 = context.states().at("S3");
  ASSERT_TRUE(machine.edgeInput(s0, s1).has_value());
  EXPECT_EQ(context.inputs().name(*machine.edgeInput(s0, s1)), "1");
  EXPECT_FALSE(machine.edgeInput(s0, s3).has_value());
  const auto dist = machine.distancesFrom(s0);
  EXPECT_EQ(dist[static_cast<std::size_t>(s3)], 3);
}

TEST(MutableMachine, PathInputsReconstructsRing) {
  const MigrationContext context(example42Source(), example42Target());
  const MutableMachine machine(context);
  const auto path = machine.pathInputs(context.states().at("S0"),
                                       context.states().at("S3"));
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 3u);
  for (const SymbolId i : *path) EXPECT_EQ(context.inputs().name(i), "1");
  const auto self = machine.pathInputs(context.states().at("S2"),
                                       context.states().at("S2"));
  ASSERT_TRUE(self.has_value());
  EXPECT_TRUE(self->empty());
}

// ---------------------------------------------------------------------------
// Example 2.1 / Table 1: the canonical ones -> zeros reconfiguration.
// ---------------------------------------------------------------------------

/// Builds the paper's Table 1 program: four rewrite cycles r1..r4.
ReconfigurationProgram table1Program(const MigrationContext& c) {
  const SymbolId in0 = c.inputs().at("0");
  const SymbolId in1 = c.inputs().at("1");
  const SymbolId s0 = c.states().at("S0");
  const SymbolId s1 = c.states().at("S1");
  const SymbolId o0 = c.outputs().at("0");
  const SymbolId o1 = c.outputs().at("1");
  ReconfigurationProgram z;
  z.steps.push_back(ReconfigStep::rewrite(in1, s1, o0));  // r1: (1,S0):=S1/0
  z.steps.push_back(ReconfigStep::rewrite(in1, s1, o0));  // r2: (1,S1):=S1/0
  z.steps.push_back(ReconfigStep::rewrite(in0, s0, o0));  // r3: (0,S1):=S0/0
  z.steps.push_back(ReconfigStep::rewrite(in0, s0, o1));  // r4: (0,S0):=S0/1
  return z;
}

TEST(Table1, FourCycleSequenceReconfiguresOnesIntoZeros) {
  const MigrationContext context(onesDetector(), zerosDetector());
  const ReconfigurationProgram z = table1Program(context);
  EXPECT_EQ(z.length(), 4);  // "a reconfiguration sequence taking four
                             // clock cycles" (Fig. 4)
  const ValidationResult result = validateProgram(context, z);
  EXPECT_TRUE(result.valid) << result.reason;
  // The realized machine behaves like the zeros detector.
  MutableMachine machine = replayProgram(context, z);
  EXPECT_TRUE(machine.matchesTarget());
}

TEST(Table1, IntermediateStatesFollowFig4) {
  const MigrationContext context(onesDetector(), zerosDetector());
  MutableMachine machine(context);
  const ReconfigurationProgram z = table1Program(context);
  // S0 -r1-> S1 -r2-> S1 -r3-> S0 -r4-> S0.
  const char* expected[] = {"S1", "S1", "S0", "S0"};
  for (int k = 0; k < 4; ++k) {
    machine.applyStep(z.steps[static_cast<std::size_t>(k)]);
    EXPECT_EQ(context.states().name(machine.state()), expected[k])
        << "after r" << (k + 1);
  }
}

TEST(Sequence, ProgramSequenceRoundTrip) {
  const MigrationContext context(onesDetector(), zerosDetector());
  ReconfigurationProgram z = table1Program(context);
  z.steps.push_back(ReconfigStep::reset());
  z.steps.push_back(ReconfigStep::traverse(context.inputs().at("0")));
  const ReconfigurationSequence seq = sequenceFromProgram(z);
  EXPECT_EQ(seq.length(), z.length());
  const ReconfigurationProgram back = programFromSequence(seq);
  ASSERT_EQ(back.steps.size(), z.steps.size());
  for (std::size_t k = 0; k < z.steps.size(); ++k) {
    EXPECT_EQ(back.steps[k].kind, z.steps[k].kind);
    EXPECT_EQ(back.steps[k].input, z.steps[k].input);
    EXPECT_EQ(back.steps[k].nextState, z.steps[k].nextState);
    EXPECT_EQ(back.steps[k].output, z.steps[k].output);
  }
}

TEST(Sequence, MarkdownRenderingMatchesTable1Shape) {
  const MigrationContext context(onesDetector(), zerosDetector());
  const std::string md =
      sequenceToMarkdown(context, sequenceFromProgram(table1Program(context)));
  EXPECT_NE(md.find("H_f(r)"), std::string::npos);
  EXPECT_NE(md.find("| r1 "), std::string::npos);
  EXPECT_NE(md.find("| r4 "), std::string::npos);
  EXPECT_NE(md.find(" S1 "), std::string::npos);
}

TEST(Program, CountersDistinguishStepKinds) {
  const MigrationContext context(onesDetector(), zerosDetector());
  ReconfigurationProgram z = table1Program(context);
  z.steps.push_back(ReconfigStep::reset());
  z.steps.push_back(ReconfigStep::traverse(0));
  z.steps.push_back(ReconfigStep::rewrite(0, 0, 0, true));
  EXPECT_EQ(z.resetCount(), 1);
  EXPECT_EQ(z.traverseCount(), 1);
  EXPECT_EQ(z.rewriteCount(), 5);
  EXPECT_EQ(z.temporaryCount(), 1);
}

TEST(Validate, RejectsIncompletePrograms) {
  const MigrationContext context(onesDetector(), zerosDetector());
  ReconfigurationProgram z = table1Program(context);
  z.steps.pop_back();  // drop r4: cell (0, S0) keeps its old output
  const ValidationResult result = validateProgram(context, z);
  EXPECT_FALSE(result.valid);
  EXPECT_NE(result.reason.find("M'"), std::string::npos);
}

TEST(Validate, RejectsWrongTerminalState) {
  const MigrationContext context(onesDetector(), zerosDetector());
  ReconfigurationProgram z = table1Program(context);
  // Extra traverse under input 1 leaves the machine in S1, not S0.
  z.steps.push_back(ReconfigStep::traverse(context.inputs().at("1")));
  const ValidationResult result = validateProgram(context, z);
  EXPECT_FALSE(result.valid);
  EXPECT_NE(result.reason.find("terminates"), std::string::npos);
}

TEST(Validate, RejectsUnexecutablePrograms) {
  const MigrationContext context(example41Source(), example41Target());
  ReconfigurationProgram z;
  // Jump to the fresh state S3, then traverse its unwritten 0-cell.
  z.steps.push_back(ReconfigStep::rewrite(context.inputs().at("1"),
                                          context.states().at("S3"),
                                          context.outputs().at("0")));
  z.steps.push_back(ReconfigStep::traverse(context.inputs().at("0")));
  const ValidationResult result = validateProgram(context, z);
  EXPECT_FALSE(result.valid);
  EXPECT_NE(result.reason.find("not executable"), std::string::npos);
  EXPECT_EQ(result.cyclesExecuted, 1);
}

TEST(Validate, ZerosDetectorBehavesAsReconfigured) {
  // End-to-end: after Table 1, running the realized machine on a bit
  // stream matches zerosDetector() exactly (behavioural equivalence).
  EXPECT_TRUE(areEquivalent(zerosDetector(), zerosDetector()));
  const MigrationContext context(onesDetector(), zerosDetector());
  MutableMachine machine = replayProgram(context, table1Program(context));
  // Drive both from reset over all words of length 6.
  const SymbolId in[2] = {context.inputs().at("0"), context.inputs().at("1")};
  const Machine target = zerosDetector();
  for (int word = 0; word < (1 << 6); ++word) {
    MutableMachine hw = machine;  // copy retains RAM; reset the state
    hw.applyStep(ReconfigStep::reset());
    Simulator golden(target);
    for (int bit = 0; bit < 6; ++bit) {
      const int b = (word >> bit) & 1;
      const SymbolId hwOut = hw.stepNormal(in[b]);
      const SymbolId refOut =
          golden.step(target.inputs().at(b ? "1" : "0"));
      EXPECT_EQ(context.outputs().name(hwOut), target.outputs().name(refOut));
    }
  }
}

}  // namespace
}  // namespace rfsm
