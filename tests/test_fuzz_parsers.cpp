// Fuzz-style robustness tests: the KISS2, JSON, reconfiguration-program and
// journal parsers must never crash or corrupt state on malformed input —
// every failure is a typed error (FsmError, ProgramParseError,
// JournalError), never a ContractError or a raw crash.
#include <gtest/gtest.h>

#include "core/journal.hpp"
#include "core/jsr.hpp"
#include "core/program.hpp"
#include "fsm/builder.hpp"
#include "fsm/kiss.hpp"
#include "fsm/serialize.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

/// Random printable garbage.
std::string garbage(Rng& rng, int maxLength) {
  const int length = static_cast<int>(rng.below(
      static_cast<std::uint64_t>(maxLength) + 1));
  std::string text;
  for (int k = 0; k < length; ++k)
    text += static_cast<char>(32 + rng.below(95));
  return text;
}

/// Mutates a valid document: deletes, duplicates or flips random bytes.
std::string corrupt(const std::string& valid, Rng& rng) {
  std::string text = valid;
  const int edits = 1 + static_cast<int>(rng.below(5));
  for (int e = 0; e < edits && !text.empty(); ++e) {
    const std::size_t pos =
        static_cast<std::size_t>(rng.below(text.size()));
    switch (rng.below(3)) {
      case 0:
        text.erase(pos, 1);
        break;
      case 1:
        text.insert(pos, 1, static_cast<char>(32 + rng.below(95)));
        break;
      default:
        text[pos] = static_cast<char>(32 + rng.below(95));
    }
  }
  return text;
}

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, Kiss2NeverCrashesOnGarbage) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 1);
  for (int round = 0; round < 50; ++round) {
    const std::string text = garbage(rng, 200);
    try {
      const Kiss2Document doc = parseKiss2(text);
      // If it parsed, lifting must also either work or throw FsmError.
      try {
        (void)machineFromKiss2(doc, "fuzz");
      } catch (const FsmError&) {
      }
    } catch (const FsmError&) {
      // expected for malformed input
    }
  }
}

TEST_P(ParserFuzzTest, Kiss2SurvivesCorruptedValidDocuments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2003 + 7);
  const std::string valid =
      ".i 2\n.o 1\n.r S0\n"
      "00 S0 S1 0\n01 S0 S0 1\n1- S0 S1 1\n"
      "-- S1 S0 0\n.e\n";
  // Sanity: the uncorrupted document parses.
  EXPECT_NO_THROW(parseKiss2(valid));
  for (int round = 0; round < 50; ++round) {
    const std::string text = corrupt(valid, rng);
    try {
      (void)machineFromKiss2(parseKiss2(text), "fuzz");
    } catch (const FsmError&) {
    } catch (const ContractError&) {
      FAIL() << "internal contract violated on corrupted input";
    }
  }
}

TEST_P(ParserFuzzTest, JsonNeverCrashesOnGarbage) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 3001 + 3);
  for (int round = 0; round < 50; ++round) {
    const std::string text = garbage(rng, 200);
    try {
      (void)machineFromJson(text);
    } catch (const FsmError&) {
    }
  }
}

TEST_P(ParserFuzzTest, JsonSurvivesCorruptedValidDocuments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 4001 + 9);
  RandomMachineSpec spec;
  spec.stateCount = 4;
  const std::string valid = toJson(randomMachine(spec, rng));
  for (int round = 0; round < 50; ++round) {
    const std::string text = corrupt(valid, rng);
    try {
      (void)machineFromJson(text);
    } catch (const FsmError&) {
    } catch (const ContractError&) {
      FAIL() << "internal contract violated on corrupted input";
    }
  }
}

TEST_P(ParserFuzzTest, ProgramParserNeverCrashesOnGarbage) {
  const MigrationContext context(example41Source(), example41Target());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 5003 + 11);
  for (int round = 0; round < 50; ++round) {
    const std::string text = garbage(rng, 200);
    try {
      (void)programFromText(context, text);
    } catch (const ProgramParseError&) {
      // the only acceptable failure mode
    }
  }
}

TEST_P(ParserFuzzTest, ProgramParserSurvivesCorruptedValidPrograms) {
  const MigrationContext context(example41Source(), example41Target());
  const std::string valid = programToText(context, planJsr(context));
  EXPECT_NO_THROW(programFromText(context, valid));
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6007 + 5);
  for (int round = 0; round < 50; ++round) {
    const std::string text = corrupt(valid, rng);
    try {
      (void)programFromText(context, text);
    } catch (const ProgramParseError&) {
    } catch (const ContractError&) {
      FAIL() << "internal contract violated on corrupted program";
    }
  }
}

TEST(ProgramParserAdversarial, MalformedDocumentsThrowTypedErrors) {
  const MigrationContext context(example41Source(), example41Target());
  const std::string stepLines = "reset\nrewrite 0 S1 0\nreset\n";
  const std::vector<std::string> attacks = {
      "",                                         // empty file
      "rfsm-program v1\n",                        // truncated after header
      "rfsm-program v2\nsteps 0\nend\n",          // wrong version
      "rfsm-program v1\nsteps 3\n" + stepLines,   // missing end marker
      "rfsm-program v1\nsteps 99\n" + stepLines + "end\n",   // count too big
      "rfsm-program v1\nsteps 1\n" + stepLines + "end\n",    // count too small
      "rfsm-program v1\nsteps -7\nend\n",                    // negative count
      "rfsm-program v1\nsteps 999999999999999999999\nend\n", // overflow
      "rfsm-program v1\nsteps 1\nrewrite 0 NOPE 0\nend\n",   // unknown state
      "rfsm-program v1\nsteps 1\nrewrite 9 S1 0\nend\n",     // unknown input
      "rfsm-program v1\nsteps 1\nrewrite 0 S1\nend\n",       // missing field
      "rfsm-program v1\nsteps 1\nteleport 0\nend\n",         // unknown step
  };
  for (const std::string& text : attacks) {
    EXPECT_THROW((void)programFromText(context, text), ProgramParseError)
        << "attack: " << text;
  }
}

// ---------------------------------------------------------------------------
// Journal parser: a journal is a program plus commit records, so it must be
// exactly as robust, and additionally tolerate a torn trailing record
// (power loss mid-write) without raising.

TEST(JournalFuzz, ByteTruncationSweepNeverViolatesContracts) {
  const MigrationContext context(example41Source(), example41Target());
  ProgramJournal journal;
  journal.begin(planJsr(context));
  journal.commit(0);
  journal.commit(1);
  const std::string full = journal.serialize(context);
  for (std::size_t keep = 0; keep <= full.size(); ++keep) {
    const std::string text = full.substr(0, keep);
    try {
      const ProgramJournal parsed = ProgramJournal::parse(context, text);
      // Parsed journals must be internally consistent.
      EXPECT_LE(parsed.committedSteps(), parsed.program().length());
    } catch (const JournalError&) {
    } catch (const ProgramParseError&) {
    } catch (const ContractError&) {
      FAIL() << "contract violated at truncation length " << keep;
    }
  }
}

TEST(JournalFuzz, CorruptedJournalsThrowTypedErrorsOnly) {
  const MigrationContext context(example41Source(), example41Target());
  ProgramJournal journal;
  journal.begin(planJsr(context));
  for (int k = 0; k < journal.program().length(); ++k) journal.commit(k);
  const std::string valid = journal.serialize(context);
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    const std::string text = corrupt(valid, rng);
    try {
      (void)ProgramJournal::parse(context, text);
    } catch (const JournalError&) {
    } catch (const ProgramParseError&) {
    } catch (const ContractError&) {
      FAIL() << "internal contract violated on corrupted journal";
    }
  }
}

TEST(JournalFuzz, AdversarialCommitRecordsRejected) {
  const MigrationContext context(example41Source(), example41Target());
  ProgramJournal journal;
  journal.begin(planJsr(context));
  const std::string base = journal.serialize(context);
  // A forged commit for a step the program does not have, plus a trailing
  // line so it is not excused as a torn tail.
  EXPECT_THROW(ProgramJournal::parse(
                   context, base + "commit 99 00000000\ncommit 100 0\n"),
               JournalError);
  // Out-of-order commits.
  EXPECT_THROW(ProgramJournal::parse(
                   context, base + "commit 1 00000000\ncommit 0 0\n"),
               JournalError);
  // A wrong checksum anywhere but the tail is hard damage.
  EXPECT_THROW(ProgramJournal::parse(
                   context, base + "commit 0 deadbeef\ndone\n"),
               JournalError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace rfsm
