// Fuzz-style robustness tests: the KISS2 and JSON parsers must never crash
// or corrupt state on malformed input — every failure is a typed FsmError.
#include <gtest/gtest.h>

#include "fsm/builder.hpp"
#include "fsm/kiss.hpp"
#include "fsm/serialize.hpp"
#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

/// Random printable garbage.
std::string garbage(Rng& rng, int maxLength) {
  const int length = static_cast<int>(rng.below(
      static_cast<std::uint64_t>(maxLength) + 1));
  std::string text;
  for (int k = 0; k < length; ++k)
    text += static_cast<char>(32 + rng.below(95));
  return text;
}

/// Mutates a valid document: deletes, duplicates or flips random bytes.
std::string corrupt(const std::string& valid, Rng& rng) {
  std::string text = valid;
  const int edits = 1 + static_cast<int>(rng.below(5));
  for (int e = 0; e < edits && !text.empty(); ++e) {
    const std::size_t pos =
        static_cast<std::size_t>(rng.below(text.size()));
    switch (rng.below(3)) {
      case 0:
        text.erase(pos, 1);
        break;
      case 1:
        text.insert(pos, 1, static_cast<char>(32 + rng.below(95)));
        break;
      default:
        text[pos] = static_cast<char>(32 + rng.below(95));
    }
  }
  return text;
}

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, Kiss2NeverCrashesOnGarbage) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 1);
  for (int round = 0; round < 50; ++round) {
    const std::string text = garbage(rng, 200);
    try {
      const Kiss2Document doc = parseKiss2(text);
      // If it parsed, lifting must also either work or throw FsmError.
      try {
        (void)machineFromKiss2(doc, "fuzz");
      } catch (const FsmError&) {
      }
    } catch (const FsmError&) {
      // expected for malformed input
    }
  }
}

TEST_P(ParserFuzzTest, Kiss2SurvivesCorruptedValidDocuments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2003 + 7);
  const std::string valid =
      ".i 2\n.o 1\n.r S0\n"
      "00 S0 S1 0\n01 S0 S0 1\n1- S0 S1 1\n"
      "-- S1 S0 0\n.e\n";
  // Sanity: the uncorrupted document parses.
  EXPECT_NO_THROW(parseKiss2(valid));
  for (int round = 0; round < 50; ++round) {
    const std::string text = corrupt(valid, rng);
    try {
      (void)machineFromKiss2(parseKiss2(text), "fuzz");
    } catch (const FsmError&) {
    } catch (const ContractError&) {
      FAIL() << "internal contract violated on corrupted input";
    }
  }
}

TEST_P(ParserFuzzTest, JsonNeverCrashesOnGarbage) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 3001 + 3);
  for (int round = 0; round < 50; ++round) {
    const std::string text = garbage(rng, 200);
    try {
      (void)machineFromJson(text);
    } catch (const FsmError&) {
    }
  }
}

TEST_P(ParserFuzzTest, JsonSurvivesCorruptedValidDocuments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 4001 + 9);
  RandomMachineSpec spec;
  spec.stateCount = 4;
  const std::string valid = toJson(randomMachine(spec, rng));
  for (int round = 0; round < 50; ++round) {
    const std::string text = corrupt(valid, rng);
    try {
      (void)machineFromJson(text);
    } catch (const FsmError&) {
    } catch (const ContractError&) {
      FAIL() << "internal contract violated on corrupted input";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace rfsm
