// Fuzz-style robustness tests: the KISS2, JSON, reconfiguration-program,
// journal and wire-protocol parsers must never crash or corrupt state on
// malformed input — every failure is a typed error (FsmError,
// ProgramParseError, JournalError, IpcError/FrameError), never a
// ContractError or a raw crash.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <utility>
#include <vector>

#include "core/journal.hpp"
#include "core/jsr.hpp"
#include "core/program.hpp"
#include "fsm/builder.hpp"
#include "fsm/kiss.hpp"
#include "fsm/serialize.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "service/protocol.hpp"
#include "util/ipc.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

/// Random printable garbage.
std::string garbage(Rng& rng, int maxLength) {
  const int length = static_cast<int>(rng.below(
      static_cast<std::uint64_t>(maxLength) + 1));
  std::string text;
  for (int k = 0; k < length; ++k)
    text += static_cast<char>(32 + rng.below(95));
  return text;
}

/// Mutates a valid document: deletes, duplicates or flips random bytes.
std::string corrupt(const std::string& valid, Rng& rng) {
  std::string text = valid;
  const int edits = 1 + static_cast<int>(rng.below(5));
  for (int e = 0; e < edits && !text.empty(); ++e) {
    const std::size_t pos =
        static_cast<std::size_t>(rng.below(text.size()));
    switch (rng.below(3)) {
      case 0:
        text.erase(pos, 1);
        break;
      case 1:
        text.insert(pos, 1, static_cast<char>(32 + rng.below(95)));
        break;
      default:
        text[pos] = static_cast<char>(32 + rng.below(95));
    }
  }
  return text;
}

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, Kiss2NeverCrashesOnGarbage) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 1);
  for (int round = 0; round < 50; ++round) {
    const std::string text = garbage(rng, 200);
    try {
      const Kiss2Document doc = parseKiss2(text);
      // If it parsed, lifting must also either work or throw FsmError.
      try {
        (void)machineFromKiss2(doc, "fuzz");
      } catch (const FsmError&) {
      }
    } catch (const FsmError&) {
      // expected for malformed input
    }
  }
}

TEST_P(ParserFuzzTest, Kiss2SurvivesCorruptedValidDocuments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2003 + 7);
  const std::string valid =
      ".i 2\n.o 1\n.r S0\n"
      "00 S0 S1 0\n01 S0 S0 1\n1- S0 S1 1\n"
      "-- S1 S0 0\n.e\n";
  // Sanity: the uncorrupted document parses.
  EXPECT_NO_THROW(parseKiss2(valid));
  for (int round = 0; round < 50; ++round) {
    const std::string text = corrupt(valid, rng);
    try {
      (void)machineFromKiss2(parseKiss2(text), "fuzz");
    } catch (const FsmError&) {
    } catch (const ContractError&) {
      FAIL() << "internal contract violated on corrupted input";
    }
  }
}

TEST_P(ParserFuzzTest, JsonNeverCrashesOnGarbage) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 3001 + 3);
  for (int round = 0; round < 50; ++round) {
    const std::string text = garbage(rng, 200);
    try {
      (void)machineFromJson(text);
    } catch (const FsmError&) {
    }
  }
}

TEST_P(ParserFuzzTest, JsonSurvivesCorruptedValidDocuments) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 4001 + 9);
  RandomMachineSpec spec;
  spec.stateCount = 4;
  const std::string valid = toJson(randomMachine(spec, rng));
  for (int round = 0; round < 50; ++round) {
    const std::string text = corrupt(valid, rng);
    try {
      (void)machineFromJson(text);
    } catch (const FsmError&) {
    } catch (const ContractError&) {
      FAIL() << "internal contract violated on corrupted input";
    }
  }
}

TEST_P(ParserFuzzTest, ProgramParserNeverCrashesOnGarbage) {
  const MigrationContext context(example41Source(), example41Target());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 5003 + 11);
  for (int round = 0; round < 50; ++round) {
    const std::string text = garbage(rng, 200);
    try {
      (void)programFromText(context, text);
    } catch (const ProgramParseError&) {
      // the only acceptable failure mode
    }
  }
}

TEST_P(ParserFuzzTest, ProgramParserSurvivesCorruptedValidPrograms) {
  const MigrationContext context(example41Source(), example41Target());
  const std::string valid = programToText(context, planJsr(context));
  EXPECT_NO_THROW(programFromText(context, valid));
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6007 + 5);
  for (int round = 0; round < 50; ++round) {
    const std::string text = corrupt(valid, rng);
    try {
      (void)programFromText(context, text);
    } catch (const ProgramParseError&) {
    } catch (const ContractError&) {
      FAIL() << "internal contract violated on corrupted program";
    }
  }
}

TEST(ProgramParserAdversarial, MalformedDocumentsThrowTypedErrors) {
  const MigrationContext context(example41Source(), example41Target());
  const std::string stepLines = "reset\nrewrite 0 S1 0\nreset\n";
  const std::vector<std::string> attacks = {
      "",                                         // empty file
      "rfsm-program v1\n",                        // truncated after header
      "rfsm-program v2\nsteps 0\nend\n",          // wrong version
      "rfsm-program v1\nsteps 3\n" + stepLines,   // missing end marker
      "rfsm-program v1\nsteps 99\n" + stepLines + "end\n",   // count too big
      "rfsm-program v1\nsteps 1\n" + stepLines + "end\n",    // count too small
      "rfsm-program v1\nsteps -7\nend\n",                    // negative count
      "rfsm-program v1\nsteps 999999999999999999999\nend\n", // overflow
      "rfsm-program v1\nsteps 1\nrewrite 0 NOPE 0\nend\n",   // unknown state
      "rfsm-program v1\nsteps 1\nrewrite 9 S1 0\nend\n",     // unknown input
      "rfsm-program v1\nsteps 1\nrewrite 0 S1\nend\n",       // missing field
      "rfsm-program v1\nsteps 1\nteleport 0\nend\n",         // unknown step
  };
  for (const std::string& text : attacks) {
    EXPECT_THROW((void)programFromText(context, text), ProgramParseError)
        << "attack: " << text;
  }
}

// ---------------------------------------------------------------------------
// Journal parser: a journal is a program plus commit records, so it must be
// exactly as robust, and additionally tolerate a torn trailing record
// (power loss mid-write) without raising.

TEST(JournalFuzz, ByteTruncationSweepNeverViolatesContracts) {
  const MigrationContext context(example41Source(), example41Target());
  ProgramJournal journal;
  journal.begin(planJsr(context));
  journal.commit(0);
  journal.commit(1);
  const std::string full = journal.serialize(context);
  for (std::size_t keep = 0; keep <= full.size(); ++keep) {
    const std::string text = full.substr(0, keep);
    try {
      const ProgramJournal parsed = ProgramJournal::parse(context, text);
      // Parsed journals must be internally consistent.
      EXPECT_LE(parsed.committedSteps(), parsed.program().length());
    } catch (const JournalError&) {
    } catch (const ProgramParseError&) {
    } catch (const ContractError&) {
      FAIL() << "contract violated at truncation length " << keep;
    }
  }
}

TEST(JournalFuzz, CorruptedJournalsThrowTypedErrorsOnly) {
  const MigrationContext context(example41Source(), example41Target());
  ProgramJournal journal;
  journal.begin(planJsr(context));
  for (int k = 0; k < journal.program().length(); ++k) journal.commit(k);
  const std::string valid = journal.serialize(context);
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    const std::string text = corrupt(valid, rng);
    try {
      (void)ProgramJournal::parse(context, text);
    } catch (const JournalError&) {
    } catch (const ProgramParseError&) {
    } catch (const ContractError&) {
      FAIL() << "internal contract violated on corrupted journal";
    }
  }
}

TEST(JournalFuzz, AdversarialCommitRecordsRejected) {
  const MigrationContext context(example41Source(), example41Target());
  ProgramJournal journal;
  journal.begin(planJsr(context));
  const std::string base = journal.serialize(context);
  // A forged commit for a step the program does not have, plus a trailing
  // line so it is not excused as a torn tail.
  EXPECT_THROW(ProgramJournal::parse(
                   context, base + "commit 99 00000000\ncommit 100 0\n"),
               JournalError);
  // Out-of-order commits.
  EXPECT_THROW(ProgramJournal::parse(
                   context, base + "commit 1 00000000\ncommit 0 0\n"),
               JournalError);
  // A wrong checksum anywhere but the tail is hard damage.
  EXPECT_THROW(ProgramJournal::parse(
                   context, base + "commit 0 deadbeef\ndone\n"),
               JournalError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Wire-protocol frames (service/protocol.hpp + util/ipc.hpp).  The corpus is
// one valid payload per message type; mutations are binary (byte flips,
// inserts, erases, truncation), plus raw-wire rounds that mutate the length
// prefix and CRC trailer specifically.  The contract: decoders and the frame
// reader fail with typed IpcError/FrameError only — no crash, no hang, no
// ContractError — across 10k seeded iterations (8 seeds x 1250).

/// One valid encoded payload per MessageType, with non-default field values
/// so mutations have structure to chew on.
std::vector<std::pair<std::string, std::string>> protocolCorpus() {
  namespace svc = service;
  std::vector<std::pair<std::string, std::string>> corpus;
  svc::PlanRequest plan;
  plan.spec.stateCount = 12;
  plan.spec.planner = "ea";
  plan.deadlineMs = 250;
  plan.requestId = 0xfeedu;
  plan.lo = 2;
  plan.hi = 6;
  corpus.emplace_back("PlanRequest", svc::encodePlanRequest(plan));
  svc::PlanResponse planReply;
  planReply.status = WorkResult::Status::kOk;
  planReply.programs = {"rfsm-program v1\nsteps 0\nend\n", "p2"};
  planReply.retries = 1;
  corpus.emplace_back("PlanResponse", svc::encodePlanResponse(planReply));
  corpus.emplace_back("HealthRequest", svc::encodeHealthRequest());
  svc::HealthResponse health;
  health.healthy = true;
  health.workersAlive = 3;
  health.crashes = 2;
  corpus.emplace_back("HealthResponse", svc::encodeHealthResponse(health));
  svc::ShardRequest shard;
  shard.spec.instanceCount = 16;
  shard.lo = 4;
  shard.hi = 8;
  shard.deadlineNs = 12345;
  corpus.emplace_back("ShardRequest", svc::encodeShardRequest(shard));
  svc::ShardResponse shardReply;
  shardReply.status = WorkResult::Status::kOk;
  shardReply.programs = {"a", "b", "c"};
  corpus.emplace_back("ShardResponse", svc::encodeShardResponse(shardReply));
  corpus.emplace_back("WarmupRequest", svc::encodeWarmupRequest());
  corpus.emplace_back("WarmupResponse", svc::encodeWarmupResponse());
  svc::SessionOpenRequest open;
  open.tenant = "acme";
  open.name = "line-7";
  open.priority = 0;
  corpus.emplace_back("SessionOpenRequest",
                      svc::encodeSessionOpenRequest(open));
  svc::SessionOpenResponse openReply;
  openReply.status = svc::SessionStatus::kOk;
  openReply.lastApplied = 9;
  corpus.emplace_back("SessionOpenResponse",
                      svc::encodeSessionOpenResponse(openReply));
  svc::SessionMutateRequest mutate;
  mutate.tenant = "acme";
  mutate.name = "line-7";
  mutate.seq = 10;
  mutate.defer = true;
  corpus.emplace_back("SessionMutateRequest",
                      svc::encodeSessionMutateRequest(mutate));
  svc::SessionMutateResponse mutateReply;
  mutateReply.status = svc::SessionStatus::kOk;
  mutateReply.seq = 10;
  mutateReply.program = "rfsm-program v1\nsteps 0\nend\n";
  corpus.emplace_back("SessionMutateResponse",
                      svc::encodeSessionMutateResponse(mutateReply));
  svc::SessionReplayRequest replay;
  replay.tenant = "acme";
  replay.name = "line-7";
  replay.toSeq = 10;
  corpus.emplace_back("SessionReplayRequest",
                      svc::encodeSessionReplayRequest(replay));
  svc::SessionReplayResponse replayReply;
  replayReply.status = svc::SessionStatus::kOk;
  replayReply.entries.push_back({3, "p3"});
  replayReply.entries.push_back({4, "p4"});
  corpus.emplace_back("SessionReplayResponse",
                      svc::encodeSessionReplayResponse(replayReply));
  svc::SessionCloseRequest close;
  close.tenant = "acme";
  close.name = "line-7";
  corpus.emplace_back("SessionCloseRequest",
                      svc::encodeSessionCloseRequest(close));
  svc::SessionCloseResponse closeReply;
  closeReply.status = svc::SessionStatus::kOk;
  closeReply.mutationsApplied = 11;
  corpus.emplace_back("SessionCloseResponse",
                      svc::encodeSessionCloseResponse(closeReply));
  corpus.emplace_back("StatsRequest", svc::encodeStatsRequest());
  svc::StatsResponse stats;
  stats.pid = 4242;
  stats.draining = true;
  stats.breakers.push_back({"planner", "OPEN", 3});
  corpus.emplace_back("StatsResponse", svc::encodeStatsResponse(stats));
  svc::TraceDumpRequest traceDump;
  traceDump.clientSteadyNs = 777;
  corpus.emplace_back("TraceDumpRequest",
                      svc::encodeTraceDumpRequest(traceDump));
  svc::TraceDumpResponse traceReply;
  traceReply.serverSteadyNs = 888;
  traceReply.traceJson = "{\"traceEvents\":[]}";
  corpus.emplace_back("TraceDumpResponse",
                      svc::encodeTraceDumpResponse(traceReply));
  corpus.emplace_back("HandshakeRequest",
                      svc::encodeHandshakeRequest(svc::HandshakeRequest{}));
  svc::HandshakeResponse handshakeReply;
  handshakeReply.accepted = false;
  handshakeReply.error = "protocol version mismatch (peer 2, server 1)";
  corpus.emplace_back("HandshakeResponse",
                      svc::encodeHandshakeResponse(handshakeReply));
  svc::SessionReplAppendRequest replAppend;
  replAppend.tenant = "acme";
  replAppend.name = "line-7";
  replAppend.epoch = 4;
  replAppend.seq = 11;
  replAppend.mutationSeed = 0xabcdu;
  replAppend.defer = true;
  corpus.emplace_back("SessionReplAppendRequest",
                      svc::encodeSessionReplAppendRequest(replAppend));
  svc::SessionReplAppendResponse replAppendReply;
  replAppendReply.status = svc::SessionStatus::kStaleEpoch;
  replAppendReply.error = "stale epoch";
  replAppendReply.epoch = 5;
  replAppendReply.lastAccepted = 10;
  corpus.emplace_back("SessionReplAppendResponse",
                      svc::encodeSessionReplAppendResponse(replAppendReply));
  svc::SessionReplSnapshotRequest replSnapshot;
  replSnapshot.tenant = "acme";
  replSnapshot.name = "line-7";
  replSnapshot.epoch = 4;
  replSnapshot.snapshot = std::string("rfsm-session-snap v1\x00\x7f", 22);
  corpus.emplace_back("SessionReplSnapshotRequest",
                      svc::encodeSessionReplSnapshotRequest(replSnapshot));
  svc::SessionReplSnapshotResponse replSnapshotReply;
  replSnapshotReply.status = svc::SessionStatus::kOk;
  replSnapshotReply.epoch = 4;
  replSnapshotReply.lastAccepted = 8;
  corpus.emplace_back("SessionReplSnapshotResponse",
                      svc::encodeSessionReplSnapshotResponse(replSnapshotReply));
  svc::SessionStatusRequest sessionStatus;
  sessionStatus.tenant = "acme";
  sessionStatus.name = "line-7";
  corpus.emplace_back("SessionStatusRequest",
                      svc::encodeSessionStatusRequest(sessionStatus));
  svc::SessionStatusResponse sessionStatusReply;
  sessionStatusReply.status = svc::SessionStatus::kOk;
  sessionStatusReply.role = "standby";
  sessionStatusReply.epoch = 4;
  sessionStatusReply.lastAccepted = 11;
  sessionStatusReply.applied = 10;
  corpus.emplace_back("SessionStatusResponse",
                      svc::encodeSessionStatusResponse(sessionStatusReply));
  return corpus;
}

/// Binary mutation (full byte range, unlike the printable `corrupt` above):
/// 1-8 random erase/insert/flip edits, or a hard truncation.
std::string corruptBinary(const std::string& valid, Rng& rng) {
  if (rng.below(4) == 0)  // truncation, including to the empty payload
    return valid.substr(0, rng.below(valid.size() + 1));
  std::string text = valid;
  const int edits = 1 + static_cast<int>(rng.below(8));
  for (int e = 0; e < edits && !text.empty(); ++e) {
    const std::size_t pos =
        static_cast<std::size_t>(rng.below(text.size()));
    switch (rng.below(3)) {
      case 0:
        text.erase(pos, 1);
        break;
      case 1:
        text.insert(pos, 1, static_cast<char>(rng.below(256)));
        break;
      default:
        text[pos] = static_cast<char>(rng.below(256));
    }
  }
  return text;
}

/// Every protocol decoder, so a mutated payload can be thrown at all of
/// them — a frame that mutated into another type's tag must still fail
/// typed in the wrong decoder.
const std::vector<std::function<void(const std::string&)>>& allDecoders() {
  namespace svc = service;
  static const std::vector<std::function<void(const std::string&)>> decoders =
      {
          [](const std::string& p) { (void)svc::decodePlanRequest(p); },
          [](const std::string& p) { (void)svc::decodePlanResponse(p); },
          [](const std::string& p) { (void)svc::decodeHealthResponse(p); },
          [](const std::string& p) { (void)svc::decodeShardRequest(p); },
          [](const std::string& p) { (void)svc::decodeShardResponse(p); },
          [](const std::string& p) { svc::decodeWarmupResponse(p); },
          [](const std::string& p) { (void)svc::decodeSessionOpenRequest(p); },
          [](const std::string& p) {
            (void)svc::decodeSessionOpenResponse(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionMutateRequest(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionMutateResponse(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionReplayRequest(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionReplayResponse(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionCloseRequest(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionCloseResponse(p);
          },
          [](const std::string& p) { svc::decodeStatsRequest(p); },
          [](const std::string& p) { (void)svc::decodeStatsResponse(p); },
          [](const std::string& p) { (void)svc::decodeTraceDumpRequest(p); },
          [](const std::string& p) { (void)svc::decodeTraceDumpResponse(p); },
          [](const std::string& p) { (void)svc::decodeHandshakeRequest(p); },
          [](const std::string& p) {
            (void)svc::decodeHandshakeResponse(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionReplAppendRequest(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionReplAppendResponse(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionReplSnapshotRequest(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionReplSnapshotResponse(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionStatusRequest(p);
          },
          [](const std::string& p) {
            (void)svc::decodeSessionStatusResponse(p);
          },
      };
  return decoders;
}

class ProtocolParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolParserFuzzTest, MutatedPayloadsFailWithTypedErrorsOnly) {
  const auto corpus = protocolCorpus();
  const auto& decoders = allDecoders();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7013 + 17);
  for (int round = 0; round < 800; ++round) {
    const auto& seedEntry = corpus[rng.below(corpus.size())];
    const std::string text = corruptBinary(seedEntry.second, rng);
    try {
      (void)service::peekType(text);
    } catch (const ipc::IpcError&) {
    } catch (const ContractError&) {
      FAIL() << "peekType contract violated on mutated " << seedEntry.first;
    }
    // Route through one random wrong-or-right decoder every round, and all
    // of them occasionally — mutation can rewrite the type tag.
    const auto tryDecode = [&](std::size_t which) {
      try {
        decoders[which](text);
      } catch (const ipc::IpcError&) {
      } catch (const ContractError&) {
        FAIL() << "decoder " << which << " contract violated on mutated "
               << seedEntry.first;
      }
    };
    tryDecode(rng.below(decoders.size()));
    if (round % 50 == 0)
      for (std::size_t which = 0; which < decoders.size(); ++which)
        tryDecode(which);
  }
}

TEST_P(ProtocolParserFuzzTest, MutatedWireFramesNeverHangTheReader) {
  const auto corpus = protocolCorpus();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 8009 + 23);
  for (int round = 0; round < 200; ++round) {
    const std::string& payload = corpus[rng.below(corpus.size())].second;
    // Assemble the wire image (length | payload | CRC32C) by hand, then
    // mutate it — some rounds target the length prefix or the CRC trailer
    // specifically, the rest mutate anywhere.
    std::string frame;
    const auto le32 = [&frame](std::uint32_t value) {
      for (int k = 0; k < 4; ++k)
        frame.push_back(static_cast<char>(value >> (8 * k)));
    };
    le32(static_cast<std::uint32_t>(payload.size()));
    frame += payload;
    le32(ipc::crc32c(payload));
    switch (rng.below(3)) {
      case 0: {  // length mutation
        frame[rng.below(4)] ^= static_cast<char>(1u << rng.below(8));
        break;
      }
      case 1: {  // CRC flip
        frame[frame.size() - 4 + rng.below(4)] ^=
            static_cast<char>(1u << rng.below(8));
        break;
      }
      default:
        frame = corruptBinary(frame, rng);
    }
    int fds[2] = {-1, -1};
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_EQ(write(fds[0], frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    ::close(fds[0]);  // writer closed: a mutated length reads EOF, not hang
    std::string out;
    try {
      (void)ipc::readFrame(fds[1], out);  // kOk, kEof, or a typed throw
    } catch (const ipc::IpcError&) {
    } catch (const ContractError&) {
      ::close(fds[1]);
      FAIL() << "frame reader contract violated";
    }
    ::close(fds[1]);
  }
}

TEST_P(ProtocolParserFuzzTest, HandshakeDowngradeAttemptsAreTotal) {
  // answerHandshake must be a total function: any (version, features) pair —
  // downgrade probes, feature-bit squatting, garbage versions — yields a
  // well-formed refusal or a masked acceptance, never a throw.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9001 + 29);
  for (int round = 0; round < 250; ++round) {
    service::HandshakeRequest request;
    request.version =
        static_cast<std::uint32_t>(rng.below(std::uint64_t{1} << 32));
    request.features =
        static_cast<std::uint32_t>(rng.below(std::uint64_t{1} << 32));
    const auto response = service::answerHandshake(request);
    EXPECT_EQ(response.version, service::kProtocolVersion);
    if (request.version == service::kProtocolVersion) {
      EXPECT_TRUE(response.accepted);
      EXPECT_EQ(response.features & ~service::kFeatureCrc32c, 0u);
    } else {
      EXPECT_FALSE(response.accepted);
      EXPECT_EQ(response.features, 0u);
      EXPECT_FALSE(response.error.empty());
    }
    // The refusal/acceptance must survive its own wire round-trip.
    const auto back = service::decodeHandshakeResponse(
        service::encodeHandshakeResponse(response));
    EXPECT_EQ(back.accepted, response.accepted);
    EXPECT_EQ(back.features, response.features);
    EXPECT_EQ(back.error, response.error);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolParserFuzzTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace rfsm
