// Tests for DOT/JSON serialization and the KISS2 format.
#include <gtest/gtest.h>

#include "fsm/builder.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/kiss.hpp"
#include "fsm/serialize.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(Dot, ContainsStatesEdgesAndResetMarker) {
  const std::string dot = toDot(onesDetector());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"S0\""), std::string::npos);
  EXPECT_NE(dot.find("__reset -> \"S0\""), std::string::npos);
  // Parallel-edge labels are merged with commas (S0->S0 under 0).
  EXPECT_NE(dot.find("label="), std::string::npos);
}

TEST(Json, RoundTripsPaperMachine) {
  const Machine m = onesDetector();
  const Machine back = machineFromJson(toJson(m));
  EXPECT_TRUE(m == back);
  EXPECT_EQ(back.name(), m.name());
}

TEST(Json, RoundTripsRandomMachines) {
  Rng rng(123);
  for (int round = 0; round < 10; ++round) {
    RandomMachineSpec spec;
    spec.stateCount = 2 + static_cast<int>(rng.below(12));
    spec.inputCount = 1 + static_cast<int>(rng.below(4));
    spec.outputCount = 1 + static_cast<int>(rng.below(4));
    const Machine m = randomMachine(spec, rng);
    EXPECT_TRUE(m == machineFromJson(toJson(m)));
  }
}

TEST(Json, EscapesSpecialCharacters) {
  MachineBuilder b("quo\"te");
  b.addTransition("0", "A", "A", "x");
  b.setResetState("A");
  const Machine m = b.build();
  const Machine back = machineFromJson(toJson(m));
  EXPECT_EQ(back.name(), "quo\"te");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(machineFromJson("{"), FsmError);
  EXPECT_THROW(machineFromJson("[]"), FsmError);
  EXPECT_THROW(machineFromJson("{\"name\": \"x\"}"), FsmError);
}

TEST(Kiss2, ParsesMinimalDocument) {
  const std::string text =
      ".i 1\n"
      ".o 1\n"
      ".s 2\n"
      ".p 4\n"
      ".r S0\n"
      "1 S0 S1 0\n"
      "1 S1 S1 1\n"
      "0 S0 S0 0\n"
      "0 S1 S0 0\n"
      ".e\n";
  const Kiss2Document doc = parseKiss2(text);
  EXPECT_EQ(doc.inputBits, 1);
  EXPECT_EQ(doc.outputBits, 1);
  EXPECT_EQ(doc.resetState, "S0");
  EXPECT_EQ(doc.rows.size(), 4u);
}

TEST(Kiss2, LiftedMachineMatchesOnesDetector) {
  const std::string text =
      ".i 1\n.o 1\n.r S0\n"
      "1 S0 S1 0\n"
      "1 S1 S1 1\n"
      "0 S0 S0 0\n"
      "0 S1 S0 0\n"
      ".e\n";
  const Machine m = machineFromKiss2(parseKiss2(text), "k");
  EXPECT_TRUE(areEquivalent(m, onesDetector()));
}

TEST(Kiss2, ExpandsInputDontCares) {
  const std::string text =
      ".i 2\n.o 1\n.r A\n"
      "-- A B 1\n"
      "-- B A 0\n"
      ".e\n";
  const Machine m = machineFromKiss2(parseKiss2(text), "dc");
  EXPECT_EQ(m.inputCount(), 4);  // 00, 01, 10, 11
  for (SymbolId i = 0; i < 4; ++i)
    EXPECT_EQ(m.next(i, m.states().at("A")), m.states().at("B"));
}

TEST(Kiss2, OutputDontCareFill) {
  const std::string text =
      ".i 1\n.o 2\n.r A\n"
      "1 A A 1-\n"
      "0 A A 00\n"
      ".e\n";
  Kiss2LiftOptions options;
  options.outputDontCareFill = '1';
  const Machine m = machineFromKiss2(parseKiss2(text), "f", options);
  EXPECT_EQ(m.outputs().name(m.output(m.inputs().at("1"), 0)), "11");
}

TEST(Kiss2, IncompleteWithoutCompletionThrows) {
  const std::string text =
      ".i 1\n.o 1\n.r A\n"
      "1 A A 1\n"
      ".e\n";
  Kiss2LiftOptions options;
  options.completeWithSelfLoops = false;
  EXPECT_THROW(machineFromKiss2(parseKiss2(text), "x", options), FsmError);
  // With completion (default), the 0-cell becomes a self-loop.
  const Machine m = machineFromKiss2(parseKiss2(text), "x");
  EXPECT_EQ(m.next(m.inputs().at("0"), 0), 0);
}

TEST(Kiss2, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# header comment\n"
      ".i 1\n.o 1\n\n"
      "1 A A 1  # trailing comment\n"
      "0 A A 0\n"
      ".e\n";
  EXPECT_EQ(parseKiss2(text).rows.size(), 2u);
}

TEST(Kiss2, MalformedDocumentsRejected) {
  EXPECT_THROW(parseKiss2(""), FsmError);
  EXPECT_THROW(parseKiss2(".i 1\n.o 1\n.e\n"), FsmError);          // no rows
  EXPECT_THROW(parseKiss2(".o 1\n1 A A 1\n.e\n"), FsmError);       // no .i
  EXPECT_THROW(parseKiss2(".i 1\n.o 1\n11 A A 1\n.e\n"), FsmError);  // width
  EXPECT_THROW(parseKiss2(".i 1\n.o 1\n.p 5\n1 A A 1\n.e\n"),
               FsmError);  // .p mismatch
  EXPECT_THROW(parseKiss2(".i 1\n.o 1\n.q 3\n1 A A 1\n.e\n"),
               FsmError);  // unknown directive
  EXPECT_THROW(parseKiss2(".i 1\n.o 1\n1 A A 1\n.e\njunk\n"),
               FsmError);  // content after .e
}

TEST(Kiss2, WriteParseRoundTrip) {
  Rng rng(5);
  RandomMachineSpec spec;
  spec.stateCount = 5;
  spec.inputCount = 4;  // names i0..i3 are not bitstrings; go via document
  const Machine m = randomMachine(spec, rng);
  // Build a document by hand from a bit-named machine instead.
  const std::string text =
      ".i 2\n.o 1\n.r S0\n"
      "00 S0 S1 0\n01 S0 S0 1\n10 S0 S1 1\n11 S0 S0 0\n"
      "00 S1 S0 0\n01 S1 S1 1\n10 S1 S0 1\n11 S1 S1 0\n"
      ".e\n";
  const Kiss2Document doc = parseKiss2(text);
  const Machine lifted = machineFromKiss2(doc, "rt");
  const Kiss2Document back = kiss2FromMachine(lifted);
  const Machine again = machineFromKiss2(back, "rt2");
  EXPECT_TRUE(lifted == again);
}

TEST(Kiss2, FromMachineRejectsSymbolicInputs) {
  EXPECT_THROW(kiss2FromMachine(counterMachine(3)), FsmError);
}

}  // namespace
}  // namespace rfsm
