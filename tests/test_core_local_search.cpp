// Tests for the local-search planners (2-opt, simulated annealing) and
// their relationship to the EA and the bounds.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/local_search.hpp"
#include "core/planners.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

MigrationContext instance(int states, int deltas, std::uint64_t seed) {
  Rng rng(seed);
  RandomMachineSpec spec;
  spec.stateCount = states;
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = deltas;
  const Machine target = mutateMachine(source, mutation, rng);
  return MigrationContext(source, target);
}

TEST(TwoOpt, ValidAndNoWorseThanSeed) {
  const MigrationContext context = instance(10, 8, 5);
  std::vector<int> identity(static_cast<std::size_t>(loopDeltaCount(context)));
  for (std::size_t k = 0; k < identity.size(); ++k)
    identity[k] = static_cast<int>(k);
  const int seedLength = decodeOrder(context, identity).length();

  const LocalSearchPlan plan = planTwoOpt(context, identity);
  EXPECT_TRUE(validateProgram(context, plan.program).valid);
  EXPECT_LE(plan.program.length(), seedLength);
  EXPECT_GE(plan.program.length(), programLowerBound(context));
  EXPECT_GT(plan.evaluations, 0);
}

TEST(TwoOpt, EmptySeedUsesIdentity) {
  const MigrationContext context = instance(8, 5, 6);
  const LocalSearchPlan plan = planTwoOpt(context);
  EXPECT_TRUE(validateProgram(context, plan.program).valid);
}

TEST(TwoOpt, RejectsBadSeeds) {
  const MigrationContext context = instance(8, 5, 7);
  EXPECT_THROW(planTwoOpt(context, {0, 0, 1, 2, 3}), ContractError);
  EXPECT_THROW(planTwoOpt(context, {0}), ContractError);
}

TEST(TwoOpt, EvaluationBudgetRespected) {
  const MigrationContext context = instance(12, 10, 8);
  const LocalSearchPlan plan = planTwoOpt(context, {}, {}, 10);
  EXPECT_LE(plan.evaluations, 10 + 1);
  EXPECT_TRUE(validateProgram(context, plan.program).valid);
}

TEST(Annealing, ValidAndWithinBounds) {
  const MigrationContext context = instance(10, 8, 9);
  AnnealingConfig config;
  Rng rng(3);
  const LocalSearchPlan plan = planAnnealing(context, config, rng);
  EXPECT_TRUE(validateProgram(context, plan.program).valid);
  EXPECT_GE(plan.program.length(), programLowerBound(context));
  EXPECT_LE(plan.program.length(), jsrUpperBound(context));
}

TEST(Annealing, DeterministicForSeed) {
  const MigrationContext context = instance(10, 8, 10);
  AnnealingConfig config;
  config.moves = 500;
  Rng a(7), b(7);
  EXPECT_EQ(planAnnealing(context, config, a).program.length(),
            planAnnealing(context, config, b).program.length());
}

TEST(Annealing, SingleDeltaInstance) {
  const MigrationContext context(example42Source(), example42Target());
  AnnealingConfig config;
  config.moves = 10;
  Rng rng(1);
  const LocalSearchPlan plan = planAnnealing(context, config, rng);
  EXPECT_TRUE(validateProgram(context, plan.program).valid);
}

/// Property sweep: local search always beats or ties JSR and stays valid.
class LocalSearchPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LocalSearchPropertyTest, TwoOptStaysWithinTheJsrBound) {
  const MigrationContext context =
      instance(6 + GetParam() % 6, 4 + GetParam() % 5,
               static_cast<std::uint64_t>(GetParam()) * 19 + 11);
  const LocalSearchPlan plan = planTwoOpt(context);
  EXPECT_TRUE(validateProgram(context, plan.program).valid);
  EXPECT_LE(plan.program.length(), jsrUpperBound(context));
  EXPECT_GE(plan.program.length(), programLowerBound(context));
}

TEST_P(LocalSearchPropertyTest, AnnealingValidates) {
  const MigrationContext context =
      instance(6 + GetParam() % 6, 4 + GetParam() % 5,
               static_cast<std::uint64_t>(GetParam()) * 23 + 7);
  AnnealingConfig config;
  config.moves = 800;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const LocalSearchPlan plan = planAnnealing(context, config, rng);
  EXPECT_TRUE(validateProgram(context, plan.program).valid);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LocalSearchPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace rfsm
