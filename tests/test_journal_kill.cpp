// ProgramJournal under real process death: a child is SIGKILLed mid-way
// through writing its journal, and the parent must recover from whatever
// prefix reached the disk — the exact failure mode of a planner-service
// worker (or an embedded Reconfigurator) dying with a half-flushed
// journal.  Complements the in-memory torn-tail tests in
// test_fault_tolerance.cpp with a byte-truncation sweep and an actual
// kill-during-write.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>

#include "core/apply.hpp"
#include "core/journal.hpp"
#include "core/jsr.hpp"
#include "core/migration.hpp"
#include "core/mutable_machine.hpp"
#include "gen/families.hpp"

namespace rfsm {
namespace {

MigrationContext paperContext() {
  return MigrationContext(example41Source(), example41Target());
}

/// Serialized journal of the JSR program with `commits` committed steps.
std::string journalText(const MigrationContext& context, int commits) {
  ProgramJournal journal;
  journal.begin(planJsr(context));
  for (int step = 0; step < commits; ++step) journal.commit(step);
  return journal.serialize(context);
}

/// Replays the committed prefix and resumes the remainder; true when the
/// machine ends up realizing the target.
bool resumeToTarget(const MigrationContext& context,
                    const ProgramJournal& journal) {
  MutableMachine machine(context);
  const auto& steps = journal.program().steps;
  for (int k = 0; k < journal.committedSteps(); ++k)
    machine.applyStep(steps[static_cast<std::size_t>(k)]);
  machine.applyProgram(journal.remainingProgram());
  return machine.matchesTarget();
}

TEST(JournalKill, SigkillMidWriteLeavesARecoverablePrefix) {
  const MigrationContext context = paperContext();
  const ReconfigurationProgram program = planJsr(context);
  ASSERT_GE(program.length(), 3);

  char path[] = "/tmp/rfsm-journal-kill-XXXXXX";
  const int preview = mkstemp(path);
  ASSERT_GE(preview, 0);
  close(preview);

  // Handshake pipe: the child signals after every flushed commit record,
  // so the parent kills at a *known* record boundary plus a torn tail.
  int pipeFds[2];
  ASSERT_EQ(pipe(pipeFds), 0);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(pipeFds[0]);
    const int fd = open(path, O_WRONLY | O_TRUNC);
    if (fd < 0) _exit(10);
    // Intent first (WAL discipline), flushed whole.
    ProgramJournal journal;
    journal.begin(program);
    const std::string intent = journal.serialize(context);
    if (write(fd, intent.data(), intent.size()) !=
        static_cast<ssize_t>(intent.size()))
      _exit(11);
    fsync(fd);
    // Then commit records one at a time, re-serializing the growing
    // journal and appending only the new suffix; tell the parent after
    // each flush and finally start a record we will never finish.
    std::string previous = intent;
    for (int step = 0; step < program.length(); ++step) {
      journal.commit(step);
      const std::string now = journal.serialize(context);
      const std::string suffix = now.substr(previous.size());
      if (write(fd, suffix.data(), suffix.size()) !=
          static_cast<ssize_t>(suffix.size()))
        _exit(12);
      fsync(fd);
      previous = now;
      if (write(pipeFds[1], "c", 1) != 1) _exit(13);
      if (step == 1) {
        // Torn tail: half a commit record, then wait to be killed.
        const std::string torn = "commit 2 deadbe";
        (void)!write(fd, torn.data(), torn.size());
        fsync(fd);
        if (write(pipeFds[1], "t", 1) != 1) _exit(14);
        pause();
      }
    }
    _exit(0);
  }

  close(pipeFds[1]);
  // Wait for: commit 0, commit 1, torn-tail marker — then SIGKILL.
  char buffer;
  for (int expected = 0; expected < 3; ++expected)
    ASSERT_EQ(read(pipeFds[0], &buffer, 1), 1);
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  close(pipeFds[0]);

  // Recover from what hit the disk.
  std::string text;
  {
    const int fd = open(path, O_RDONLY);
    ASSERT_GE(fd, 0);
    char chunk[4096];
    ssize_t got;
    while ((got = read(fd, chunk, sizeof chunk)) > 0)
      text.append(chunk, static_cast<std::size_t>(got));
    close(fd);
  }
  unlink(path);

  const ProgramJournal recovered = ProgramJournal::parse(context, text);
  EXPECT_TRUE(recovered.truncated());  // the torn record was detected
  EXPECT_EQ(recovered.committedSteps(), 2);  // and only the torn one lost
  EXPECT_FALSE(recovered.complete());
  EXPECT_TRUE(resumeToTarget(context, recovered));
}

TEST(JournalKill, EveryByteTruncationEitherParsesOrThrows) {
  const MigrationContext context = paperContext();
  const ReconfigurationProgram program = planJsr(context);
  const std::string full = journalText(context, program.length());

  int parsed = 0, rejected = 0;
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);
    try {
      const ProgramJournal journal = ProgramJournal::parse(context, prefix);
      // A prefix that parses must be *safe*: no invented commits, and the
      // journaled prefix must actually replay + resume to the target.
      ASSERT_LE(journal.committedSteps(), program.length());
      ASSERT_TRUE(resumeToTarget(context, journal)) << "cut at " << cut;
      ++parsed;
    } catch (const Error&) {
      // Truncation inside the program section (or a torn non-trailing
      // structure) must fail loudly, never misparse.
      ++rejected;
    }
  }
  // Both regimes must actually occur: early cuts reject, late cuts parse.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(JournalKill, CommitRegionCutsKeepEveryFullRecord) {
  const MigrationContext context = paperContext();
  const ReconfigurationProgram program = planJsr(context);
  const std::string intentOnly = journalText(context, 0);
  const std::string full = journalText(context, program.length());

  // Cutting anywhere after the intent leaves: all fully-written commit
  // records plus at most one torn trailing record, which parse() drops.
  int bestSeen = 0;
  for (std::size_t cut = intentOnly.size(); cut <= full.size(); ++cut) {
    const ProgramJournal journal =
        ProgramJournal::parse(context, full.substr(0, cut));
    EXPECT_GE(journal.committedSteps(), bestSeen)
        << "commit count went backwards at cut " << cut;
    bestSeen = std::max(bestSeen, journal.committedSteps());
    EXPECT_TRUE(resumeToTarget(context, journal)) << "cut at " << cut;
  }
  EXPECT_EQ(bestSeen, program.length());
}

}  // namespace
}  // namespace rfsm
