// Tests for the program peephole optimizer.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/jsr.hpp"
#include "core/peephole.hpp"
#include "core/planners.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(Peephole, DropsNoOpResets) {
  const MigrationContext context(example41Source(), example41Target());
  ReconfigurationProgram z = planJsr(context);
  // Double every reset: the duplicates are no-ops.
  ReconfigurationProgram padded;
  for (const ReconfigStep& step : z.steps) {
    padded.steps.push_back(step);
    if (step.kind == StepKind::kReset)
      padded.steps.push_back(ReconfigStep::reset());
  }
  ASSERT_TRUE(validateProgram(context, padded).valid);
  const PeepholeResult optimized = optimizeProgram(context, padded);
  // At least the injected duplicates go; JSR's own resets after deltas that
  // land in S0' are no-ops too, so strictly more can disappear.
  EXPECT_GE(optimized.removedResets, padded.resetCount() - z.resetCount());
  EXPECT_LE(optimized.program.length(), z.length());
  EXPECT_TRUE(validateProgram(context, optimized.program).valid);
}

TEST(Peephole, DemotesIdentityRewrites) {
  // Identity migration: JSR still rewrites the temporary cell with its
  // existing contents — the optimizer turns that into a traversal.
  const MigrationContext context(onesDetector(), onesDetector());
  const ReconfigurationProgram z = planJsr(context);
  ASSERT_EQ(z.rewriteCount(), 1);
  const PeepholeResult optimized = optimizeProgram(context, z);
  EXPECT_EQ(optimized.demotedRewrites, 1);
  EXPECT_EQ(optimized.program.rewriteCount(), 0);
  EXPECT_TRUE(validateProgram(context, optimized.program).valid);
}

TEST(Peephole, LeavesTightProgramsAlone) {
  const MigrationContext context(example42Source(), example42Target());
  // The paper's 3-cycle temporary program has no slack.
  ReconfigurationProgram z;
  const SymbolId in0 = context.inputs().at("0");
  z.steps.push_back(ReconfigStep::rewrite(in0, context.states().at("S3"),
                                          context.outputs().at("0"), true));
  z.steps.push_back(ReconfigStep::rewrite(in0, context.states().at("S0"),
                                          context.outputs().at("0")));
  z.steps.push_back(ReconfigStep::rewrite(in0, context.states().at("S0"),
                                          context.outputs().at("0")));
  const PeepholeResult optimized = optimizeProgram(context, z);
  EXPECT_EQ(optimized.program.length(), 3);
  EXPECT_EQ(optimized.removedResets, 0);
  // The final repair writes (S0, 0) over the temporary (S3, 0): a real
  // write; the middle one writes over the stale (S3,...) cell: real too.
  EXPECT_EQ(optimized.demotedRewrites, 0);
}

/// Property sweep: optimization preserves validity and never lengthens.
class PeepholePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PeepholePropertyTest, ValidAndNeverLonger) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1013 + 7);
  RandomMachineSpec spec;
  spec.stateCount = 4 + static_cast<int>(rng.below(8));
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 2 + static_cast<int>(rng.below(5));
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);

  for (const ReconfigurationProgram& z :
       {planJsr(context), planGreedy(context)}) {
    ASSERT_TRUE(validateProgram(context, z).valid);
    const PeepholeResult optimized = optimizeProgram(context, z);
    EXPECT_LE(optimized.program.length(), z.length());
    EXPECT_LE(optimized.program.rewriteCount(), z.rewriteCount());
    const ValidationResult verdict =
        validateProgram(context, optimized.program);
    EXPECT_TRUE(verdict.valid) << verdict.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeepholePropertyTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace rfsm
