// Tests for the context-swap / bitstream downtime models.
#include <gtest/gtest.h>

#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "rtl/context_swap.hpp"
#include "util/rng.hpp"

namespace rfsm::rtl {
namespace {

TEST(ContextSwap, DowntimeCountsBothRams) {
  const MigrationContext context(onesDetector(), zerosDetector());
  ContextSwapModel swap;
  // 2 states x 2 inputs x 2 RAMs = 8 words + 1 reset.
  EXPECT_EQ(swap.downtimeCycles(context), 9);
  swap.wordsPerCycle = 4;
  EXPECT_EQ(swap.downtimeCycles(context), 3);
}

TEST(ContextSwap, BitstreamModelMatchesXcv300) {
  const BitstreamReloadModel model;
  EXPECT_EQ(model.downtimeCycles(), 1751808 / 8);
}

TEST(ContextSwap, GradualWinsOnSmallDeltaSets) {
  Rng rng(9);
  RandomMachineSpec spec;
  spec.stateCount = 32;
  spec.inputCount = 4;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 4;  // small change to a big machine
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);

  const auto comparison = compareDowntime(context, planJsr(context));
  EXPECT_LT(comparison.gradualCycles, comparison.contextSwapCycles);
  EXPECT_LT(comparison.contextSwapCycles, comparison.bitstreamCycles);
  EXPECT_GT(comparison.gradualVsSwap(), 1.0);
}

TEST(ContextSwap, SwapCanWinWhenEverythingChanges) {
  // When nearly every cell differs, 3 cycles/cell gradual reconfiguration
  // loses to a 1 word/cycle full reload — the models capture the crossover.
  Rng rng(11);
  RandomMachineSpec spec;
  spec.stateCount = 6;
  spec.inputCount = 2;
  const Machine source = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 12;  // all cells
  const Machine target = mutateMachine(source, mutation, rng);
  const MigrationContext context(source, target);
  ASSERT_EQ(context.deltaCount(), 12);

  const auto jsr = compareDowntime(context, planJsr(context));
  EXPECT_GT(jsr.gradualCycles, jsr.contextSwapCycles);
}

TEST(ContextSwap, RejectsZeroWidthPort) {
  const MigrationContext context(onesDetector(), zerosDetector());
  ContextSwapModel swap;
  swap.wordsPerCycle = 0;
  EXPECT_THROW(swap.downtimeCycles(context), ContractError);
}

}  // namespace
}  // namespace rfsm::rtl
