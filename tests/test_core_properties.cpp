// Property tests over randomly generated migration instances: every planner
// must produce a validating program; lengths must respect the Thm. 4.2/4.3
// bounds; JSR must hit its formula exactly; the EA must never lose to its
// own initial population.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/planners.hpp"
#include "core/sequence.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

struct InstanceSpec {
  int states;
  int inputs;
  int deltas;
  int newStates;
};

/// Builds a random migration instance from a sweep parameter.
MigrationContext makeInstance(const InstanceSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  RandomMachineSpec machineSpec;
  machineSpec.stateCount = spec.states;
  machineSpec.inputCount = spec.inputs;
  machineSpec.outputCount = 2;
  const Machine source = randomMachine(machineSpec, rng);
  MutationSpec mutation;
  mutation.deltaCount = spec.deltas;
  mutation.newStateCount = spec.newStates;
  const Machine target = mutateMachine(source, mutation, rng);
  return MigrationContext(source, target);
}

class MigrationPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  MigrationContext instance() const {
    const auto [variant, seed] = GetParam();
    // Four instance shapes: small/large, with/without new states.
    static const InstanceSpec specs[] = {
        {4, 2, 3, 0},
        {8, 2, 6, 0},
        {6, 3, 8, 1},
        {12, 2, 10, 2},
    };
    return makeInstance(specs[static_cast<std::size_t>(variant)],
                        static_cast<std::uint64_t>(seed) * 7919 + 17);
  }
};

TEST_P(MigrationPropertyTest, MutatorProducesExactDeltaCount) {
  const auto [variant, seed] = GetParam();
  static const int expected[] = {3, 6, 8, 10};
  const MigrationContext context = instance();
  EXPECT_EQ(context.deltaCount(),
            expected[static_cast<std::size_t>(variant)]);
}

TEST_P(MigrationPropertyTest, JsrHitsItsFormulaAndValidates) {
  const MigrationContext context = instance();
  const ReconfigurationProgram z = planJsr(context);
  const ValidationResult result = validateProgram(context, z);
  EXPECT_TRUE(result.valid) << result.reason;
  // Exact length: 3*|Td|+3 normally, 3*|Td| when the temp cell is a delta.
  const SymbolId i0 = context.liftTargetInput(0);
  bool tempCellIsDelta = false;
  for (const Transition& td : context.deltaTransitions())
    if (td.input == i0 && td.from == context.targetReset())
      tempCellIsDelta = true;
  const int expected =
      tempCellIsDelta ? 3 * context.deltaCount()
                      : 3 * context.deltaCount() + 3;
  EXPECT_EQ(z.length(), expected);
  EXPECT_LE(z.length(), jsrUpperBound(context));  // Thm. 4.2
}

TEST_P(MigrationPropertyTest, GreedyValidatesAndRespectsBounds) {
  const MigrationContext context = instance();
  const ReconfigurationProgram z = planGreedy(context);
  const ValidationResult result = validateProgram(context, z);
  EXPECT_TRUE(result.valid) << result.reason;
  EXPECT_GE(z.length(), programLowerBound(context));  // Thm. 4.3
  EXPECT_LE(z.length(), jsrUpperBound(context));
}

TEST_P(MigrationPropertyTest, EvolutionaryValidatesAndBeatsItsSeedPopulation) {
  const auto [variant, seed] = GetParam();
  const MigrationContext context = instance();
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  EvolutionConfig config;
  config.populationSize = 24;
  config.generations = 30;
  const EvolutionaryPlan plan = planEvolutionary(context, config, rng);
  const ValidationResult result = validateProgram(context, plan.program);
  EXPECT_TRUE(result.valid) << result.reason;
  EXPECT_LE(plan.program.length(), static_cast<int>(plan.initialBest));
  EXPECT_GE(plan.program.length(), programLowerBound(context));
  EXPECT_LE(plan.program.length(), jsrUpperBound(context));
}

TEST_P(MigrationPropertyTest, BestOfThreeDecoderValidates) {
  const auto [variant, seed] = GetParam();
  const MigrationContext context = instance();
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + 3);
  DecodeOptions options;
  options.rule = DecodeRule::kBestOfThree;
  EvolutionConfig config;
  config.populationSize = 16;
  config.generations = 15;
  const EvolutionaryPlan plan =
      planEvolutionary(context, config, rng, options);
  const ValidationResult result = validateProgram(context, plan.program);
  EXPECT_TRUE(result.valid) << result.reason;
}

TEST_P(MigrationPropertyTest, NoTemporaryPlannerValidates) {
  const MigrationContext context = instance();
  const ReconfigurationProgram z = planNoTemporary(context);
  const ValidationResult result = validateProgram(context, z);
  EXPECT_TRUE(result.valid) << result.reason;
}

TEST_P(MigrationPropertyTest, SequenceRoundTripPreservesPrograms) {
  const MigrationContext context = instance();
  const ReconfigurationProgram z = planGreedy(context);
  const ReconfigurationProgram back =
      programFromSequence(sequenceFromProgram(z));
  ASSERT_EQ(back.length(), z.length());
  // Replaying the round-tripped program must still validate (the
  // `temporary` flag is presentation-only and may be dropped).
  EXPECT_TRUE(validateProgram(context, back).valid);
}

INSTANTIATE_TEST_SUITE_P(Instances, MigrationPropertyTest,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 8)));

TEST(MutatorEdgeCases, ZeroDeltasIsIdentityMigration) {
  Rng rng(5);
  RandomMachineSpec spec;
  const Machine m = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 0;
  const Machine same = mutateMachine(m, mutation, rng);
  const MigrationContext context(m, same);
  EXPECT_EQ(context.deltaCount(), 0);
}

TEST(MutatorEdgeCases, InfeasibleRequestsRejected) {
  Rng rng(6);
  RandomMachineSpec spec;
  spec.stateCount = 3;
  spec.inputCount = 2;
  const Machine m = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 100;  // more than 3*2 old cells
  EXPECT_THROW(mutateMachine(m, mutation, rng), MutationError);
  mutation.deltaCount = 1;
  mutation.newStateCount = 1;  // needs >= inputCount+1 = 3 deltas
  EXPECT_THROW(mutateMachine(m, mutation, rng), MutationError);
}

TEST(MutatorEdgeCases, NewStatesAppearInTargetAlphabet) {
  Rng rng(7);
  RandomMachineSpec spec;
  spec.stateCount = 4;
  spec.inputCount = 2;
  const Machine m = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.newStateCount = 2;
  mutation.deltaCount = 2 * (2 + 1) + 1;
  const Machine target = mutateMachine(m, mutation, rng);
  EXPECT_EQ(target.stateCount(), 6);
  const MigrationContext context(m, target);
  EXPECT_EQ(context.deltaCount(), mutation.deltaCount);
}

}  // namespace
}  // namespace rfsm
