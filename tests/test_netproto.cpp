// Tests for the packet-dependent protocol-processing application.
#include <gtest/gtest.h>

#include "apps/netproto/multiport.hpp"
#include "apps/netproto/protocol.hpp"
#include "core/apply.hpp"
#include "fsm/equivalence.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rfsm::netproto {
namespace {

TEST(Protocol, PreambleParserDetectsFrames) {
  const Machine parser = preambleParser("1011");
  EXPECT_EQ(countMatches(parser, "10111011"), 2);
  EXPECT_EQ(countMatches(parser, "0000"), 0);
  // Overlap: "1011011" ends with a second occurrence reusing the suffix.
  EXPECT_EQ(countMatches(parser, "1011011"), 2);
  EXPECT_EQ(countMatches(parser, "101101"), 1);
}

TEST(Protocol, RenderStreamContainsRequestedFrames) {
  Rng rng(5);
  const std::string stream = renderStream("1100", 7, 8, rng);
  EXPECT_EQ(stream.size(), 7u * (4 + 8));
  const Machine parser = preambleParser("1100");
  // Every frame boundary is a match; payload may add accidental ones, so
  // at least 7 matches must be present.
  EXPECT_GE(countMatches(parser, stream), 7);
}

TEST(Protocol, ProcessorParsesWithoutUpgrade) {
  Rng rng(7);
  ProtocolProcessor processor("101", "1101", UpgradePlanner::kJsr);
  const std::string stream = renderStream("101", 5, 6, rng);
  const int matches = processor.processBits(stream);
  EXPECT_EQ(matches, countMatches(preambleParser("101"), stream));
  EXPECT_FALSE(processor.upgraded());
  EXPECT_EQ(processor.reconfigurationCycles(), 0);
}

TEST(Protocol, UpgradeMigratesParserInBand) {
  Rng rng(11);
  ProtocolProcessor processor("101", "1101", UpgradePlanner::kJsr);
  const SwitchoverReport report = processor.runSwitchover(4, 4, 6, rng);
  EXPECT_TRUE(report.programValidated);
  EXPECT_GT(report.deltaCount, 0);
  EXPECT_GE(report.preUpgradeMatches, 4);
  EXPECT_GE(report.postUpgradeMatches, 4);
  EXPECT_GT(report.droppedDuringUpgrade, 0);
  EXPECT_TRUE(processor.upgraded());
  EXPECT_EQ(processor.reconfigurationCycles(), report.programLength);
}

TEST(Protocol, PostUpgradeBehaviourMatchesTargetParser) {
  Rng rng(13);
  ProtocolProcessor processor("10", "110", UpgradePlanner::kGreedy);
  processor.runSwitchover(2, 0, 4, rng);
  ASSERT_TRUE(processor.upgraded());
  // After the upgrade the processor must count exactly like a fresh target
  // parser started from reset (the program terminates in S0').
  Rng streamRng(17);
  const std::string post = renderStream("110", 6, 5, streamRng);
  const int processorMatches = processor.processBits(post);
  EXPECT_EQ(processorMatches, countMatches(preambleParser("110"), post));
}

TEST(Protocol, AllPlannersProduceValidUpgrades) {
  for (const auto planner : {UpgradePlanner::kJsr, UpgradePlanner::kGreedy,
                             UpgradePlanner::kEvolutionary}) {
    ProtocolProcessor processor("1010", "1001", planner, /*seed=*/3);
    const ValidationResult result =
        validateProgram(processor.context(), processor.program());
    EXPECT_TRUE(result.valid) << result.reason;
  }
}

TEST(Protocol, EvolutionaryUpgradeNoLongerThanJsr) {
  ProtocolProcessor jsr("10110", "11010", UpgradePlanner::kJsr);
  ProtocolProcessor ea("10110", "11010", UpgradePlanner::kEvolutionary, 5);
  EXPECT_LE(ea.program().length(), jsr.program().length());
}

TEST(Protocol, DowntimeEqualsProgramLength) {
  Rng rng(19);
  ProtocolProcessor processor("101", "111", UpgradePlanner::kGreedy);
  const SwitchoverReport report = processor.runSwitchover(1, 1, 4, rng);
  // Every reconfiguration cycle consumes exactly one link bit.
  EXPECT_EQ(report.droppedDuringUpgrade, report.programLength);
}

TEST(MultiPort, StaysPutForSameVersionPackets) {
  MultiProtocolPort port({"101", "1101", "1001"}, UpgradePlanner::kGreedy);
  EXPECT_EQ(port.versionCount(), 3);
  EXPECT_EQ(port.currentVersion(), 0);
  const PacketReport a = port.processPacket(0, "10101");
  EXPECT_FALSE(a.switched);
  EXPECT_EQ(a.switchCycles, 0);
  EXPECT_EQ(port.switchCount(), 0);
  EXPECT_EQ(a.frameMatches, 2);  // "101" at offsets 0 and 2
}

TEST(MultiPort, SwitchesOnVersionChange) {
  MultiProtocolPort port({"101", "1101"}, UpgradePlanner::kGreedy);
  const PacketReport a = port.processPacket(1, "1101");
  EXPECT_TRUE(a.switched);
  EXPECT_GT(a.switchCycles, 0);
  EXPECT_EQ(a.frameMatches, 1);
  EXPECT_EQ(port.currentVersion(), 1);
  // Back again: the reverse program exists too.
  const PacketReport b = port.processPacket(0, "101");
  EXPECT_TRUE(b.switched);
  EXPECT_EQ(b.frameMatches, 1);
  EXPECT_EQ(port.switchCount(), 2);
  EXPECT_EQ(port.totalSwitchCycles(), a.switchCycles + b.switchCycles);
}

TEST(MultiPort, ParserStatePersistsWithinAVersion) {
  // A preamble split across two packets of the same version still matches
  // (the parser FSM is not reset between packets).
  MultiProtocolPort port({"1101", "10"}, UpgradePlanner::kJsr);
  const PacketReport a = port.processPacket(0, "11");
  EXPECT_EQ(a.frameMatches, 0);
  const PacketReport b = port.processPacket(0, "01");
  EXPECT_EQ(b.frameMatches, 1);
}

TEST(MultiPort, MatchesCountLikeAFreshParserAfterSwitch) {
  Rng rng(3);
  MultiProtocolPort port({"101", "1100"}, UpgradePlanner::kEvolutionary, 7);
  const std::string stream = renderStream("1100", 5, 6, rng);
  const PacketReport report = port.processPacket(1, stream);
  EXPECT_EQ(report.frameMatches,
            countMatches(preambleParser("1100"), stream));
}

TEST(MultiPort, ProgramLengthsAreSymmetricallyAvailable) {
  MultiProtocolPort port({"10", "110", "0110"}, UpgradePlanner::kGreedy);
  for (int from = 0; from < 3; ++from)
    for (int to = 0; to < 3; ++to)
      if (from != to) {
        EXPECT_GT(port.programLength(from, to), 0);
      }
}

TEST(MultiPort, RejectsBadUsage) {
  EXPECT_THROW(MultiProtocolPort({"10"}, UpgradePlanner::kJsr),
               ContractError);
  MultiProtocolPort port({"10", "110"}, UpgradePlanner::kJsr);
  EXPECT_THROW(port.processPacket(5, "0"), ContractError);
  EXPECT_THROW(port.processPacket(0, "01x"), ContractError);
}

}  // namespace
}  // namespace rfsm::netproto
