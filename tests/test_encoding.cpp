// Tests for state-code assignment strategies and code-aware synthesis.
#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "logic/synthesize.hpp"
#include "rtl/encoding.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rfsm::rtl {
namespace {

TEST(StateCodes, BinaryIsIdentity) {
  const StateCodeMap map = assignStateCodes(6, StateEncoding::kBinary);
  EXPECT_EQ(map.width, 3);
  for (int s = 0; s < 6; ++s)
    EXPECT_EQ(map.codeOf(s), static_cast<std::uint64_t>(s));
}

TEST(StateCodes, GrayNeighboursDifferInOneBit) {
  const StateCodeMap map = assignStateCodes(16, StateEncoding::kGray);
  EXPECT_EQ(map.width, 4);
  for (int s = 0; s + 1 < 16; ++s) {
    const std::uint64_t diff = map.codeOf(s) ^ map.codeOf(s + 1);
    EXPECT_EQ(std::popcount(diff), 1) << s;
  }
}

TEST(StateCodes, OneHotHasSingleBitCodes) {
  const StateCodeMap map = assignStateCodes(5, StateEncoding::kOneHot);
  EXPECT_EQ(map.width, 5);
  for (int s = 0; s < 5; ++s)
    EXPECT_EQ(std::popcount(map.codeOf(s)), 1) << s;
}

TEST(StateCodes, CodesAreDistinct) {
  for (const auto strategy : {StateEncoding::kBinary, StateEncoding::kGray,
                              StateEncoding::kOneHot}) {
    const StateCodeMap map = assignStateCodes(12, strategy);
    std::set<std::uint64_t> seen(map.codes.begin(), map.codes.end());
    EXPECT_EQ(seen.size(), 12u) << toString(strategy);
  }
}

TEST(StateCodes, OneHotLimitedTo64) {
  EXPECT_THROW(assignStateCodes(65, StateEncoding::kOneHot), ContractError);
  EXPECT_NO_THROW(assignStateCodes(64, StateEncoding::kOneHot));
}

/// Evaluates code-aware synthesis against the machine's tables on the
/// valid-code minterms.
void expectCodeSynthesisExact(const Machine& machine,
                              StateEncoding strategy) {
  const StateCodeMap codes =
      assignStateCodes(machine.stateCount(), strategy);
  const auto synthesis = logic::synthesizeTwoLevel(machine, codes);
  const int wi = synthesis.encoding.inputWidth;
  for (SymbolId s = 0; s < machine.stateCount(); ++s) {
    for (SymbolId i = 0; i < machine.inputCount(); ++i) {
      const std::uint64_t m =
          (codes.codeOf(s) << wi) | static_cast<std::uint64_t>(i);
      const std::uint64_t nextCode = codes.codeOf(machine.next(i, s));
      const auto outCode = static_cast<std::uint64_t>(machine.output(i, s));
      for (std::size_t b = 0; b < synthesis.nextStateBits.size(); ++b)
        ASSERT_EQ(synthesis.nextStateBits[b].evaluate(m),
                  ((nextCode >> b) & 1) != 0)
            << toString(strategy) << " next bit " << b;
      for (std::size_t b = 0; b < synthesis.outputBits.size(); ++b)
        ASSERT_EQ(synthesis.outputBits[b].evaluate(m),
                  ((outCode >> b) & 1) != 0)
            << toString(strategy) << " out bit " << b;
    }
  }
}

TEST(CodeSynthesis, ExactForEveryStrategyOnFamilies) {
  for (const auto strategy : {StateEncoding::kBinary, StateEncoding::kGray,
                              StateEncoding::kOneHot}) {
    expectCodeSynthesisExact(onesDetector(), strategy);
    expectCodeSynthesisExact(counterMachine(6), strategy);
    expectCodeSynthesisExact(example41Target(), strategy);
  }
}

TEST(CodeSynthesis, BinaryOverloadMatchesDefault) {
  const Machine m = counterMachine(5);
  const auto a = logic::synthesizeTwoLevel(m);
  const auto b = logic::synthesizeTwoLevel(
      m, assignStateCodes(m.stateCount(), StateEncoding::kBinary));
  EXPECT_EQ(a.totalCubes(), b.totalCubes());
  EXPECT_EQ(a.totalLiterals(), b.totalLiterals());
}

TEST(CodeSynthesis, RejectsWrongSizedCodeMap) {
  const Machine m = counterMachine(4);
  const StateCodeMap wrong = assignStateCodes(3, StateEncoding::kBinary);
  EXPECT_THROW(logic::synthesizeTwoLevel(m, wrong), ContractError);
}

class CodeSynthesisPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CodeSynthesisPropertyTest, ExactOnRandomMachines) {
  const auto [strategyIndex, seed] = GetParam();
  const StateEncoding strategy =
      static_cast<StateEncoding>(strategyIndex);
  Rng rng(static_cast<std::uint64_t>(seed) * 401 + 3);
  RandomMachineSpec spec;
  spec.stateCount = 2 + static_cast<int>(rng.below(10));
  spec.inputCount = 1 + static_cast<int>(rng.below(3));
  spec.outputCount = 1 + static_cast<int>(rng.below(3));
  expectCodeSynthesisExact(randomMachine(spec, rng), strategy);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CodeSynthesisPropertyTest,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 6)));

}  // namespace
}  // namespace rfsm::rtl
