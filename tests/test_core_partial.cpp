// Tests for partial reconfiguration: delta classification and the
// output-only planners (greedy and Held-Karp-optimal).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/partial.hpp"
#include "core/planners.hpp"
#include "fsm/builder.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/samples.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

/// Output-only mutation: flip `count` outputs of random cells.
Machine flipOutputs(const Machine& source, int count, Rng& rng) {
  std::vector<SymbolId> next, out;
  for (SymbolId s = 0; s < source.stateCount(); ++s)
    for (SymbolId i = 0; i < source.inputCount(); ++i) {
      next.push_back(source.next(i, s));
      out.push_back(source.output(i, s));
    }
  std::vector<std::size_t> cells(out.size());
  for (std::size_t k = 0; k < cells.size(); ++k) cells[k] = k;
  rng.shuffle(cells);
  for (int k = 0; k < count; ++k) {
    auto& o = out[cells[static_cast<std::size_t>(k)]];
    SymbolId other;
    do {
      other = static_cast<SymbolId>(
          rng.below(static_cast<std::uint64_t>(source.outputCount())));
    } while (other == o);
    o = other;
  }
  // Rebuild with (state, input) cell order matching Machine's layout.
  std::vector<SymbolId> nextTable, outTable;
  std::size_t k = 0;
  for (SymbolId s = 0; s < source.stateCount(); ++s)
    for (SymbolId i = 0; i < source.inputCount(); ++i, ++k) {
      nextTable.push_back(next[k]);
      outTable.push_back(out[k]);
    }
  return Machine(source.name() + "_recolored", source.inputs(),
                 source.outputs(), source.states(), source.resetState(),
                 std::move(nextTable), std::move(outTable));
}

TEST(Classify, ParitySampleIsOutputOnly) {
  const MigrationContext context(sampleMachine("parity_even"),
                                 sampleMachine("parity_odd"));
  const DeltaClassification c = classifyDeltas(context);
  EXPECT_EQ(c.outputOnly, 4);  // every cell's output flips
  EXPECT_EQ(c.transitionOnly, 0);
  EXPECT_EQ(c.both, 0);
  EXPECT_EQ(c.structural, 0);
  EXPECT_TRUE(isOutputOnlyMigration(context));
}

TEST(Classify, Example41MixesCategories) {
  const MigrationContext context(example41Source(), example41Target());
  const DeltaClassification c = classifyDeltas(context);
  // (0,S1,S0,0): output change only; (1,S2,S3,0): target state S3 is new ->
  // structural; the two S3-row cells are structural too.
  EXPECT_EQ(c.outputOnly, 1);
  EXPECT_EQ(c.structural, 3);
  EXPECT_EQ(c.total(), context.deltaCount());
  EXPECT_FALSE(isOutputOnlyMigration(context));
}

TEST(Classify, TransitionOnlyCounted) {
  MachineBuilder a("a"), b("b");
  for (MachineBuilder* m : {&a, &b}) {
    m->addInput("0");
    m->addOutput("x");
    m->addState("P");
    m->addState("Q");
    m->setResetState("P");
    m->addTransition("0", "Q", "P", "x");
  }
  a.addTransition("0", "P", "P", "x");
  b.addTransition("0", "P", "Q", "x");  // retarget, same output
  const MigrationContext context(a.build(), b.build());
  const DeltaClassification c = classifyDeltas(context);
  EXPECT_EQ(c.transitionOnly, 1);
  EXPECT_EQ(c.total(), 1);
}

TEST(OutputOnly, GreedyPlansParityFlip) {
  const MigrationContext context(sampleMachine("parity_even"),
                                 sampleMachine("parity_odd"));
  const ReconfigurationProgram z = planOutputOnlyGreedy(context);
  const ValidationResult verdict = validateProgram(context, z);
  EXPECT_TRUE(verdict.valid) << verdict.reason;
  // No temporary transitions are ever created.
  EXPECT_EQ(z.temporaryCount(), 0);
  EXPECT_GE(z.length(), programLowerBound(context));
}

TEST(OutputOnly, OptimalNoWorseThanGreedyAndJsr) {
  Rng rng(31);
  RandomMachineSpec spec;
  spec.stateCount = 8;
  spec.inputCount = 2;
  spec.outputCount = 3;
  const Machine source = randomMachine(spec, rng);
  const Machine target = flipOutputs(source, 6, rng);
  const MigrationContext context(source, target);
  ASSERT_TRUE(isOutputOnlyMigration(context));
  ASSERT_EQ(context.deltaCount(), 6);

  const ReconfigurationProgram greedy = planOutputOnlyGreedy(context);
  const auto optimal = planOutputOnlyOptimal(context);
  ASSERT_TRUE(optimal.has_value());
  EXPECT_TRUE(validateProgram(context, greedy).valid);
  EXPECT_TRUE(validateProgram(context, *optimal).valid);
  EXPECT_LE(optimal->length(), greedy.length());
  EXPECT_LE(optimal->length(), planJsr(context).length());
}

TEST(OutputOnly, OptimalMatchesExhaustiveDecoder) {
  // On small instances the static-graph optimum can also be cross-checked
  // against the general exact planner (which may use temporaries and so can
  // only be shorter or equal... in fact output-only optimal with walks can
  // beat the paper decoder's reset+temp connections, so just require both
  // valid and optimal-within-family).
  Rng rng(37);
  RandomMachineSpec spec;
  spec.stateCount = 6;
  const Machine source = randomMachine(spec, rng);
  const Machine target = flipOutputs(source, 4, rng);
  const MigrationContext context(source, target);
  const auto optimal = planOutputOnlyOptimal(context);
  ASSERT_TRUE(optimal.has_value());
  EXPECT_TRUE(validateProgram(context, *optimal).valid);
  const auto exactGeneral = planExact(context, 8);
  ASSERT_TRUE(exactGeneral.has_value());
  EXPECT_TRUE(validateProgram(context, *exactGeneral).valid);
}

TEST(OutputOnly, RefusesMixedMigrations) {
  const MigrationContext context(example41Source(), example41Target());
  EXPECT_THROW(planOutputOnlyGreedy(context), MigrationError);
  EXPECT_THROW(planOutputOnlyOptimal(context), MigrationError);
}

TEST(OutputOnly, OptimalRefusesLargeInstances) {
  Rng rng(41);
  RandomMachineSpec spec;
  spec.stateCount = 10;
  spec.outputCount = 2;
  const Machine source = randomMachine(spec, rng);
  const Machine target = flipOutputs(source, 16, rng);
  const MigrationContext context(source, target);
  EXPECT_FALSE(planOutputOnlyOptimal(context, /*maxDeltas=*/8).has_value());
}

TEST(OutputOnly, ZeroDeltasYieldsResetOnly) {
  const Machine m = sampleMachine("parity_even");
  const MigrationContext context(m, m);
  ASSERT_TRUE(isOutputOnlyMigration(context));
  const auto optimal = planOutputOnlyOptimal(context);
  ASSERT_TRUE(optimal.has_value());
  EXPECT_EQ(optimal->length(), 1);  // just the reset into S0'
  EXPECT_TRUE(validateProgram(context, *optimal).valid);
}

/// Property sweep: output-only plans validate and never use temporaries.
class OutputOnlyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OutputOnlyPropertyTest, PlansValidateWithoutTemporaries) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 503 + 7);
  RandomMachineSpec spec;
  spec.stateCount = 4 + static_cast<int>(rng.below(10));
  spec.inputCount = 1 + static_cast<int>(rng.below(3));
  spec.outputCount = 2 + static_cast<int>(rng.below(3));
  const Machine source = randomMachine(spec, rng);
  const int cells = source.stateCount() * source.inputCount();
  const int flips = 1 + static_cast<int>(rng.below(
      static_cast<std::uint64_t>(std::min(cells, 10))));
  const Machine target = flipOutputs(source, flips, rng);
  const MigrationContext context(source, target);
  ASSERT_TRUE(isOutputOnlyMigration(context));

  const ReconfigurationProgram greedy = planOutputOnlyGreedy(context);
  EXPECT_TRUE(validateProgram(context, greedy).valid);
  EXPECT_EQ(greedy.temporaryCount(), 0);
  if (const auto optimal = planOutputOnlyOptimal(context)) {
    EXPECT_TRUE(validateProgram(context, *optimal).valid);
    EXPECT_LE(optimal->length(), greedy.length());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OutputOnlyPropertyTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace rfsm
