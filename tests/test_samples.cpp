// Tests for the bundled sample controllers and their migration pairs.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/bounds.hpp"
#include "core/jsr.hpp"
#include "core/partial.hpp"
#include "core/planners.hpp"
#include "fsm/analysis.hpp"
#include "fsm/builder.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/kiss.hpp"
#include "fsm/simulate.hpp"
#include "gen/samples.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(Samples, AllNamesLoadAndAreConnected) {
  for (const auto& name : sampleNames()) {
    const Machine m = sampleMachine(name);
    EXPECT_EQ(m.name(), name);
    EXPECT_TRUE(isConnectedFromReset(m)) << name;
  }
}

TEST(Samples, UnknownNameThrows) {
  EXPECT_THROW(sampleMachine("nope"), FsmError);
}

TEST(Samples, Kiss2RoundTripsEverySample) {
  for (const auto& name : sampleNames()) {
    const Machine m = sampleMachine(name);
    const Machine back =
        machineFromKiss2(parseKiss2(sampleKiss2(name)), name);
    EXPECT_TRUE(areEquivalent(m, back)) << name;
  }
}

TEST(Samples, TrafficV1CyclesRegardlessOfSensor) {
  const Machine m = sampleMachine("traffic_v1");
  EXPECT_EQ(runOnNames(m, {"0", "0", "0", "0"}),
            (std::vector<std::string>{"01", "10", "11", "00"}));
  EXPECT_EQ(runOnNames(m, {"1", "1", "1", "1"}),
            (std::vector<std::string>{"01", "10", "11", "00"}));
}

TEST(Samples, TrafficV2WaitsForSensor) {
  const Machine m = sampleMachine("traffic_v2");
  // No car: highway stays green forever.
  EXPECT_EQ(runOnNames(m, {"0", "0", "0"}),
            (std::vector<std::string>{"00", "00", "00"}));
  // Car arrives: the cycle starts.
  EXPECT_EQ(runOnNames(m, {"0", "1", "0", "0"}),
            (std::vector<std::string>{"00", "01", "10", "11"}));
}

TEST(Samples, VendingV1VendsAtFifteen) {
  const Machine m = sampleMachine("vending_v1");
  // nickel + dime = 15 -> vend.
  EXPECT_EQ(runOnNames(m, {"01", "10"}),
            (std::vector<std::string>{"0", "1"}));
  // dime + nickel = 15 -> vend.
  EXPECT_EQ(runOnNames(m, {"10", "01"}),
            (std::vector<std::string>{"0", "1"}));
  // three nickels = 15 -> vend.
  EXPECT_EQ(runOnNames(m, {"01", "01", "01"}),
            (std::vector<std::string>{"0", "0", "1"}));
}

TEST(Samples, VendingV2NeedsTwenty) {
  const Machine m = sampleMachine("vending_v2");
  // nickel + dime = 15: no vend yet; another nickel vends.
  EXPECT_EQ(runOnNames(m, {"01", "10", "01"}),
            (std::vector<std::string>{"0", "0", "1"}));
  // two dimes = 20 -> vend.
  EXPECT_EQ(runOnNames(m, {"10", "10"}),
            (std::vector<std::string>{"0", "1"}));
}

TEST(Samples, HdlcDetectsFlag) {
  const Machine m = sampleMachine("hdlc_v1");
  const std::string flag = "01111110";
  std::vector<std::string> word;
  for (char c : flag) word.emplace_back(1, c);
  const auto out = runOnNames(m, word);
  EXPECT_EQ(out.back(), "1");
  for (std::size_t k = 0; k + 1 < out.size(); ++k) EXPECT_EQ(out[k], "0");
}

TEST(Samples, ParityPairIsOutputOnly) {
  const MigrationContext context(sampleMachine("parity_even"),
                                 sampleMachine("parity_odd"));
  EXPECT_TRUE(isOutputOnlyMigration(context));
}

TEST(Samples, AllMigrationPairsPlanAndValidate) {
  for (const SampleMigration& pair : sampleMigrations()) {
    const MigrationContext context(pair.source, pair.target);
    EXPECT_GT(context.deltaCount(), 0) << pair.name;

    const ReconfigurationProgram jsr = planJsr(context);
    EXPECT_TRUE(validateProgram(context, jsr).valid) << pair.name;

    EvolutionConfig config;
    config.generations = 40;
    Rng rng(5);
    const ReconfigurationProgram ea =
        planEvolutionary(context, config, rng).program;
    EXPECT_TRUE(validateProgram(context, ea).valid) << pair.name;
    EXPECT_LE(ea.length(), jsrUpperBound(context)) << pair.name;
    EXPECT_GE(ea.length(), programLowerBound(context)) << pair.name;
  }
}

TEST(Samples, VendingUpgradeAddsStructuralDeltas) {
  const MigrationContext context(sampleMachine("vending_v1"),
                                 sampleMachine("vending_v2"));
  const DeltaClassification c = classifyDeltas(context);
  EXPECT_GT(c.structural, 0);  // the new C15 state's row
}

}  // namespace
}  // namespace rfsm
