// Tests for the workload generator and the named machine families.
#include <gtest/gtest.h>

#include "fsm/analysis.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/simulate.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "gen/mutator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(Generator, RespectsSpecSizes) {
  Rng rng(1);
  RandomMachineSpec spec;
  spec.stateCount = 9;
  spec.inputCount = 3;
  spec.outputCount = 4;
  spec.name = "g";
  const Machine m = randomMachine(spec, rng);
  EXPECT_EQ(m.stateCount(), 9);
  EXPECT_EQ(m.inputCount(), 3);
  EXPECT_EQ(m.outputCount(), 4);
  EXPECT_EQ(m.name(), "g");
  EXPECT_EQ(m.states().name(m.resetState()), "S0");
}

TEST(Generator, ConnectedFromResetWhenRequested) {
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    RandomMachineSpec spec;
    spec.stateCount = 3 + static_cast<int>(rng.below(15));
    spec.inputCount = 1 + static_cast<int>(rng.below(3));
    const Machine m = randomMachine(spec, rng);
    EXPECT_TRUE(isConnectedFromReset(m)) << "round " << round;
  }
}

TEST(Generator, DeterministicForSeed) {
  RandomMachineSpec spec;
  Rng a(42), b(42);
  EXPECT_TRUE(randomMachine(spec, a) == randomMachine(spec, b));
}

TEST(Generator, SingleStateMachineWorks) {
  Rng rng(3);
  RandomMachineSpec spec;
  spec.stateCount = 1;
  const Machine m = randomMachine(spec, rng);
  EXPECT_EQ(m.stateCount(), 1);
  EXPECT_TRUE(isConnectedFromReset(m));
}

TEST(Generator, RejectsDegenerateSpecs) {
  Rng rng(4);
  RandomMachineSpec spec;
  spec.stateCount = 0;
  EXPECT_THROW(randomMachine(spec, rng), ContractError);
}

TEST(Families, OnesDetectorMatchesVhdlSpec) {
  // Example 2.1: output 1 while two or more successive ones.
  const Machine m = onesDetector();
  EXPECT_EQ(runOnNames(m, {"1"}), std::vector<std::string>{"0"});
  EXPECT_EQ(runOnNames(m, {"1", "1"}),
            (std::vector<std::string>{"0", "1"}));
  EXPECT_EQ(runOnNames(m, {"1", "1", "0", "1", "1", "1"}),
            (std::vector<std::string>{"0", "1", "0", "0", "1", "1"}));
}

TEST(Families, ZerosDetectorMatchesTable1Result) {
  // The Table 1 reconfiguration result: output 1 on a zero in S0.
  const Machine m = zerosDetector();
  EXPECT_EQ(runOnNames(m, {"0", "0"}),
            (std::vector<std::string>{"1", "1"}));
  EXPECT_EQ(runOnNames(m, {"1", "0", "0"}),
            (std::vector<std::string>{"0", "0", "1"}));
}

TEST(Families, Example41PairIsConsistent) {
  const Machine m = example41Source();
  const Machine t = example41Target();
  EXPECT_EQ(m.stateCount(), 3);
  EXPECT_EQ(t.stateCount(), 4);
  EXPECT_TRUE(isConnectedFromReset(m));
  EXPECT_TRUE(isConnectedFromReset(t));
}

TEST(Families, Example42RingShape) {
  const Machine m = example42Source();
  // S0 -1-> S1 -1-> S2 -1-> S3, self-loop under 0 everywhere.
  const SymbolId in1 = m.inputs().at("1");
  EXPECT_EQ(m.states().name(m.next(in1, m.states().at("S0"))), "S1");
  EXPECT_EQ(m.states().name(m.next(in1, m.states().at("S2"))), "S3");
  const SymbolId in0 = m.inputs().at("0");
  EXPECT_TRUE(m.isStableTotalState(in0, m.states().at("S1")));
}

TEST(Families, CounterCountsModulo) {
  const Machine m = counterMachine(4);
  EXPECT_TRUE(m.isMoore());
  EXPECT_EQ(runOnNames(m, {"up", "up", "up", "up", "up"}),
            (std::vector<std::string>{"c1", "c2", "c3", "c0", "c1"}));
  EXPECT_EQ(runOnNames(m, {"down"}), std::vector<std::string>{"c3"});
}

TEST(Families, SequenceDetectorFindsOverlappingMatches) {
  const Machine m = sequenceDetector("101");
  EXPECT_EQ(runOnNames(m, {"1", "0", "1", "0", "1"}),
            (std::vector<std::string>{"0", "0", "1", "0", "1"}));
}

TEST(Families, SequenceDetectorSingleCharacter) {
  const Machine m = sequenceDetector("1");
  EXPECT_EQ(runOnNames(m, {"1", "1", "0"}),
            (std::vector<std::string>{"1", "1", "0"}));
}

TEST(Families, SequenceDetectorRunPattern) {
  const Machine m = sequenceDetector("111");
  EXPECT_EQ(runOnNames(m, {"1", "1", "1", "1"}),
            (std::vector<std::string>{"0", "0", "1", "1"}));
}

TEST(Families, SequenceDetectorRejectsBadPatterns) {
  EXPECT_THROW(sequenceDetector(""), ContractError);
  EXPECT_THROW(sequenceDetector("10x"), ContractError);
}

TEST(Mutator, KeepsAlphabetsAndReset) {
  Rng rng(11);
  RandomMachineSpec spec;
  const Machine m = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.deltaCount = 4;
  const Machine t = mutateMachine(m, mutation, rng);
  EXPECT_EQ(t.inputCount(), m.inputCount());
  EXPECT_EQ(t.outputCount(), m.outputCount());
  EXPECT_EQ(t.resetState(), m.resetState());
  EXPECT_EQ(t.stateCount(), m.stateCount());
  EXPECT_EQ(t.name(), "mutated");
}

TEST(Mutator, NewStateNamesAreFresh) {
  Rng rng(13);
  RandomMachineSpec spec;
  spec.stateCount = 3;
  spec.inputCount = 1;
  const Machine m = randomMachine(spec, rng);
  MutationSpec mutation;
  mutation.newStateCount = 2;
  mutation.deltaCount = 2 * (1 + 1);
  const Machine t = mutateMachine(m, mutation, rng);
  EXPECT_EQ(t.stateCount(), 5);
  // All old names survive; new names are distinct from them.
  for (const auto& n : m.states().names())
    EXPECT_TRUE(t.states().containsName(n));
}

}  // namespace
}  // namespace rfsm
