// Tests for the rfsmc command-line front end (via the cli library).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "tools/cli.hpp"
#include "util/trace.hpp"

namespace rfsm::cli {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = runCli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, HelpListsCommands) {
  const CliRun r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("migrate"), std::string::npos);
  EXPECT_NE(r.out.find("vhdl"), std::string::npos);
  // No args behaves like help.
  EXPECT_EQ(run({}).code, 0);
}

TEST(Cli, UnknownCommandFailsWithUsageCode) {
  const CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.code, 64);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, InfoOnSample) {
  const CliRun r = run({"info", "sample:traffic_v1"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("states:      4"), std::string::npos);
  EXPECT_NE(r.out.find("connected:   yes"), std::string::npos);
}

TEST(Cli, InfoUnknownSampleFails) {
  const CliRun r = run({"info", "sample:missing"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown sample"), std::string::npos);
}

TEST(Cli, InfoUnreadableFileFails) {
  const CliRun r = run({"info", "/nonexistent/machine.json"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, BadExtensionRejected) {
  const CliRun r = run({"info", "/etc/hostname"});
  EXPECT_EQ(r.code, 1);
}

TEST(Cli, DotEmitsGraph) {
  const CliRun r = run({"dot", "sample:parity_even"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("digraph"), std::string::npos);
  EXPECT_NE(r.out.find("EVEN"), std::string::npos);
}

TEST(Cli, ConvertToJsonAndKiss2) {
  const CliRun json = run({"convert", "sample:vending_v1", "--to", "json"});
  EXPECT_EQ(json.code, 0);
  EXPECT_NE(json.out.find("\"transitions\""), std::string::npos);
  const CliRun kiss = run({"convert", "sample:vending_v1", "--to", "kiss2"});
  EXPECT_EQ(kiss.code, 0);
  EXPECT_NE(kiss.out.find(".i 2"), std::string::npos);
  const CliRun bad = run({"convert", "sample:vending_v1", "--to", "xml"});
  EXPECT_EQ(bad.code, 1);
}

TEST(Cli, MigratePlansEveryPlanner) {
  for (const char* planner :
       {"jsr", "greedy", "ea", "exact", "2opt", "anneal", "optimal"}) {
    const CliRun r = run({"migrate", "sample:parity_even",
                          "sample:parity_odd", "--planner", planner});
    EXPECT_EQ(r.code, 0) << planner << ": " << r.err;
    EXPECT_NE(r.out.find("valid: yes"), std::string::npos) << planner;
  }
}

TEST(Cli, MigrateTableMode) {
  const CliRun r = run({"migrate", "sample:traffic_v1", "sample:traffic_v2",
                        "--planner", "jsr", "--table"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("H_f(r)"), std::string::npos);
}

TEST(Cli, MigrateUnknownPlannerFails) {
  const CliRun r = run({"migrate", "sample:parity_even",
                        "sample:parity_odd", "--planner", "magic"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown planner"), std::string::npos);
}

TEST(Cli, VhdlEmitsEntity) {
  const CliRun r = run({"vhdl", "sample:parity_even", "sample:parity_odd",
                        "--entity", "parity_flip"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("ENTITY parity_flip IS"), std::string::npos);
  EXPECT_NE(r.out.find("END rtl;"), std::string::npos);
}

TEST(Cli, SynthReportsBothImplementations) {
  const CliRun r = run({"synth", "sample:hdlc_v1"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("4-LUTs"), std::string::npos);
  EXPECT_NE(r.out.find("BlockRAM"), std::string::npos);
}

TEST(Cli, SamplesListAndDump) {
  const CliRun list = run({"samples"});
  EXPECT_EQ(list.code, 0);
  EXPECT_NE(list.out.find("traffic_v1"), std::string::npos);
  const CliRun dump = run({"samples", "vending_v2"});
  EXPECT_EQ(dump.code, 0);
  EXPECT_NE(dump.out.find(".r C0"), std::string::npos);
}

TEST(Cli, ChainPlansReleaseTrain) {
  const CliRun r = run({"chain", "sample:traffic_v1", "sample:traffic_v2",
                        "--planner", "greedy"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("traffic_v1 -> traffic_v2"), std::string::npos);
  EXPECT_NE(r.out.find("total upgrade"), std::string::npos);
  // One machine is not a chain.
  EXPECT_EQ(run({"chain", "sample:traffic_v1"}).code, 1);
  EXPECT_EQ(run({"chain", "sample:traffic_v1", "sample:traffic_v2",
                 "--planner", "magic"})
                .code,
            1);
}

TEST(Cli, TestbenchEmitsSelfCheckingBench) {
  const CliRun r = run({"testbench", "sample:parity_even",
                        "sample:parity_odd", "--entity", "parity"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("ENTITY parity_tb IS"), std::string::npos);
  EXPECT_NE(r.out.find("ENTITY work.parity"), std::string::npos);
  EXPECT_NE(r.out.find("ASSERT"), std::string::npos);
  EXPECT_NE(r.out.find("testbench passed"), std::string::npos);
}

TEST(Cli, ReportProducesOnePager) {
  const CliRun r = run({"report", "sample:vending_v1", "sample:vending_v2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("# Migration report"), std::string::npos);
  EXPECT_NE(r.out.find("| JSR"), std::string::npos);
  EXPECT_NE(r.out.find("downtime:"), std::string::npos);
  EXPECT_EQ(run({"report", "sample:vending_v1"}).code, 1);
}

TEST(Cli, InfoStatsFlag) {
  const CliRun r = run({"info", "sample:hdlc_v1", "--stats"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("diameter"), std::string::npos);
  EXPECT_NE(r.out.find("mean distinct successors"), std::string::npos);
}

TEST(Cli, EquivBothEngines) {
  const CliRun same = run({"equiv", "sample:parity_even",
                           "sample:parity_even"});
  EXPECT_EQ(same.code, 0);
  EXPECT_NE(same.out.find("equivalent: yes"), std::string::npos);
  const CliRun diff = run({"equiv", "sample:parity_even",
                           "sample:parity_odd"});
  EXPECT_EQ(diff.code, 2);
  EXPECT_NE(diff.out.find("counterexample"), std::string::npos);
  const CliRun sym = run({"equiv", "sample:parity_even",
                          "sample:parity_odd", "--symbolic"});
  EXPECT_EQ(sym.code, 2);
  EXPECT_NE(sym.out.find("BDD nodes"), std::string::npos);
}

TEST(Cli, MissingArgumentsReportUsage) {
  EXPECT_EQ(run({"info"}).code, 1);
  EXPECT_EQ(run({"migrate", "sample:parity_even"}).code, 1);
  EXPECT_EQ(run({"vhdl", "sample:parity_even"}).code, 1);
}

TEST(Cli, ReportTelemetryFormats) {
  const CliRun csv = run({"report", "sample:traffic_v1", "sample:traffic_v2",
                          "--telemetry", "csv"});
  EXPECT_EQ(csv.code, 0) << csv.err;
  EXPECT_NE(csv.out.find("```csv"), std::string::npos);
  EXPECT_NE(csv.out.find("kind,name,value,count,total_ms"),
            std::string::npos);
  const CliRun json = run({"report", "sample:traffic_v1", "sample:traffic_v2",
                           "--telemetry", "json"});
  EXPECT_EQ(json.code, 0) << json.err;
  EXPECT_NE(json.out.find("```json"), std::string::npos);
  EXPECT_NE(json.out.find("\"counters\""), std::string::npos);
  EXPECT_EQ(run({"report", "sample:traffic_v1", "sample:traffic_v2",
                 "--telemetry", "xml"})
                .code,
            1);
}

TEST(Cli, MigrateProgramOutRoundtrips) {
  const std::string path = ::testing::TempDir() + "rfsm_prog.txt";
  const CliRun r = run({"migrate", "sample:traffic_v1", "sample:traffic_v2",
                        "--planner", "jsr", "--program-out", path});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("rfsm-program v1"), std::string::npos);
  // The written program feeds straight back into inject --program.
  const CliRun replay = run({"inject", "sample:traffic_v1",
                             "sample:traffic_v2", "--program", path,
                             "--flips", "0", "--seed", "1"});
  EXPECT_EQ(replay.code, 0) << replay.err;
}

TEST(Cli, InjectCleanRunVerifies) {
  const CliRun r = run({"inject", "sample:traffic_v1", "sample:traffic_v2",
                        "--flips", "0", "--seed", "7"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("outcome:        verified"), std::string::npos);
}

TEST(Cli, InjectWithFlipsRecovers) {
  // Seeded flips: every run must end verified (0) or rolled back (3).
  for (const char* seed : {"1", "2", "3", "4"}) {
    const CliRun r = run({"inject", "sample:traffic_v1", "sample:traffic_v2",
                          "--flips", "2", "--seed", seed});
    EXPECT_TRUE(r.code == 0 || r.code == 3) << "seed " << seed << ": "
                                            << r.err;
    EXPECT_NE(r.out.find("outcome:"), std::string::npos);
  }
}

TEST(Cli, InjectJournalResumeFlow) {
  const std::string path = ::testing::TempDir() + "rfsm_journal.txt";
  const CliRun inject =
      run({"inject", "sample:traffic_v1", "sample:traffic_v2", "--abort-step",
           "1", "--flips", "0", "--journal-out", path});
  EXPECT_EQ(inject.code, 0) << inject.err;
  EXPECT_NE(inject.out.find("power loss"), std::string::npos);
  const CliRun resume = run({"resume", "sample:traffic_v1",
                             "sample:traffic_v2", "--journal", path});
  EXPECT_EQ(resume.code, 0) << resume.err;
  EXPECT_NE(resume.out.find("journal:"), std::string::npos);
  EXPECT_NE(resume.out.find("outcome:        verified"), std::string::npos);
}

TEST(Cli, ResumeMissingJournalNamesFile) {
  const CliRun r = run({"resume", "sample:traffic_v1", "sample:traffic_v2",
                        "--journal", "/nonexistent/journal.txt"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("/nonexistent/journal.txt"), std::string::npos);
}

TEST(Cli, CorruptMachineFileNamesFileAndFails) {
  const std::string path = ::testing::TempDir() + "rfsm_truncated.kiss";
  {
    std::ofstream out(path);
    out << ".i 2\n.o 1\n.r S0\n00 S0";  // cut mid-row
  }
  const CliRun r = run({"info", path});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find(path), std::string::npos) << r.err;

  const std::string jsonPath = ::testing::TempDir() + "rfsm_corrupt.json";
  {
    std::ofstream out(jsonPath);
    out << "{\"name\": \"x\", \"transitions\": [";  // truncated JSON
  }
  const CliRun j = run({"info", jsonPath});
  EXPECT_EQ(j.code, 1);
  EXPECT_NE(j.err.find(jsonPath), std::string::npos) << j.err;
  EXPECT_NE(j.err.find("offset"), std::string::npos) << j.err;
}

TEST(Cli, CorruptProgramFileNamesFileAndFails) {
  const std::string path = ::testing::TempDir() + "rfsm_bad_prog.txt";
  {
    std::ofstream out(path);
    out << "rfsm-program v1\nsteps 5\nreset\n";  // truncated program
  }
  const CliRun r = run({"inject", "sample:traffic_v1", "sample:traffic_v2",
                        "--program", path});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find(path), std::string::npos) << r.err;
}

TEST(Cli, TraceOutWritesNestedSpansAndKeepsOutputIdentical) {
  // The same migrate run with tracing off, then on: stdout bit-identical
  // (tracing observes, never steers), and the trace file carries nested
  // spans from the planner stack.
  const CliRun plain = run({"migrate", "sample:traffic_v1",
                            "sample:traffic_v2", "--planner", "ea",
                            "--seed", "7"});
  ASSERT_EQ(plain.code, 0);

  const std::string path = ::testing::TempDir() + "rfsm_cli_trace.json";
  const CliRun traced = run({"migrate", "sample:traffic_v1",
                             "sample:traffic_v2", "--planner", "ea",
                             "--seed", "7", "--trace-out", path});
  EXPECT_EQ(traced.code, 0);
  EXPECT_EQ(traced.out, plain.out);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"planner.ea\""), std::string::npos);
  EXPECT_NE(json.find("\"planner.decode\""), std::string::npos);
  EXPECT_NE(json.find("\"planner.validate\""), std::string::npos);
  trace::setEnabled(false);
  trace::clear();
}

TEST(Cli, TraceOutCoversGuardedMigrationEventLog) {
  const std::string path = ::testing::TempDir() + "rfsm_cli_inject_trace.json";
  const CliRun r = run({"inject", "sample:traffic_v1", "sample:traffic_v2",
                        "--flips", "1", "--seed", "3", "--trace-out", path});
  EXPECT_TRUE(r.code == 0 || r.code == 3) << r.out;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  // The correlated migration track plus its instant-event log.
  EXPECT_NE(json.find("\"migration\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cell.write\""), std::string::npos);
  EXPECT_NE(json.find("\"fault.inject\""), std::string::npos);
  EXPECT_NE(json.find("\"verify.verdict\""), std::string::npos);
  trace::setEnabled(false);
  trace::clear();
}

TEST(Cli, ReportTelemetryJsonIncludesHistogramPercentiles) {
  const CliRun r = run({"report", "sample:traffic_v1", "sample:traffic_v2",
                        "--telemetry", "json"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("\"histograms\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"p99_ms\""), std::string::npos) << r.out;
}

}  // namespace
}  // namespace rfsm::cli
