// Tests for Moore-machine views and the Mealy -> Moore conversion.
#include <gtest/gtest.h>

#include "fsm/builder.hpp"
#include "fsm/equivalence.hpp"
#include "fsm/moore.hpp"
#include "gen/families.hpp"
#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace rfsm {
namespace {

TEST(MooreView, CounterHasStateOutputs) {
  const Machine m = counterMachine(4);
  const auto outputs = mooreStateOutputs(m);
  ASSERT_TRUE(outputs.has_value());
  for (SymbolId s = 0; s < m.stateCount(); ++s) {
    // State Ck is labelled ck.
    EXPECT_EQ(m.outputs().name((*outputs)[static_cast<std::size_t>(s)]),
              "c" + m.states().name(s).substr(1));
  }
}

TEST(MooreView, MealyMachineHasNone) {
  EXPECT_FALSE(mooreStateOutputs(onesDetector()).has_value());
}

TEST(MooreView, UnenteredStateGetsNoSymbol) {
  MachineBuilder b("island");
  b.addInput("0");
  b.addOutput("x");
  b.addState("A");
  b.addState("B");
  b.setResetState("A");
  b.addTransition("0", "A", "A", "x");
  b.addTransition("0", "B", "A", "x");
  const Machine m = b.build();
  const auto outputs = mooreStateOutputs(m);
  ASSERT_TRUE(outputs.has_value());
  EXPECT_EQ((*outputs)[static_cast<std::size_t>(m.states().at("B"))],
            kNoSymbol);
}

TEST(MooreFromMealy, OnesDetectorConverts) {
  const Machine mealy = onesDetector();
  const Machine moore = mooreFromMealy(mealy);
  EXPECT_TRUE(moore.isMoore());
  EXPECT_TRUE(areEquivalent(mealy, moore));
  // Split bound: |S| * |O| + 1 fresh reset state.
  EXPECT_LE(moore.stateCount(), mealy.stateCount() * mealy.outputCount() + 1);
}

TEST(MooreFromMealy, MooreInputIsAlreadyMooreAndStaysEquivalent) {
  const Machine counter = counterMachine(3);
  const Machine converted = mooreFromMealy(counter);
  EXPECT_TRUE(converted.isMoore());
  EXPECT_TRUE(areEquivalent(counter, converted));
}

TEST(MooreFromMealy, SplitStateNamesAreReadable) {
  const Machine moore = mooreFromMealy(onesDetector());
  EXPECT_TRUE(moore.states().containsName("S0@-"));  // fresh reset
  EXPECT_TRUE(moore.states().containsName("S1@0") ||
              moore.states().containsName("S1@1"));
}

/// Property sweep: conversion always yields an equivalent Moore machine.
class MoorePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MoorePropertyTest, ConversionIsEquivalentAndMoore) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 67 + 29);
  RandomMachineSpec spec;
  spec.stateCount = 2 + static_cast<int>(rng.below(8));
  spec.inputCount = 1 + static_cast<int>(rng.below(3));
  spec.outputCount = 1 + static_cast<int>(rng.below(4));
  const Machine mealy = randomMachine(spec, rng);
  const Machine moore = mooreFromMealy(mealy);
  EXPECT_TRUE(moore.isMoore());
  EXPECT_TRUE(areEquivalent(mealy, moore));
  EXPECT_LE(moore.stateCount(),
            mealy.stateCount() * mealy.outputCount() + 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MoorePropertyTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace rfsm
