// Transport-layer tests: cancellation tokens, backoff schedule, message
// encoding, frame I/O over real socketpairs, and the named fault scenarios.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "service/protocol.hpp"
#include "util/deadline.hpp"
#include "util/fault.hpp"
#include "util/ipc.hpp"
#include "util/supervisor.hpp"

namespace rfsm {
namespace {

using namespace std::chrono_literals;

// --- CancelToken ---------------------------------------------------------

TEST(CancelToken, FreshTokenIsNotExpired) {
  CancelToken token;
  EXPECT_FALSE(token.expired());
  EXPECT_FALSE(token.deadline().has_value());
  EXPECT_FALSE(token.remaining().has_value());
  EXPECT_NO_THROW(token.throwIfExpired("test"));
}

TEST(CancelToken, CancelIsSticky) {
  CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.expired());
  EXPECT_THROW(token.throwIfExpired("here"), CancelledError);
}

TEST(CancelToken, PastDeadlineExpires) {
  CancelToken token;
  token.setDeadline(CancelToken::Clock::now() - 1ms);
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.remaining()->count(), 0);
}

TEST(CancelToken, FutureDeadlineDoesNotExpireYet) {
  CancelToken token(std::chrono::milliseconds(60000));
  EXPECT_FALSE(token.expired());
  EXPECT_GT(token.remaining()->count(), 0);
}

TEST(CancelToken, ThrowNamesThePollSite) {
  CancelToken token;
  token.cancel();
  try {
    pollCancel(&token, "planner.bfs");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& error) {
    EXPECT_NE(std::string(error.what()).find("planner.bfs"),
              std::string::npos);
  }
}

TEST(CancelToken, PollCancelIgnoresNull) {
  EXPECT_NO_THROW(pollCancel(nullptr, "anywhere"));
}

// --- Backoff schedule ----------------------------------------------------

TEST(Backoff, GrowsExponentiallyAndCaps) {
  const auto base = 25ms, cap = 1000ms;
  EXPECT_EQ(backoffDelay(1, base, cap, 0.0), 25ms);
  EXPECT_EQ(backoffDelay(2, base, cap, 0.0), 50ms);
  EXPECT_EQ(backoffDelay(3, base, cap, 0.0), 100ms);
  EXPECT_EQ(backoffDelay(10, base, cap, 0.0), 1000ms);  // capped
  EXPECT_EQ(backoffDelay(1000, base, cap, 0.0), 1000ms);  // no overflow
}

TEST(Backoff, JitterAddsAtMostOneBase) {
  const auto base = 25ms, cap = 1000ms;
  EXPECT_EQ(backoffDelay(1, base, cap, 1.0), 50ms);
  EXPECT_LE(backoffDelay(30, base, cap, 1.0), cap + base);
}

// --- Message encoding ----------------------------------------------------

TEST(Message, RoundTripsAllFieldTypes) {
  ipc::MessageWriter writer;
  writer.u32(0xdeadbeefu);
  writer.u64(0x0123456789abcdefull);
  writer.i64(-42);
  writer.str("hello \0 world");  // string_view stops at the literal's \0
  writer.str("");
  ipc::MessageReader reader(writer.data());
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.i64(), -42);
  EXPECT_EQ(reader.str(), "hello ");
  EXPECT_EQ(reader.str(), "");
  EXPECT_TRUE(reader.atEnd());
  EXPECT_NO_THROW(reader.expectEnd());
}

TEST(Message, EmbeddedNulAndBinaryBytesSurvive) {
  std::string binary("\x00\x01\xff\x7f", 4);
  ipc::MessageWriter writer;
  writer.str(binary);
  ipc::MessageReader reader(writer.data());
  EXPECT_EQ(reader.str(), binary);
}

TEST(Message, TruncationThrowsNotMisparses) {
  ipc::MessageWriter writer;
  writer.u64(7);
  writer.str("payload");
  const std::string full = writer.data();
  // Every proper prefix must fail loudly on some read.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);
    ipc::MessageReader reader(prefix);
    EXPECT_THROW(
        {
          reader.u64();
          reader.str();
          reader.expectEnd();
        },
        ipc::IpcError)
        << "prefix of " << cut << " bytes parsed silently";
  }
}

TEST(Message, LeftoverBytesAreAnError) {
  ipc::MessageWriter writer;
  writer.u32(1);
  writer.u32(2);
  ipc::MessageReader reader(writer.data());
  reader.u32();
  EXPECT_THROW(reader.expectEnd(), ipc::IpcError);
}

// --- Frames over a socketpair -------------------------------------------

struct SocketPair {
  ipc::Fd a, b;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = ipc::Fd(fds[0]);
    b = ipc::Fd(fds[1]);
  }
};

TEST(Frames, RoundTrip) {
  SocketPair pair;
  ipc::writeFrame(pair.a.get(), "the payload");
  std::string payload;
  EXPECT_EQ(ipc::readFrame(pair.b.get(), payload), ipc::ReadStatus::kOk);
  EXPECT_EQ(payload, "the payload");
}

TEST(Frames, EmptyPayloadIsAValidFrame) {
  SocketPair pair;
  ipc::writeFrame(pair.a.get(), "");
  std::string payload = "stale";
  EXPECT_EQ(ipc::readFrame(pair.b.get(), payload), ipc::ReadStatus::kOk);
  EXPECT_EQ(payload, "");
}

TEST(Frames, PeerCloseReadsAsEof) {
  SocketPair pair;
  pair.a.reset();
  std::string payload;
  EXPECT_EQ(ipc::readFrame(pair.b.get(), payload), ipc::ReadStatus::kEof);
}

TEST(Frames, TornFrameReadsAsEof) {
  SocketPair pair;
  // Length prefix promising 100 bytes, then death after 3.
  const std::uint32_t length = 100;
  ASSERT_EQ(write(pair.a.get(), &length, 4), 4);
  ASSERT_EQ(write(pair.a.get(), "abc", 3), 3);
  pair.a.reset();
  std::string payload;
  EXPECT_EQ(ipc::readFrame(pair.b.get(), payload), ipc::ReadStatus::kEof);
}

TEST(Frames, DeadlineTurnsSilenceIntoTimeout) {
  SocketPair pair;
  CancelToken cancel(std::chrono::milliseconds(50));
  std::string payload;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(ipc::readFrame(pair.b.get(), payload, &cancel),
            ipc::ReadStatus::kTimeout);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

TEST(Frames, OversizedLengthPrefixIsRejected) {
  SocketPair pair;
  const std::uint32_t huge = ipc::kMaxFrameBytes + 1;
  ASSERT_EQ(write(pair.a.get(), &huge, 4), 4);
  std::string payload;
  EXPECT_THROW(ipc::readFrame(pair.b.get(), payload), ipc::IpcError);
}

TEST(Frames, OversizedLengthPrefixIsATypedFrameError) {
  // The malformed-frame error is its own type so callers can report
  // "malformed response" instead of "unreachable".
  SocketPair pair;
  const std::uint32_t huge = 0xffffffffu;  // also: "negative" as a signed read
  ASSERT_EQ(write(pair.a.get(), &huge, 4), 4);
  std::string payload;
  EXPECT_THROW(ipc::readFrame(pair.b.get(), payload), ipc::FrameError);
}

TEST(Frames, Crc32cMatchesTheKnownCheckValue) {
  // The canonical CRC-32C check vector (RFC 3720 appendix B / Castagnoli).
  EXPECT_EQ(ipc::crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(ipc::crc32c(""), 0u);
}

/// A wire-correct frame for `payload`: length | payload | crc32c(payload).
std::string rawFrame(const std::string& payload) {
  std::string frame;
  const auto le32 = [&frame](std::uint32_t value) {
    for (int k = 0; k < 4; ++k)
      frame.push_back(static_cast<char>(value >> (8 * k)));
  };
  le32(static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  le32(ipc::crc32c(payload));
  return frame;
}

TEST(Frames, SingleBitPayloadCorruptionIsRejectedByTheCrcTrailer) {
  for (std::size_t bit = 0; bit < 8; ++bit) {
    SocketPair pair;
    std::string frame = rawFrame("corrupt-me");
    frame[6] ^= static_cast<char>(1u << bit);  // a payload byte
    ASSERT_EQ(write(pair.a.get(), frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    std::string payload;
    EXPECT_THROW(ipc::readFrame(pair.b.get(), payload), ipc::FrameError);
  }
}

TEST(Frames, CorruptedTrailerItselfIsRejected) {
  SocketPair pair;
  std::string frame = rawFrame("payload");
  frame[frame.size() - 1] ^= 0x40;  // flip a CRC bit
  ASSERT_EQ(write(pair.a.get(), frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  std::string payload;
  EXPECT_THROW(ipc::readFrame(pair.b.get(), payload), ipc::FrameError);
}

TEST(Frames, EofMidTrailerReadsAsEofNotError) {
  SocketPair pair;
  std::string frame = rawFrame("torn");
  frame.resize(frame.size() - 2);  // payload complete, trailer torn
  ASSERT_EQ(write(pair.a.get(), frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  pair.a.reset();
  std::string payload;
  EXPECT_EQ(ipc::readFrame(pair.b.get(), payload), ipc::ReadStatus::kEof);
}

TEST(Frames, PendingInputSeesQueuedFramesAndEof) {
  SocketPair pair;
  EXPECT_FALSE(ipc::pendingInput(pair.b.get()));
  ipc::writeFrame(pair.a.get(), "queued");
  EXPECT_TRUE(ipc::pendingInput(pair.b.get()));
  std::string payload;
  ASSERT_EQ(ipc::readFrame(pair.b.get(), payload), ipc::ReadStatus::kOk);
  EXPECT_FALSE(ipc::pendingInput(pair.b.get()));
  pair.a.reset();  // an EOF is also "pending": the stream is unusable
  EXPECT_TRUE(ipc::pendingInput(pair.b.get()));
}

TEST(Frames, WriteToClosedPeerThrowsInsteadOfSigpipe) {
  ipc::ignoreSigpipe();
  SocketPair pair;
  pair.b.reset();
  // The first write may land in the kernel buffer; keep writing until the
  // EPIPE surfaces.
  EXPECT_THROW(
      {
        for (int k = 0; k < 64; ++k)
          ipc::writeFrame(pair.a.get(), std::string(4096, 'x'));
      },
      ipc::IpcError);
}

TEST(Frames, ManyFramesKeepOrder) {
  SocketPair pair;
  std::thread writer([fd = pair.a.get()] {
    for (int k = 0; k < 100; ++k)
      ipc::writeFrame(fd, "frame-" + std::to_string(k));
  });
  std::string payload;
  for (int k = 0; k < 100; ++k) {
    ASSERT_EQ(ipc::readFrame(pair.b.get(), payload), ipc::ReadStatus::kOk);
    EXPECT_EQ(payload, "frame-" + std::to_string(k));
  }
  writer.join();
}

// --- Named fault scenarios ----------------------------------------------

// --- Endpoint addressing -------------------------------------------------

TEST(Endpoint, UnixFormsParse) {
  const auto explicitForm = ipc::parseEndpoint("unix:/tmp/a.sock");
  EXPECT_EQ(explicitForm.kind, ipc::Endpoint::Kind::kUnix);
  EXPECT_EQ(explicitForm.path, "/tmp/a.sock");
  EXPECT_EQ(explicitForm.describe(), "unix:/tmp/a.sock");

  const auto bare = ipc::parseEndpoint("/tmp/b.sock");
  EXPECT_EQ(bare.kind, ipc::Endpoint::Kind::kUnix);
  EXPECT_EQ(bare.path, "/tmp/b.sock");

  // No ':' and no '/' still reads as a (relative) unix path.
  const auto relative = ipc::parseEndpoint("planner.sock");
  EXPECT_EQ(relative.kind, ipc::Endpoint::Kind::kUnix);
  EXPECT_EQ(relative.path, "planner.sock");
}

TEST(Endpoint, TcpFormsParse) {
  const auto explicitForm = ipc::parseEndpoint("tcp:localhost:4777");
  EXPECT_EQ(explicitForm.kind, ipc::Endpoint::Kind::kTcp);
  EXPECT_EQ(explicitForm.host, "localhost");
  EXPECT_EQ(explicitForm.port, 4777);
  EXPECT_EQ(explicitForm.describe(), "tcp:localhost:4777");

  const auto shorthand = ipc::parseEndpoint("127.0.0.1:9");
  EXPECT_EQ(shorthand.kind, ipc::Endpoint::Kind::kTcp);
  EXPECT_EQ(shorthand.host, "127.0.0.1");
  EXPECT_EQ(shorthand.port, 9);

  // The *last* colon splits host from port, so IPv6 literals work.
  const auto v6 = ipc::parseEndpoint("tcp:::1:80");
  EXPECT_EQ(v6.kind, ipc::Endpoint::Kind::kTcp);
  EXPECT_EQ(v6.host, "::1");
  EXPECT_EQ(v6.port, 80);
}

TEST(Endpoint, MalformedInputsThrow) {
  EXPECT_THROW(ipc::parseEndpoint(""), ipc::IpcError);
  EXPECT_THROW(ipc::parseEndpoint("tcp:host:notaport"), ipc::IpcError);
  EXPECT_THROW(ipc::parseEndpoint("tcp:host:70000"), ipc::IpcError);
  EXPECT_THROW(ipc::parseEndpoint("tcp:host:"), ipc::IpcError);
  EXPECT_THROW(ipc::parseEndpoint("unix:"), ipc::IpcError);
}

TEST(Endpoint, ListSplitsOnCommasAndWhitespace) {
  const auto list = ipc::parseEndpointList(
      "unix:/tmp/a.sock, tcp:localhost:4777\n/tmp/b.sock ,,");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].describe(), "unix:/tmp/a.sock");
  EXPECT_EQ(list[1].describe(), "tcp:localhost:4777");
  EXPECT_EQ(list[2].describe(), "unix:/tmp/b.sock");
  EXPECT_TRUE(ipc::parseEndpointList("").empty());
}

TEST(Endpoint, TcpLoopbackConnectAndFrame) {
  ipc::Fd listener = ipc::listenTcp("127.0.0.1", 0);
  const std::uint16_t port = ipc::localTcpPort(listener.get());
  ASSERT_GT(port, 0);

  ipc::Endpoint ep;
  ep.kind = ipc::Endpoint::Kind::kTcp;
  ep.host = "127.0.0.1";
  ep.port = port;
  ipc::Fd client = ipc::connectEndpoint(ep, 2000);

  CancelToken acceptDeadline(std::chrono::milliseconds(2000));
  auto server = ipc::acceptUnix(listener.get(), &acceptDeadline);
  ASSERT_TRUE(server.has_value());

  ipc::writeFrame(client.get(), "over tcp");
  std::string payload;
  ASSERT_EQ(ipc::readFrame(server->get(), payload), ipc::ReadStatus::kOk);
  EXPECT_EQ(payload, "over tcp");
}

TEST(Endpoint, TcpConnectToDeadPortThrows) {
  // Bind-then-close to find a port with (almost certainly) no listener.
  std::uint16_t port = 0;
  {
    ipc::Fd listener = ipc::listenTcp("127.0.0.1", 0);
    port = ipc::localTcpPort(listener.get());
  }
  EXPECT_THROW(ipc::connectTcp("127.0.0.1", port, 500), ipc::IpcError);
}

TEST(FaultScenarios, AllNamesResolve) {
  for (const auto& name : fault::serviceScenarioNames()) {
    const auto scenario = fault::serviceScenarioByName(name);
    ASSERT_TRUE(scenario.has_value()) << name;
    EXPECT_EQ(scenario->name, name);
  }
  EXPECT_FALSE(fault::serviceScenarioByName("quantum-flip").has_value());
}

TEST(FaultScenarios, KillFirstShardTargetsDispatchZero) {
  const auto scenario = fault::serviceScenarioByName("kill-first-shard");
  ASSERT_TRUE(scenario.has_value());
  EXPECT_EQ(scenario->kind, fault::ServiceScenario::Kind::kKillWorker);
  EXPECT_EQ(scenario->afterShards, 0);
}

TEST(FaultModels, AllNamesResolve) {
  for (const auto& name : fault::modelNames())
    EXPECT_TRUE(fault::modelByName(name).has_value()) << name;
  EXPECT_FALSE(fault::modelByName("does-not-exist").has_value());
}

// --- Service protocol round-trips ---------------------------------------

TEST(Protocol, PlanRequestRoundTrip) {
  service::PlanRequest request;
  request.spec.stateCount = 12;
  request.spec.inputCount = 3;
  request.spec.outputCount = 2;
  request.spec.deltaCount = 9;
  request.spec.newStateCount = 1;
  request.spec.instanceCount = 33;
  request.spec.seed = 99;
  request.spec.planner = "ea";
  request.deadlineMs = 1500;
  request.requestId = 7;
  request.lo = 11;
  request.hi = 22;
  const auto decoded =
      service::decodePlanRequest(service::encodePlanRequest(request));
  EXPECT_EQ(decoded.spec, request.spec);
  EXPECT_EQ(decoded.deadlineMs, 1500);
  EXPECT_EQ(decoded.requestId, 7u);
  EXPECT_EQ(decoded.rangeLo(), 11u);
  EXPECT_EQ(decoded.rangeHi(), 22u);
}

TEST(Protocol, WholeBatchShorthandResolvesToInstanceCount) {
  service::PlanRequest request;
  request.spec.instanceCount = 33;
  const auto decoded =
      service::decodePlanRequest(service::encodePlanRequest(request));
  EXPECT_EQ(decoded.rangeLo(), 0u);
  EXPECT_EQ(decoded.rangeHi(), 33u);
}

TEST(Protocol, WarmupRoundTrip) {
  const std::string request = service::encodeWarmupRequest();
  EXPECT_EQ(service::peekType(request), service::MessageType::kWarmupRequest);
  const std::string response = service::encodeWarmupResponse();
  EXPECT_EQ(service::peekType(response),
            service::MessageType::kWarmupResponse);
  EXPECT_NO_THROW(service::decodeWarmupResponse(response));
  EXPECT_THROW(service::decodeWarmupResponse(request), ipc::IpcError);
}

TEST(Protocol, PlanResponseRoundTrip) {
  service::PlanResponse response;
  response.status = WorkResult::Status::kOk;
  response.programs = {"prog-a\n", "prog-b\n"};
  response.retries = 3;
  response.crashes = 1;
  const auto decoded =
      service::decodePlanResponse(service::encodePlanResponse(response));
  EXPECT_EQ(decoded.status, WorkResult::Status::kOk);
  EXPECT_EQ(decoded.programs, response.programs);
  EXPECT_EQ(decoded.retries, 3u);
  EXPECT_EQ(decoded.crashes, 1u);
}

TEST(Protocol, ShardRequestRoundTrip) {
  service::ShardRequest request;
  request.spec.planner = "greedy";
  request.lo = 8;
  request.hi = 12;
  request.deadlineNs = 123456789;
  const auto decoded =
      service::decodeShardRequest(service::encodeShardRequest(request));
  EXPECT_EQ(decoded.spec, request.spec);
  EXPECT_EQ(decoded.lo, 8u);
  EXPECT_EQ(decoded.hi, 12u);
  EXPECT_EQ(decoded.deadlineNs, 123456789);
}

TEST(Protocol, HealthRoundTrip) {
  service::HealthResponse health;
  health.healthy = true;
  health.workersAlive = 3;
  health.workersConfigured = 4;
  health.queueDepth = 5;
  health.crashes = 6;
  health.retries = 7;
  health.shed = 8;
  const auto decoded =
      service::decodeHealthResponse(service::encodeHealthResponse(health));
  EXPECT_TRUE(decoded.healthy);
  EXPECT_EQ(decoded.workersAlive, 3);
  EXPECT_EQ(decoded.workersConfigured, 4);
  EXPECT_EQ(decoded.queueDepth, 5u);
  EXPECT_EQ(decoded.shed, 8u);
}

TEST(Protocol, WrongMessageTypeIsRejected) {
  const std::string health = service::encodeHealthRequest();
  EXPECT_THROW(service::decodePlanRequest(health), ipc::IpcError);
  EXPECT_EQ(service::peekType(health),
            service::MessageType::kHealthRequest);
  EXPECT_THROW(service::peekType(""), ipc::IpcError);
}

TEST(Protocol, StatusNamesMatchContract) {
  EXPECT_STREQ(toString(WorkResult::Status::kOk), "OK");
  EXPECT_STREQ(toString(WorkResult::Status::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(toString(WorkResult::Status::kShed), "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(toString(WorkResult::Status::kUnavailable), "UNAVAILABLE");
}

TEST(Handshake, RequestRoundTrip) {
  service::HandshakeRequest request;
  request.version = 7;
  request.features = 0x5u;
  const std::string wire = service::encodeHandshakeRequest(request);
  EXPECT_EQ(service::peekType(wire),
            service::MessageType::kHandshakeRequest);
  const auto back = service::decodeHandshakeRequest(wire);
  EXPECT_EQ(back.version, 7u);
  EXPECT_EQ(back.features, 0x5u);
}

TEST(Handshake, ResponseRoundTrip) {
  service::HandshakeResponse response;
  response.accepted = true;
  response.version = service::kProtocolVersion;
  response.features = service::kFeatureCrc32c;
  response.error = "";
  const std::string wire = service::encodeHandshakeResponse(response);
  EXPECT_EQ(service::peekType(wire),
            service::MessageType::kHandshakeResponse);
  const auto back = service::decodeHandshakeResponse(wire);
  EXPECT_TRUE(back.accepted);
  EXPECT_EQ(back.version, service::kProtocolVersion);
  EXPECT_EQ(back.features, service::kFeatureCrc32c);
  EXPECT_TRUE(back.error.empty());
}

TEST(Handshake, MatchingVersionIsAcceptedWithFeaturesMasked) {
  service::HandshakeRequest request;
  request.features = 0xffffffffu;  // peer claims features we never heard of
  const auto response = service::answerHandshake(request);
  EXPECT_TRUE(response.accepted);
  EXPECT_EQ(response.version, service::kProtocolVersion);
  EXPECT_EQ(response.features, service::kFeatureCrc32c);
}

TEST(Handshake, VersionMismatchIsRefusedNotDowngraded) {
  service::HandshakeRequest request;
  request.version = service::kProtocolVersion + 1;
  const auto response = service::answerHandshake(request);
  EXPECT_FALSE(response.accepted);
  EXPECT_EQ(response.features, 0u);
  EXPECT_NE(response.error.find("protocol version mismatch"),
            std::string::npos);
}

}  // namespace
}  // namespace rfsm
