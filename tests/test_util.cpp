// Unit tests for src/util: RNG determinism and distribution sanity, string
// helpers, table rendering, contract checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm {
namespace {

TEST(Check, ThrowsContractErrorWithContext) {
  try {
    RFSM_CHECK(1 == 2, "numbers disagree");
    FAIL() << "expected ContractError";
  } catch (const ContractError& error) {
    EXPECT_NE(std::string(error.what()).find("numbers disagree"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(RFSM_CHECK(true, "fine"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int k = 0; k < 64; ++k)
    if (a() == b()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int k = 0; k < 1000; ++k) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int k = 0; k < 500; ++k) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowRejectsZeroBound) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), ContractError);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool sawLo = false, sawHi = false;
  for (int k = 0; k < 2000; ++k) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int k = 0; k < 10000; ++k) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int k = 0; k < 50; ++k) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // The child stream should not track the parent.
  int same = 0;
  for (int k = 0; k < 64; ++k)
    if (a() == child()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpties) {
  const auto parts = splitWhitespace("  one\t two \n three  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(startsWith("kiss2", "kiss"));
  EXPECT_FALSE(startsWith("ki", "kiss"));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
  EXPECT_EQ(formatFixed(2.0, 1), "2.0");
}

TEST(Table, MarkdownHasHeaderSeparatorAndRows) {
  Table t({"a", "bb"});
  t.addRow({"1", "2"});
  t.addRow({"333", "4"});
  const std::string md = t.toMarkdown();
  EXPECT_NE(md.find("| a "), std::string::npos);
  EXPECT_NE(md.find("|---"), std::string::npos);
  EXPECT_NE(md.find("| 333 "), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CsvRendering) {
  Table t({"x", "y"});
  t.addRow({"1", "2"});
  EXPECT_EQ(t.toCsv(), "x,y\n1,2\n");
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"only"});
  EXPECT_THROW(t.addRow({"a", "b"}), ContractError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), ContractError);
}

}  // namespace
}  // namespace rfsm
