// Unit tests for src/util: RNG determinism and distribution sanity, string
// helpers, table rendering, telemetry metrics, contract checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <vector>

#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rfsm {
namespace {

TEST(Check, ThrowsContractErrorWithContext) {
  try {
    RFSM_CHECK(1 == 2, "numbers disagree");
    FAIL() << "expected ContractError";
  } catch (const ContractError& error) {
    EXPECT_NE(std::string(error.what()).find("numbers disagree"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(RFSM_CHECK(true, "fine"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int k = 0; k < 64; ++k)
    if (a() == b()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int k = 0; k < 1000; ++k) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int k = 0; k < 500; ++k) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowRejectsZeroBound) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), ContractError);
}

TEST(Rng, BelowIsUnbiasedChiSquare) {
  // Rejection sampling must give a flat distribution even for a bound that
  // does not divide 2^64.  Chi-square over 13 buckets, 13000 draws: the
  // statistic is ~chi2(12), whose 99.99th percentile is ~39.1; 50 flags a
  // real bias, not noise.
  Rng rng(12345);
  constexpr std::uint64_t kBound = 13;
  constexpr int kDraws = 13000;
  std::vector<int> buckets(kBound, 0);
  for (int k = 0; k < kDraws; ++k) ++buckets[rng.below(kBound)];
  const double expected = static_cast<double>(kDraws) / kBound;
  double chi2 = 0;
  for (const int observed : buckets) {
    const double d = observed - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 50.0);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool sawLo = false, sawHi = false;
  for (int k = 0; k < 2000; ++k) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int k = 0; k < 10000; ++k) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int k = 0; k < 50; ++k) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleHandlesEmptyAndSingleton) {
  Rng rng(19);
  std::vector<int> empty;
  EXPECT_NO_THROW(rng.shuffle(empty));
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  EXPECT_NO_THROW(rng.shuffle(one));
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // The child stream should not track the parent.
  int same = 0;
  for (int k = 0; k < 64; ++k)
    if (a() == child()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, SubstreamIsDeterministicPerIndex) {
  const Rng base(77);
  Rng a = base.substream(3);
  Rng b = base.substream(3);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(a(), b());
}

TEST(Rng, SubstreamsOfDifferentIndicesDiffer) {
  const Rng base(77);
  Rng a = base.substream(0);
  Rng b = base.substream(1);
  int same = 0;
  for (int k = 0; k < 64; ++k)
    if (a() == b()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, SubstreamDoesNotAdvanceTheParent) {
  Rng parent(31);
  Rng untouched(31);
  (void)parent.substream(9);
  (void)parent.substream(2);
  for (int k = 0; k < 32; ++k) EXPECT_EQ(parent(), untouched());
}

TEST(Rng, SubstreamIndependentOfCallOrder) {
  const Rng base(55);
  Rng early = base.substream(5);
  (void)base.substream(2);
  Rng late = base.substream(5);
  for (int k = 0; k < 32; ++k) EXPECT_EQ(early(), late());
}

TEST(Metrics, CounterAccumulatesAndResets) {
  metrics::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Metrics, TimerAccumulatesAndResets) {
  metrics::Timer timer;
  timer.record(std::chrono::microseconds(250));
  timer.record(std::chrono::microseconds(750));
  EXPECT_EQ(timer.count(), 2u);
  EXPECT_EQ(timer.total(), std::chrono::nanoseconds(1000000));
  timer.reset();
  EXPECT_EQ(timer.count(), 0u);
  EXPECT_EQ(timer.total(), std::chrono::nanoseconds(0));
}

TEST(Metrics, RegistryReturnsStableReferences) {
  metrics::Counter& a = metrics::counter("test.registry_stable");
  metrics::Counter& b = metrics::counter("test.registry_stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  a.reset();
}

TEST(Metrics, SnapshotSkipsZeroEntriesAndSortsByName) {
  metrics::resetAll();
  metrics::counter("test.snap_b").add(2);
  metrics::counter("test.snap_a").add(1);
  metrics::counter("test.snap_zero");  // registered but never bumped
  const metrics::Snapshot snap = metrics::snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "test.snap_a");
  EXPECT_EQ(snap.counters[1].name, "test.snap_b");
  metrics::resetAll();
  EXPECT_TRUE(metrics::snapshot().empty());
}

TEST(Metrics, MarkdownRendersCountersTimersAndHitRate) {
  metrics::resetAll();
  metrics::counter(metrics::kBfsCacheHits).add(3);
  metrics::counter(metrics::kBfsCacheMisses).add(1);
  metrics::timer("test.render").record(std::chrono::milliseconds(2));
  const std::string md = metrics::toMarkdown(metrics::snapshot());
  EXPECT_NE(md.find(metrics::kBfsCacheHits), std::string::npos);
  EXPECT_NE(md.find("BFS cache hit rate: 75.0%"), std::string::npos);
  EXPECT_NE(md.find("test.render"), std::string::npos);
  EXPECT_EQ(metrics::toMarkdown(metrics::Snapshot{}), "");
  metrics::resetAll();
}

TEST(Metrics, CsvRendersOneRowPerMetric) {
  metrics::resetAll();
  metrics::counter("test.csv_counter").add(7);
  metrics::timer("test.csv_timer").record(std::chrono::milliseconds(3));
  const std::string csv = metrics::toCsv(metrics::snapshot());
  EXPECT_NE(
      csv.find("kind,name,value,count,total_ms,p50_ms,p90_ms,p99_ms,max_ms\n"),
      std::string::npos);
  EXPECT_NE(csv.find("counter,test.csv_counter,7,,,,,,\n"), std::string::npos);
  EXPECT_NE(csv.find("timer,test.csv_timer,,1,"), std::string::npos);
  EXPECT_EQ(metrics::toCsv(metrics::Snapshot{}), "");
  metrics::resetAll();
}

TEST(Metrics, CsvQuotesSpecialCharactersPerRfc4180) {
  // Names carrying separators, quotes, or line breaks must arrive as one
  // field: quoted, with embedded quotes doubled.
  metrics::Snapshot snap;
  snap.counters.push_back({"plain.name", 1});
  snap.counters.push_back({"with,comma", 2});
  snap.counters.push_back({"with \"quotes\"", 3});
  snap.counters.push_back({"with\nnewline", 4});
  const std::string csv = metrics::toCsv(snap);
  EXPECT_NE(csv.find("counter,plain.name,1,"), std::string::npos);
  EXPECT_NE(csv.find("counter,\"with,comma\",2,"), std::string::npos);
  EXPECT_NE(csv.find("counter,\"with \"\"quotes\"\"\",3,"),
            std::string::npos);
  EXPECT_NE(csv.find("counter,\"with\nnewline\",4,"), std::string::npos);
}

TEST(Metrics, CsvAndJsonRenderHistograms) {
  metrics::resetAll();
  metrics::Histogram& h = metrics::histogram("test.csv_histogram");
  h.record(std::chrono::milliseconds(2));
  h.record(std::chrono::milliseconds(4));
  const metrics::Snapshot snap = metrics::snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 2u);
  const std::string csv = metrics::toCsv(snap);
  EXPECT_NE(csv.find("histogram,test.csv_histogram,,2,"), std::string::npos);
  const std::string json = metrics::toJson(snap);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.csv_histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);
  const std::string md = metrics::toMarkdown(snap);
  EXPECT_NE(md.find("test.csv_histogram"), std::string::npos);
  metrics::resetAll();
}

TEST(Metrics, JsonRendersCountersAndTimers) {
  metrics::resetAll();
  metrics::counter("test.json_counter").add(2);
  metrics::timer("test.json_timer").record(std::chrono::milliseconds(1));
  const std::string json = metrics::toJson(metrics::snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_timer\": {\"count\": 1"),
            std::string::npos);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(metrics::toJson(metrics::Snapshot{}), "");
  metrics::resetAll();
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpties) {
  const auto parts = splitWhitespace("  one\t two \n three  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(startsWith("kiss2", "kiss"));
  EXPECT_FALSE(startsWith("ki", "kiss"));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
  EXPECT_EQ(formatFixed(2.0, 1), "2.0");
}

TEST(Table, MarkdownHasHeaderSeparatorAndRows) {
  Table t({"a", "bb"});
  t.addRow({"1", "2"});
  t.addRow({"333", "4"});
  const std::string md = t.toMarkdown();
  EXPECT_NE(md.find("| a "), std::string::npos);
  EXPECT_NE(md.find("|---"), std::string::npos);
  EXPECT_NE(md.find("| 333 "), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CsvRendering) {
  Table t({"x", "y"});
  t.addRow({"1", "2"});
  EXPECT_EQ(t.toCsv(), "x,y\n1,2\n");
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"only"});
  EXPECT_THROW(t.addRow({"a", "b"}), ContractError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), ContractError);
}

}  // namespace
}  // namespace rfsm
